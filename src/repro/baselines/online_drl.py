"""Online single-parameter DRL baseline (Hasibul et al. [17]).

The predecessor approach the paper cites for training cost: a DRL agent
that tunes ONE monolithic concurrency value and learns *online, during the
transfer* — no simulator, no decoupling.  Their reported cost: ~28 hours of
online training (5,000 iterations) for a single link.

As a controller it therefore spends the early part of every deployment
exploring: the agent treats each block of ``steps_per_episode`` probe
intervals as an episode, rewards itself with the monolithic utility
``t_w / k^cc``, and updates after every episode.  AutoMDT's offline
training is what removes exactly this warm-up, which is where the paper's
"up to 8× faster convergence" headline comes from.
"""

from __future__ import annotations

import numpy as np

from repro.core.ppo import PPOAgent, PPOConfig
from repro.core.utility import DEFAULT_K, UtilityFunction
from repro.transfer.engine import Observation
from repro.utils.config import require_positive
from repro.utils.rng import as_generator


class OnlineDRLController:
    """Monolithic concurrency tuned by an online PPO agent.

    State: ``(cc/n_max, t_w/scale, sender_free_frac, receiver_free_frac)``.
    Action: one normalized value mapped to ``cc ∈ [1, n_max]``; the engine
    gets the triple ``(cc, cc·parallelism, cc)``.
    """

    def __init__(
        self,
        *,
        max_threads: int = 30,
        throughput_scale: float = 1000.0,
        parallelism: int = 1,
        k: float = DEFAULT_K,
        steps_per_episode: int = 10,
        ppo_config: PPOConfig | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        require_positive(max_threads, "max_threads")
        require_positive(throughput_scale, "throughput_scale")
        self.max_threads = int(max_threads)
        self.throughput_scale = float(throughput_scale)
        self.parallelism = int(parallelism)
        self.utility = UtilityFunction(k)
        self.steps_per_episode = int(steps_per_episode)
        self.rng = as_generator(rng)
        self._ppo_config = ppo_config or PPOConfig(
            hidden_dim=64, policy_blocks=1, value_blocks=1
        )
        self._build()

    def _build(self) -> None:
        self.agent = PPOAgent(
            state_dim=4, action_dim=1, config=self._ppo_config, rng=self.rng
        )
        self._episode_step = 0
        self._pending: tuple[np.ndarray, np.ndarray, float] | None = None
        self._cc = 1
        self.episodes_completed = 0

    def reset(self) -> None:
        """A fresh transfer restarts the *deployment*, not the learning."""
        self._episode_step = 0
        self._pending = None
        self._cc = 1

    def _state(self, obs: Observation) -> np.ndarray:
        return np.array(
            [
                self._cc / self.max_threads,
                obs.throughputs[2] / self.throughput_scale,
                obs.sender_free / obs.sender_capacity,
                obs.receiver_free / obs.receiver_capacity,
            ]
        )

    def _action_to_cc(self, action: np.ndarray) -> int:
        raw = 1.0 + float(action.reshape(-1)[0]) * (self.max_threads - 1)
        return int(np.clip(round(raw), 1, self.max_threads))

    def propose(self, observation: Observation) -> tuple[int, int, int]:
        """One online-RL step: credit the last action, sample the next."""
        state = self._state(observation)
        if self._pending is not None:
            prev_state, prev_action, prev_log_prob = self._pending
            # Monolithic utility: end-to-end throughput, paying for cc
            # threads on every stage.
            reward = self.utility.stage_utility(observation.throughputs[2], 3 * self._cc)
            reward /= self.throughput_scale  # keep O(1) like the envs
            self.agent.memory.store(prev_state, prev_action, prev_log_prob, reward)
            self._episode_step += 1
            if self._episode_step >= self.steps_per_episode:
                self.agent.memory.end_episode(self.agent.config.gamma)
                self.agent.update()
                self.agent.memory.clear()
                self._episode_step = 0
                self.episodes_completed += 1

        action, log_prob = self.agent.act(state)
        self._pending = (state, action, log_prob)
        self._cc = self._action_to_cc(action)
        net = min(self._cc * self.parallelism, self.max_threads * self.parallelism)
        return (self._cc, net, self._cc)
