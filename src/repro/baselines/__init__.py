"""Baseline optimizers the paper compares against (or motivates with).

* :class:`MarlinController` — Marlin's three *independent* single-variable
  gradient-descent optimizers (the primary state-of-the-art comparator).
* :class:`MultivariateGDController` — joint three-variable gradient
  descent, the approach §III shows getting stuck in local optima.
* :class:`GlobusController` — globus-url-copy's static monolithic
  configuration (concurrency 4, parallelism 8 in the paper's runs).
* :class:`StaticController` — arbitrary fixed triple (oracle or naive).
* :class:`ProbeHeuristicController` — active-probing hill climber on a
  single monolithic concurrency (the heuristic family of related work).
* :class:`OnlineDRLController` — Hasibul et al. [17]: one monolithic
  concurrency learned by DRL *online* during the transfer (the training-cost
  comparator behind the paper's "8× faster convergence").
"""

from repro.baselines.globus import GlobusController
from repro.baselines.heuristic import ProbeHeuristicController
from repro.baselines.marlin import MarlinConfig, MarlinController
from repro.baselines.multivariate_gd import MultivariateGDConfig, MultivariateGDController
from repro.baselines.online_drl import OnlineDRLController
from repro.baselines.static import StaticController

__all__ = [
    "GlobusController",
    "ProbeHeuristicController",
    "MarlinConfig",
    "MarlinController",
    "MultivariateGDConfig",
    "MultivariateGDController",
    "OnlineDRLController",
    "StaticController",
]
