"""Static controller: an arbitrary fixed concurrency triple.

Used both as the "oracle" upper bound (the ideal triple from the testbed
config) and as a naive fixed configuration in ablations.
"""

from __future__ import annotations

from repro.transfer.engine import Observation
from repro.utils.errors import ConfigError


class StaticController:
    """Always proposes the same (read, network, write) triple."""

    def __init__(self, threads: tuple[int, int, int]) -> None:
        if len(threads) != 3 or any(int(n) < 1 for n in threads):
            raise ConfigError(f"threads must be three positive ints, got {threads!r}")
        self.threads = (int(threads[0]), int(threads[1]), int(threads[2]))

    def propose(self, observation: Observation) -> tuple[int, int, int]:
        """The fixed triple, regardless of observation."""
        return self.threads

    def reset(self) -> None:
        """Nothing to reset."""
