"""Marlin baseline: three independent single-variable online optimizers.

Marlin (Arifuzzaman & Arslan, ICS '23) decouples read, network and write
concurrency but tunes each with its *own* gradient-descent optimizer over
the same throughput-vs-thread-penalty utility.  Each stage estimates a
finite-difference gradient of its utility ``U_i = t_i / k^{n_i}`` from the
last two (concurrency, utility) observations and moves along it.

Because the three optimizers ignore the buffer coupling (Fig. 1), each sees
a *non-stationary* objective that shifts whenever its neighbours move —
the root cause of the instability and slow convergence the paper reports
(§III, §V-B).  No artificial handicap is injected here: the behaviour
emerges from running the honest algorithm on the coupled system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.utility import DEFAULT_K, UtilityFunction
from repro.transfer.engine import Observation
from repro.utils.config import require_positive
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class MarlinConfig:
    """Hyper-parameters of each per-stage optimizer."""

    k: float = DEFAULT_K
    learning_rate: float = 2.0
    max_step: int = 2
    probe_step: int = 1
    initial_threads: int = 1
    max_threads: int = 30

    def __post_init__(self) -> None:
        require_positive(self.learning_rate, "learning_rate")
        require_positive(self.max_step, "max_step")
        require_positive(self.max_threads, "max_threads")


class _SingleVariableGD:
    """One stage's gradient-descent loop over ``U(n) = t / k^n``."""

    def __init__(self, config: MarlinConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng
        self.n = float(config.initial_threads)
        self._prev_n: float | None = None
        self._prev_utility: float | None = None
        self._utility_scale = 1.0

    def reset(self) -> None:
        self.n = float(self.config.initial_threads)
        self._prev_n = None
        self._prev_utility = None
        self._utility_scale = 1.0

    def propose(self, utility: float) -> int:
        """Observe the utility of the current ``n`` and move it."""
        cfg = self.config
        # Track the running utility scale so the step size is unit-free.
        self._utility_scale = max(self._utility_scale, abs(utility), 1e-9)

        if self._prev_n is None or self._prev_utility is None or self._prev_n == self.n:
            # No gradient information yet: probe upward.
            step = float(cfg.probe_step)
        else:
            grad = (utility - self._prev_utility) / (self.n - self._prev_n)
            grad /= self._utility_scale  # normalize to ~O(1)
            step = cfg.learning_rate * grad * cfg.max_threads
            step = float(np.clip(step, -cfg.max_step, cfg.max_step))
            if abs(step) < 0.5:
                # Flat gradient: keep a small dither so the optimizer never
                # stops probing (Marlin's continued fluctuation).
                step = float(self.rng.choice((-1.0, 1.0)))

        self._prev_n = self.n
        self._prev_utility = utility
        self.n = float(np.clip(self.n + step, 1, cfg.max_threads))
        return int(round(self.n))


class MarlinController:
    """Marlin's decoupled per-stage optimizers as an engine controller."""

    def __init__(
        self,
        config: MarlinConfig | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.config = config or MarlinConfig()
        rng = as_generator(rng)
        self.utility = UtilityFunction(self.config.k)
        self._stages = [
            _SingleVariableGD(self.config, np.random.default_rng(rng.integers(2**63)))
            for _ in range(3)
        ]

    def propose(self, observation: Observation) -> tuple[int, int, int]:
        """Each stage independently observes its utility and moves its knob."""
        throughputs = observation.throughputs
        threads = observation.threads
        new = tuple(
            stage.propose(self.utility.stage_utility(throughputs[i], threads[i]))
            for i, stage in enumerate(self._stages)
        )
        return new  # type: ignore[return-value]

    def reset(self) -> None:
        """Restart all three optimizers from their initial concurrency."""
        for stage in self._stages:
            stage.reset()
