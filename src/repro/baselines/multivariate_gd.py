"""Joint multivariate gradient descent — the failure case of §III.

Marlin's authors first tried optimizing all three concurrency values with a
single multivariate gradient-descent loop over the joint utility
``U = Σ_i t_i / k^{n_i}`` and found it never converges: starting with empty
buffers, raising network/write concurrency yields zero utility gain (no
data to move), while raising read concurrency pays off immediately — so
the optimizer climbs the read axis, stalls when the buffer fills, and has
no gradient signal pointing anywhere useful.  "Multivariate gradient
descent gets stuck to local optima at the beginning ... and never recovers"
(§III).

This controller reproduces that honest algorithm so the pathology can be
demonstrated (see ``benchmarks/bench_figure1.py`` and the motivation
example).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.utility import DEFAULT_K, UtilityFunction
from repro.transfer.engine import Observation
from repro.utils.config import require_positive
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class MultivariateGDConfig:
    """Hyper-parameters of the joint gradient-descent optimizer."""

    k: float = DEFAULT_K
    learning_rate: float = 3.0
    max_step: int = 3
    initial_threads: int = 1
    max_threads: int = 30

    def __post_init__(self) -> None:
        require_positive(self.learning_rate, "learning_rate")
        require_positive(self.max_threads, "max_threads")


class MultivariateGDController:
    """Finite-difference joint gradient ascent on the total utility."""

    def __init__(
        self,
        config: MultivariateGDConfig | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.config = config or MultivariateGDConfig()
        self.utility = UtilityFunction(self.config.k)
        self.rng = as_generator(rng)
        self._n = np.full(3, float(self.config.initial_threads))
        self._prev_n: np.ndarray | None = None
        self._prev_utility: float | None = None
        self._scale = 1.0

    def reset(self) -> None:
        """Restart from the initial concurrency."""
        self._n = np.full(3, float(self.config.initial_threads))
        self._prev_n = None
        self._prev_utility = None
        self._scale = 1.0

    def propose(self, observation: Observation) -> tuple[int, int, int]:
        """One joint finite-difference step on ``U(n_r, n_n, n_w)``."""
        cfg = self.config
        value = self.utility(observation.throughputs, observation.threads)
        self._scale = max(self._scale, abs(value), 1e-9)

        if self._prev_n is None or self._prev_utility is None:
            step = np.ones(3)  # initial upward probe on every axis
        else:
            delta_n = self._n - self._prev_n
            delta_u = (value - self._prev_utility) / self._scale
            # Per-axis finite-difference estimate; axes that did not move
            # get zero gradient — exactly the blind spot that strands the
            # optimizer once one axis stops paying off.
            grad = np.where(delta_n != 0.0, delta_u / np.where(delta_n == 0, 1.0, delta_n), 0.0)
            step = np.clip(cfg.learning_rate * grad * cfg.max_threads, -cfg.max_step, cfg.max_step)

        self._prev_n = self._n.copy()
        self._prev_utility = value
        self._n = np.clip(self._n + step, 1, cfg.max_threads)
        rounded = np.round(self._n).astype(int)
        return (int(rounded[0]), int(rounded[1]), int(rounded[2]))
