"""Globus (globus-url-copy) baseline: static monolithic configuration.

The paper uses globus-url-copy from the Grid Community Toolkit with
concurrency 4 and parallelism 8 — values "system administrators typically
avoid [setting] aggressive[ly]".  The tool is monolithic: the same
concurrency drives read and write threads, and the network opens
``concurrency × parallelism`` TCP streams.  It never adapts during the
transfer.
"""

from __future__ import annotations

from repro.transfer.monolithic import MonolithicController


class GlobusController(MonolithicController):
    """globus-url-copy's fixed ``-cc``/``-p`` configuration."""

    def __init__(self, concurrency: int = 4, parallelism: int = 8) -> None:
        super().__init__(concurrency=int(concurrency), parallelism=int(parallelism))

    @property
    def concurrency(self) -> int:
        """The fixed ``-cc`` value."""
        return self._policy  # type: ignore[return-value]
