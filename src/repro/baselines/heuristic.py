"""Active-probing heuristic baseline (monolithic AIMD-style hill climber).

Represents the heuristic family of related work ([7], [8], [27]): probe a
higher monolithic concurrency; keep climbing while measured throughput
improves by more than a tolerance, back off multiplicatively when it stops
paying.  Adaptive but monolithic — it cannot give read/network/write
different levels, so it inherits the over-subscription problem of §III.
"""

from __future__ import annotations

from repro.transfer.engine import Observation
from repro.utils.config import require_in_range, require_positive


class ProbeHeuristicController:
    """Additive-increase / multiplicative-decrease on one concurrency knob."""

    def __init__(
        self,
        *,
        parallelism: int = 1,
        increase_step: int = 2,
        backoff: float = 0.75,
        improvement_tolerance: float = 0.03,
        max_threads: int = 30,
    ) -> None:
        require_positive(increase_step, "increase_step")
        require_in_range(backoff, 0.1, 1.0, "backoff")
        require_positive(max_threads, "max_threads")
        self.parallelism = int(parallelism)
        self.increase_step = int(increase_step)
        self.backoff = backoff
        self.improvement_tolerance = improvement_tolerance
        self.max_threads = int(max_threads)
        self._cc = 1.0
        self._prev_throughput: float | None = None
        self._prev_cc = 1.0

    def reset(self) -> None:
        """Restart the climb from concurrency 1."""
        self._cc = 1.0
        self._prev_throughput = None
        self._prev_cc = 1.0

    def propose(self, observation: Observation) -> tuple[int, int, int]:
        """AIMD step on the single concurrency, expanded monolithically."""
        throughput = observation.throughputs[2] or observation.throughputs[1]
        if self._prev_throughput is None:
            self._cc = min(self._cc + self.increase_step, self.max_threads)
        else:
            improving = throughput > self._prev_throughput * (1.0 + self.improvement_tolerance)
            if improving or self._cc <= self._prev_cc:
                self._prev_cc = self._cc
                self._cc = min(self._cc + self.increase_step, self.max_threads)
            else:
                self._prev_cc = self._cc
                self._cc = max(1.0, self._cc * self.backoff)
        self._prev_throughput = throughput
        cc = int(round(self._cc))
        return (cc, min(cc * self.parallelism, self.max_threads), cc)
