"""The I/O–network dynamics simulator (paper §IV-C, Algorithm 1).

This is the paper's offline-training substrate: a priority-queue simulation
of read, network, and write *tasks* coupled through finite sender/receiver
staging buffers.  One :meth:`IONetworkSimulator.step_second` call simulates
one second of transfer activity under a given concurrency triple and
returns the per-stage throughputs plus buffer occupancy — everything the
PPO state space needs.

Scenario sampling (:mod:`repro.simulator.scenarios`) provides the
domain-randomized configurations used during offline training, and the
bridge from a measured exploration profile to a simulator config.
"""

from repro.simulator.batch import BatchedSimulator, BatchStageMetrics
from repro.simulator.config import SimulatorConfig
from repro.simulator.core import IONetworkSimulator, StageMetrics
from repro.simulator.fluid import FluidBatchSimulator
from repro.simulator.scenarios import (
    sample_scenario,
    scenario_from_profile,
    simulator_config_from_testbed,
)

__all__ = [
    "SimulatorConfig",
    "IONetworkSimulator",
    "StageMetrics",
    "BatchedSimulator",
    "BatchStageMetrics",
    "FluidBatchSimulator",
    "sample_scenario",
    "scenario_from_profile",
    "simulator_config_from_testbed",
]
