"""Vectorized fluid simulator: a batch of Algorithm-1 environments at once.

The event-queue simulator (:mod:`repro.simulator.core`) is faithful to the
paper's pseudocode but inherently sequential.  For *training throughput*
this module provides a fluid-flow approximation vectorized over ``B``
independent environments: all buffer states live in ``(B,)`` numpy arrays
and one :meth:`FluidBatchSimulator.step_second` advances every environment
with a handful of array ops — following the hpc-parallel guidance to turn
per-item Python loops into whole-array operations.

The dynamics mirror the event simulator's semantics at substep resolution:

* per-stage rate ``min(n_i · TPT_i, B_i)``;
* read bounded by free sender buffer, network by sender data + receiver
  space, write by receiver data;
* buffer state persists across calls.

On matched scenarios the two simulators agree on steady-state throughputs
to within the event simulator's chunk granularity (see the consistency
test), so training on the fluid batch and evaluating on the event-queue
version is sound — and the batched policy forward is where the wall-clock
win actually comes from (one ``(B, 8)`` matmul instead of ``B`` small ones).
"""

from __future__ import annotations

import numpy as np

from repro.simulator.config import SimulatorConfig
from repro.utils.config import require_positive
from repro.utils.errors import SimulationError
from repro.utils.units import bytes_per_sec_to_mbps, mbps_to_bytes_per_sec


class FluidBatchSimulator:
    """``B`` independent copies of one scenario, stepped together."""

    def __init__(self, config: SimulatorConfig, batch_size: int, *, substeps: int = 10) -> None:
        require_positive(batch_size, "batch_size")
        require_positive(substeps, "substeps")
        self.config = config
        self.batch_size = int(batch_size)
        self.substeps = int(substeps)
        self._sender = np.zeros(self.batch_size)
        self._receiver = np.zeros(self.batch_size)
        # Per-thread byte rates (scalars; thread counts vary per env).
        self._tpt = np.array([mbps_to_bytes_per_sec(t) for t in config.tpt])
        self._ceiling = np.array([mbps_to_bytes_per_sec(b) for b in config.bandwidth])

    # --------------------------------------------------------------- state
    @property
    def sender_usage(self) -> np.ndarray:
        """Sender buffer occupancy per environment (bytes)."""
        return self._sender

    @property
    def receiver_usage(self) -> np.ndarray:
        """Receiver buffer occupancy per environment (bytes)."""
        return self._receiver

    def reset(
        self,
        *,
        sender_usage: np.ndarray | float = 0.0,
        receiver_usage: np.ndarray | float = 0.0,
        mask: np.ndarray | None = None,
    ) -> None:
        """Reset buffers; ``mask`` selects which environments (all if None)."""
        sender = np.broadcast_to(np.asarray(sender_usage, dtype=float), (self.batch_size,))
        receiver = np.broadcast_to(np.asarray(receiver_usage, dtype=float), (self.batch_size,))
        if (sender < 0).any() or (sender > self.config.sender_buffer_capacity).any():
            raise SimulationError("sender usage out of range")
        if (receiver < 0).any() or (receiver > self.config.receiver_buffer_capacity).any():
            raise SimulationError("receiver usage out of range")
        if mask is None:
            self._sender = sender.copy()
            self._receiver = receiver.copy()
        else:
            self._sender[mask] = sender[mask]
            self._receiver[mask] = receiver[mask]

    # ---------------------------------------------------------------- step
    def step_second(self, threads: np.ndarray) -> dict[str, np.ndarray]:
        """Advance every environment by one second under ``threads`` (B, 3).

        Returns arrays: ``throughputs`` (B, 3) in Mbps, plus buffer states.
        """
        n = np.clip(np.round(np.asarray(threads, dtype=float)), 1, self.config.max_threads)
        if n.shape != (self.batch_size, 3):
            raise SimulationError(f"expected threads of shape ({self.batch_size}, 3), got {n.shape}")

        # Per-env aggregate stage rates (B, 3): min(n*TPT, ceiling).
        rates = np.minimum(n * self._tpt, self._ceiling)

        dt = self.config.duration / self.substeps
        sender_cap = self.config.sender_buffer_capacity
        receiver_cap = self.config.receiver_buffer_capacity
        sender, receiver = self._sender, self._receiver
        moved = np.zeros((self.batch_size, 3))

        per_step = rates * dt
        for _ in range(self.substeps):
            want_write = np.minimum(per_step[:, 2], receiver)
            want_net = np.minimum(per_step[:, 1], np.minimum(sender, receiver_cap - receiver))
            want_read = np.minimum(per_step[:, 0], sender_cap - sender)

            receiver = receiver - want_write
            sender = sender - want_net
            receiver = receiver + want_net
            sender = sender + want_read

            moved[:, 0] += want_read
            moved[:, 1] += want_net
            moved[:, 2] += want_write

        self._sender, self._receiver = sender, receiver
        throughputs = bytes_per_sec_to_mbps(moved / self.config.duration)
        return {
            "throughputs": throughputs,
            "threads": n.astype(int),
            "sender_usage": sender.copy(),
            "receiver_usage": receiver.copy(),
            "sender_free": sender_cap - sender,
            "receiver_free": receiver_cap - receiver,
        }
