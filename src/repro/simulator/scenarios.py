"""Scenario construction for offline training.

Two sources of simulator configs:

* :func:`scenario_from_profile` — the paper's pipeline: take the stage
  bandwidths ``B_i`` and per-thread throughputs ``TPT_i`` measured by the
  exploration/logging phase (§IV-A) and initialize the simulator with them.
* :func:`sample_scenario` — domain randomization around a base scenario
  (or fully random), used by tests and robustness/ablation studies to show
  the agent learns *generalizable dynamics* rather than one operating point.
"""

from __future__ import annotations

import numpy as np

from repro.simulator.config import SimulatorConfig
from repro.utils.rng import as_generator
from repro.utils.units import GiB


def scenario_from_profile(
    tpt: tuple[float, float, float],
    bandwidth: tuple[float, float, float],
    *,
    sender_buffer_capacity: float = 4.0 * GiB,
    receiver_buffer_capacity: float = 4.0 * GiB,
    max_threads: int = 30,
    label: str = "from-profile",
) -> SimulatorConfig:
    """Build a simulator config from measured per-thread / aggregate rates.

    ``tpt`` and ``bandwidth`` are the ``(read, network, write)`` triples from
    the exploration phase, in Mbps.
    """
    return SimulatorConfig(
        tpt_read=tpt[0],
        tpt_network=tpt[1],
        tpt_write=tpt[2],
        bandwidth_read=bandwidth[0],
        bandwidth_network=bandwidth[1],
        bandwidth_write=bandwidth[2],
        sender_buffer_capacity=sender_buffer_capacity,
        receiver_buffer_capacity=receiver_buffer_capacity,
        max_threads=max_threads,
        label=label,
    )


def simulator_config_from_testbed(testbed, **overrides) -> SimulatorConfig:
    """Simulator config matching an emulator testbed's measured profile.

    Maps a :class:`repro.emulator.testbed.TestbedConfig`'s per-thread
    throughputs and aggregate ceilings onto the Algorithm-1 simulator —
    the same bridge the exploration phase provides on a real deployment,
    here taken from the testbed's ground truth.  Keyword ``overrides``
    pass through to :class:`SimulatorConfig` (e.g. ``duration``).
    """
    fields = dict(
        tpt_read=testbed.source.tpt,
        tpt_network=testbed.network.tpt,
        tpt_write=testbed.destination.tpt,
        bandwidth_read=testbed.source.bandwidth,
        bandwidth_network=testbed.network.capacity,
        bandwidth_write=testbed.destination.bandwidth,
        sender_buffer_capacity=testbed.sender_buffer_capacity,
        receiver_buffer_capacity=testbed.receiver_buffer_capacity,
        max_threads=testbed.max_threads,
        label=testbed.label,
    )
    fields.update(overrides)
    return SimulatorConfig(**fields)


def sample_scenario(
    rng: int | np.random.Generator | None = None,
    *,
    base: SimulatorConfig | None = None,
    jitter: float = 0.2,
    bottleneck_range: tuple[float, float] = (500.0, 2000.0),
    max_threads: int = 30,
) -> SimulatorConfig:
    """Sample a randomized training scenario.

    With ``base`` given, each rate is jittered multiplicatively by up to
    ``±jitter`` — modelling measurement noise between the exploration run
    and reality.  Without ``base``, a fresh scenario is drawn: a bottleneck
    bandwidth in ``bottleneck_range`` (Mbps), per-stage ceilings at
    1–2x the bottleneck, and per-thread throughputs sized so the optimal
    concurrency lands in roughly [3, max_threads*2/3].
    """
    rng = as_generator(rng)
    if base is not None:
        factors = rng.uniform(1.0 - jitter, 1.0 + jitter, size=6)
        return SimulatorConfig(
            tpt_read=base.tpt_read * factors[0],
            tpt_network=base.tpt_network * factors[1],
            tpt_write=base.tpt_write * factors[2],
            bandwidth_read=base.bandwidth_read * factors[3],
            bandwidth_network=base.bandwidth_network * factors[4],
            bandwidth_write=base.bandwidth_write * factors[5],
            sender_buffer_capacity=base.sender_buffer_capacity,
            receiver_buffer_capacity=base.receiver_buffer_capacity,
            max_threads=base.max_threads,
            duration=base.duration,
            chunk_seconds=base.chunk_seconds,
            min_chunk_bytes=base.min_chunk_bytes,
            epsilon=base.epsilon,
            task_overhead=base.task_overhead,
            label=f"{base.label}+jitter" if base.label else "jittered",
        )

    bottleneck = float(rng.uniform(*bottleneck_range))
    # One stage is the bottleneck; the others have headroom.
    ceilings = bottleneck * rng.uniform(1.0, 2.0, size=3)
    ceilings[rng.integers(0, 3)] = bottleneck
    # Optimal thread count per stage drawn in [3, 2/3 * max_threads].
    optimal = rng.integers(3, max(4, (2 * max_threads) // 3), size=3)
    tpt = bottleneck / optimal
    return SimulatorConfig(
        tpt_read=float(tpt[0]),
        tpt_network=float(tpt[1]),
        tpt_write=float(tpt[2]),
        bandwidth_read=float(ceilings[0]),
        bandwidth_network=float(ceilings[1]),
        bandwidth_write=float(ceilings[2]),
        sender_buffer_capacity=float(rng.uniform(1.0, 8.0)) * GiB,
        receiver_buffer_capacity=float(rng.uniform(1.0, 8.0)) * GiB,
        max_threads=max_threads,
        label="random",
    )
