"""Configuration for the I/O–network dynamics simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.config import require_in_range, require_positive
from repro.utils.units import GiB


@dataclass(frozen=True)
class SimulatorConfig:
    """Parameters of the Algorithm-1 simulator.

    The simulator is "initialized with the buffer capacities at both ends,
    throughput per thread, bandwidth, and current concurrency values"
    (paper §IV-C).  All rates are Mbps, sizes are bytes, times are seconds.

    Attributes
    ----------
    tpt_read, tpt_network, tpt_write:
        Per-thread throughputs ``TPT_i`` — what one thread of each stage
        achieves when nothing else limits it (e.g. a sysadmin throttle).
    bandwidth_read, bandwidth_network, bandwidth_write:
        Aggregate stage ceilings ``B_i`` (storage device speed / NIC or
        path capacity).  Stage throughput never exceeds these no matter
        how many threads run.
    sender_buffer_capacity, receiver_buffer_capacity:
        Staging (tmpfs) capacity at each DTN.
    max_threads:
        Upper bound ``n_max`` for any concurrency value.
    duration:
        Virtual seconds simulated per :meth:`step_second` call (the paper
        simulates exactly one second per utility evaluation).
    chunk_seconds:
        Granularity of one task: each scheduled task moves roughly this
        many seconds' worth of one thread's data.  Smaller values cost
        more events but resolve buffer dynamics more finely.
    min_chunk_bytes:
        Floor on the task chunk size.
    epsilon:
        Retry delay added when a task finds no data / no buffer space
        (Algorithm 1 line 24's ε — "so it can retry after a short delay").
    task_overhead:
        Small scheduling overhead added after every *executed* task so time
        strictly advances; kept well below ``chunk_seconds`` so it costs a
        fraction of a percent of throughput.
    """

    tpt_read: float = 100.0
    tpt_network: float = 100.0
    tpt_write: float = 100.0
    bandwidth_read: float = 1000.0
    bandwidth_network: float = 1000.0
    bandwidth_write: float = 1000.0
    sender_buffer_capacity: float = 4.0 * GiB
    receiver_buffer_capacity: float = 4.0 * GiB
    max_threads: int = 30
    duration: float = 1.0
    chunk_seconds: float = 0.05
    min_chunk_bytes: float = 256.0 * 1024
    epsilon: float = 0.01
    task_overhead: float = 5e-4
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        for name in (
            "tpt_read",
            "tpt_network",
            "tpt_write",
            "bandwidth_read",
            "bandwidth_network",
            "bandwidth_write",
            "sender_buffer_capacity",
            "receiver_buffer_capacity",
            "duration",
            "chunk_seconds",
            "min_chunk_bytes",
            "epsilon",
            "task_overhead",
        ):
            require_positive(getattr(self, name), name)
        require_in_range(self.max_threads, 1, 10_000, "max_threads")

    @property
    def tpt(self) -> tuple[float, float, float]:
        """Per-thread throughputs ``(TPT_r, TPT_n, TPT_w)``."""
        return (self.tpt_read, self.tpt_network, self.tpt_write)

    @property
    def bandwidth(self) -> tuple[float, float, float]:
        """Stage ceilings ``(B_r, B_n, B_w)``."""
        return (self.bandwidth_read, self.bandwidth_network, self.bandwidth_write)

    @property
    def bottleneck(self) -> float:
        """End-to-end bottleneck ``b = min(B_r, B_n, B_w)`` in Mbps."""
        return min(self.bandwidth)

    def optimal_threads(self) -> tuple[int, int, int]:
        """Ideal thread counts ``n_i* = ceil(b / TPT_i)`` capped at ``max_threads``.

        These are the targets the agent should discover (§IV-A).
        """
        import math

        b = self.bottleneck
        return tuple(
            min(self.max_threads, max(1, math.ceil(b / tpt))) for tpt in self.tpt
        )  # type: ignore[return-value]
