"""Fleet-vectorized simulator core: N transfers per ``step_second`` call.

:class:`BatchedSimulator` holds N independent transfer states (sender /
receiver occupancy, elapsed time, per-stage moved / finish accumulators) as
numpy column arrays and advances all of them in one vectorized call.  It
replays :class:`~repro.simulator.core.IONetworkSimulator`'s event queue
**bit-identically** — every ``StageMetrics`` field and both diagnostics
match the scalar oracle exactly — so consumers (population training, the
fleet co-simulation path) can switch between the two freely.

How the heap is vectorized
--------------------------

The scalar simulator pops ``(t, seq, stage)`` tasks one at a time.  The
batched engine keeps, per transfer, one *slot* per scheduled thread laid
out in three fixed-width per-stage blocks, with a "next event time" and a
sequence number per slot, and advances all transfers in synchronized
*rounds*:

* a round finds each transfer's earliest event time (``argmin`` over the
  slot columns) and the maximal run of tasks tied at that time that the
  heap would pop consecutively — same stage, sequence numbers below any
  tied task of another stage;
* buffer preconditions are boolean masks (read needs sender space, network
  needs sender data *and* receiver space, write needs receiver data); a
  blocked run re-queues wholesale at ``t + ε`` with no state change;
* an unblocked run moves whole chunks; the number of chunks that safely
  fit is bounded conservatively, the new buffer/moved values come from
  ``np.add.accumulate`` (sequential left-fold, so every intermediate is
  bit-identical to the scalar ``+=`` chain), and the boundary event that
  moves a partial chunk falls back to processing a single task with the
  scalar's exact ``min``-chain;
* when the three stages' tied runs are cleanly ordered by sequence number
  (the common lockstep case) all three process in one round, each seeing
  the buffer state the previous one left behind.

Two observations make the relabelling cheap.  Sequence numbers only ever
matter through *comparisons* between coexisting tasks, so any renumbering
that preserves relative order is invisible — freshly pushed tasks take
``ctr + slot_index`` and ``ctr`` jumps past the block width.  And tasks of
one stage are anonymous (same chunk, same rate), so which *slot* carries
which outcome of a burst is a free choice — outcomes are assigned in slot
order, no per-burst ranking needed.

Rate/chunk tables are precomputed per clamped triple with ``np.minimum``
over the batch, replicating the scalar operation order exactly
(``min(tpt, bw / n) * 1e6 / 8.0``).

Telemetry (``sim/batch_steps``, ``sim/batch_size`` counters and a deferred
column-lane summary) accumulates in plain python attributes during
stepping — the hot loop performs **no** observability lookups — and is
exported once by :meth:`BatchedSimulator.export_telemetry`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.simulator.config import SimulatorConfig
from repro.simulator.core import StageMetrics
from repro.utils.errors import SimulationError

__all__ = ["BatchStageMetrics", "BatchedSimulator"]

_INF = np.inf
_BIG = np.int32(2**31 - 1)

#: Deferred column-lane format for the end-of-run telemetry export.
_BATCH_FMT = (
    '{"kind":"sim.batch","step":%d,"batch":%d,"rounds":%d,"events":%d}'
)


@dataclass(frozen=True)
class BatchStageMetrics:
    """Columnar :class:`StageMetrics`: one entry per transfer in the batch.

    Array fields are aligned ``(N,)`` (or ``(N, 3)`` for ``threads``);
    :meth:`column` materializes the scalar-simulator dataclass for one
    transfer, bit-identical to what ``IONetworkSimulator`` returns.
    """

    throughput_read: np.ndarray
    throughput_network: np.ndarray
    throughput_write: np.ndarray
    sender_usage: np.ndarray
    receiver_usage: np.ndarray
    sender_free: np.ndarray
    receiver_free: np.ndarray
    threads: np.ndarray

    def __len__(self) -> int:
        return len(self.throughput_read)

    @property
    def throughputs(self) -> np.ndarray:
        """``(N, 3)`` Mbps array, columns (read, network, write)."""
        return np.stack(
            [self.throughput_read, self.throughput_network, self.throughput_write], 1
        )

    def column(self, i: int) -> StageMetrics:
        """The scalar :class:`StageMetrics` for transfer ``i``."""
        return StageMetrics(
            throughput_read=float(self.throughput_read[i]),
            throughput_network=float(self.throughput_network[i]),
            throughput_write=float(self.throughput_write[i]),
            sender_usage=float(self.sender_usage[i]),
            receiver_usage=float(self.receiver_usage[i]),
            sender_free=float(self.sender_free[i]),
            receiver_free=float(self.receiver_free[i]),
            threads=tuple(int(v) for v in self.threads[i]),
        )


class BatchedSimulator:
    """Vectorized event-queue simulator for N independent transfers.

    Parameters
    ----------
    configs:
        One :class:`SimulatorConfig` per transfer (heterogeneous fleets are
        fine), or a single config with ``batch`` to replicate it.
    batch:
        Batch size when ``configs`` is a single config.
    sender_usage, receiver_usage:
        Optional ``(N,)`` initial occupancies in bytes.
    """

    def __init__(
        self,
        configs: SimulatorConfig | Sequence[SimulatorConfig],
        batch: int | None = None,
        *,
        sender_usage=None,
        receiver_usage=None,
    ) -> None:
        if isinstance(configs, SimulatorConfig):
            configs = [configs] * int(batch if batch is not None else 1)
        self.configs = list(configs)
        if not self.configs:
            raise SimulationError("BatchedSimulator needs at least one config")
        if batch is not None and len(self.configs) != batch:
            raise SimulationError(
                f"batch={batch} but {len(self.configs)} configs given"
            )
        n = self.batch = len(self.configs)

        def col(get) -> np.ndarray:
            return np.array([get(c) for c in self.configs], dtype=np.float64)

        self._tpt3 = np.stack(
            [col(lambda c: c.tpt_read), col(lambda c: c.tpt_network),
             col(lambda c: c.tpt_write)], 1)
        self._bw3 = np.stack(
            [col(lambda c: c.bandwidth_read), col(lambda c: c.bandwidth_network),
             col(lambda c: c.bandwidth_write)], 1)
        self._cap_s = col(lambda c: c.sender_buffer_capacity)
        self._cap_r = col(lambda c: c.receiver_buffer_capacity)
        self._horizon = col(lambda c: c.duration)
        self._eps = col(lambda c: c.epsilon)
        self._ovh = col(lambda c: c.task_overhead)
        self._chunk_s = col(lambda c: c.chunk_seconds)
        self._min_chunk = col(lambda c: c.min_chunk_bytes)
        self._nmax = np.array([c.max_threads for c in self.configs], dtype=np.int64)

        self._sender = np.zeros(n)
        self._receiver = np.zeros(n)
        self._elapsed = np.zeros(n)
        self.reset(sender_usage=sender_usage, receiver_usage=receiver_usage)
        #: Diagnostics of the most recent step, one entry per transfer.
        self.last_blocked_retries = np.zeros(n, dtype=np.int64)
        self.last_queue_peak = np.zeros(n, dtype=np.int64)

        self._rows = np.arange(n)
        self._ksl = 0  # allocated per-stage block width
        # Telemetry accumulates in plain ints/lists; no obs calls in-loop.
        self._stat_steps = 0
        self._stat_transfer_steps = 0
        self._stat_rounds: list[int] = []
        self._stat_events: list[int] = []

    # --------------------------------------------------------------- state
    @property
    def sender_usage(self) -> np.ndarray:
        """Bytes currently staged at each sender (read-only view)."""
        return self._sender

    @property
    def receiver_usage(self) -> np.ndarray:
        """Bytes currently staged at each receiver (read-only view)."""
        return self._receiver

    @property
    def elapsed(self) -> np.ndarray:
        """Simulated seconds per transfer."""
        return self._elapsed

    def reset(self, *, sender_usage=None, receiver_usage=None, mask=None) -> None:
        """Reset buffers and clocks; ``mask`` restricts to selected columns."""
        n = self.batch
        snd = (np.zeros(n) if sender_usage is None
               else np.broadcast_to(np.asarray(sender_usage, dtype=np.float64), (n,)))
        rcv = (np.zeros(n) if receiver_usage is None
               else np.broadcast_to(np.asarray(receiver_usage, dtype=np.float64), (n,)))
        sel = slice(None) if mask is None else np.asarray(mask, dtype=bool)
        bad = (snd < 0.0) | (snd > self._cap_s) | (rcv < 0.0) | (rcv > self._cap_r)
        if np.any(bad if mask is None else bad & sel):
            raise SimulationError("initial buffer usage out of range")
        if mask is None:
            self._sender[:] = snd
            self._receiver[:] = rcv
            self._elapsed[:] = 0.0
        else:
            np.copyto(self._sender, snd, where=sel)
            np.copyto(self._receiver, rcv, where=sel)
            np.copyto(self._elapsed, 0.0, where=sel)

    # ------------------------------------------------------------- buffers
    def _ensure(self, ksl: int) -> None:
        """(Re)allocate the per-slot working arrays for block width ``ksl``."""
        if ksl <= self._ksl:
            return
        n = self.batch
        self._ksl = ksl
        k3 = 3 * ksl
        self._t = np.empty((n, k3))
        self._seq = np.empty((n, k3), dtype=np.int32)
        self._idxgrid = np.broadcast_to(np.arange(ksl, dtype=np.int32), (n, ksl))
        self._tie = np.empty((n, k3), dtype=bool)
        self._scr = np.empty((n, ksl), dtype=bool)
        self._fold = np.empty((3 * n, ksl + 2))
        self._tmin = np.empty(n)

    # ---------------------------------------------------------------- step
    def step_second(self, threads) -> BatchStageMetrics:
        """Advance every transfer by its configured ``duration``.

        ``threads`` is an ``(N, 3)`` array-like of per-transfer concurrency
        triples; values are rounded and clamped to ``[1, max_threads]``
        exactly as the scalar simulator does.
        """
        n_rows = self.batch
        threads = np.asarray(threads, dtype=np.float64)
        if threads.shape != (n_rows, 3):
            raise SimulationError(
                f"expected threads of shape ({n_rows}, 3), got {threads.shape}"
            )
        n = np.clip(np.rint(threads), 1, self._nmax[:, None]).astype(np.int64)
        # Per-(transfer, stage) rate/chunk tables — the scalar op order
        # (min(tpt, bw / n) * 1e6 / 8.0) replicated with batch minimums.
        rates3 = np.minimum(self._tpt3, self._bw3 / n) * 1e6 / 8.0
        chunks3 = np.maximum(self._min_chunk[:, None], rates3 * self._chunk_s[:, None])

        cum = np.cumsum(n, 1)
        total = cum[:, 2]
        ksl = int(n.max())
        self._ensure(ksl)
        t = self._t[:, : 3 * ksl]
        seq = self._seq[:, : 3 * ksl]
        tie = self._tie[:, : 3 * ksl]
        idxg = self._idxgrid[:, :ksl]
        tmin = self._tmin
        rows = self._rows
        t_s = [t[:, s * ksl:(s + 1) * ksl] for s in range(3)]
        seq_s = [seq[:, s * ksl:(s + 1) * ksl] for s in range(3)]
        tie_s = [tie[:, s * ksl:(s + 1) * ksl] for s in range(3)]
        # Initial queue: per stage, slots [0, n_s) at t = 0 with sequence
        # numbers continuing across the blocks in (read, net, write) order.
        for s in range(3):
            alive = idxg < n[:, s:s + 1]
            np.copyto(t_s[s], np.where(alive, 0.0, _INF))
            seq_s[s][:] = idxg + (0 if s == 0 else cum[:, s - 1:s])
        ctr = total.astype(np.int32)

        moved3 = np.zeros((n_rows, 3))
        fin3 = np.zeros((n_rows, 3))
        blocked = np.zeros(n_rows, dtype=np.int64)
        sender, receiver = self._sender, self._receiver
        cap_s, cap_r = self._cap_s, self._cap_r
        horizon, eps, ovh = self._horizon, self._eps, self._ovh
        fold = self._fold
        fold_w = fold.shape[1]
        fold_flat = fold.reshape(-1)
        gather_base = rows * fold_w
        events = 0
        rounds = 0

        while True:
            t.min(1, out=tmin)
            act = tmin < horizon
            if not act.any():
                break
            rounds += 1
            np.equal(t, tmin[:, None], out=tie)
            # Tied-run seq extents per stage; BIG/-1 mark an empty run.
            # Only the four extents the ord3 test needs are computed up
            # front; the leader tie-break (rare) fills in mn[0] lazily.
            mn1 = np.minimum.reduce(seq_s[1], axis=1, where=tie_s[1], initial=_BIG)
            mn2 = np.minimum.reduce(seq_s[2], axis=1, where=tie_s[2], initial=_BIG)
            mx0 = np.maximum.reduce(seq_s[0], axis=1, where=tie_s[0],
                                    initial=np.int32(-1))
            mx1 = np.maximum.reduce(seq_s[1], axis=1, where=tie_s[1],
                                    initial=np.int32(-1))
            # Cleanly ordered read < net < write runs process as one
            # superround; otherwise only the leader stage's tied prefix.
            # (Rows with ties in a single stage are vacuously ordered, so
            # the common lockstep regimes all take the fast path.)
            ord3 = (mx0 < mn1) & (mx0 < mn2) & (mx1 < mn2)
            allord = bool(ord3.all())
            if not allord:
                mn0 = np.minimum.reduce(seq_s[0], axis=1, where=tie_s[0],
                                        initial=_BIG)
                mn = (mn0, mn1, mn2)
                lead = np.where(mn0 <= mn1, 0, 1)
                lead = np.where(mn2 < np.minimum(mn0, mn1), 2, lead)
            proceed = act.copy()
            for s in range(3):
                if allord:
                    member = tie_s[s] & proceed[:, None]
                else:
                    othlim = np.minimum(mn[(s + 1) % 3], mn[(s + 2) % 3])
                    gate = act & np.where(ord3, proceed, lead == s)
                    lim = np.where(ord3, _BIG, othlim)
                    member = tie_s[s] & gate[:, None] & (seq_s[s] < lim[:, None])
                m = np.add.reduce(member, axis=1, dtype=np.int32)
                if not m.any():
                    continue
                c = chunks3[:, s]
                r = rates3[:, s]
                # Exact scalar preconditions and single-event min-chains
                # (np.minimum matches the scalar if/min ladders bit-for-bit
                # on the in-range values these buffers can take).
                if s == 0:
                    sup = cap_s - sender
                    amt1 = np.minimum(c, sup)
                elif s == 1:
                    sup = np.minimum(sender, cap_r - receiver)
                    amt1 = np.minimum(np.minimum(c, sender), sup)
                else:
                    sup = receiver
                    amt1 = np.minimum(c, sup)
                blkc = sup <= 0.0
                anyblk = bool(blkc.any())
                # Conservative whole-chunk count: one chunk of slack keeps
                # the fold exact-full under FP drift; the boundary event
                # runs through the single-task path instead.
                m_eff = np.minimum(
                    m, np.maximum(np.floor(sup / c).astype(np.int32) - 1, 0)
                )
                has = m >= 1
                if anyblk:
                    exec_ = has & ~blkc
                    blk = has ^ exec_
                else:
                    exec_ = has
                full = exec_ & (m_eff >= 1)
                single = exec_ ^ full
                amt = np.where(full, c, amt1)
                j = np.where(full, m_eff, single)
                u = np.where(blk, m, j) if anyblk else j
                jmax = int(j.max())
                if jmax > 0:
                    # Sequential folds: primary buffer, receiver (net only)
                    # and the per-stage moved counter advance through
                    # np.add.accumulate so every intermediate matches the
                    # scalar += chain bit-for-bit.
                    w = jmax + 1
                    nf = 3 * n_rows if s == 1 else 2 * n_rows
                    fv = fold[:nf, :w]
                    primary = receiver if s == 2 else sender
                    step_p = amt if s == 0 else -amt
                    fold[0:n_rows, 0] = primary
                    fold[0:n_rows, 1:w] = step_p[:, None]
                    fold[n_rows:2 * n_rows, 0] = moved3[:, s]
                    fold[n_rows:2 * n_rows, 1:w] = amt[:, None]
                    if s == 1:
                        fold[2 * n_rows:3 * n_rows, 0] = receiver
                        fold[2 * n_rows:3 * n_rows, 1:w] = amt[:, None]
                    np.add.accumulate(fv, axis=1, out=fv)
                    gi = gather_base + j
                    new_p = fold_flat.take(gi)
                    new_mv = fold_flat.take(gi + n_rows * fold_w)
                    execd = j > 0
                    if s == 0:
                        np.copyto(sender, new_p, where=execd)
                    elif s == 1:
                        new_rcv = fold_flat.take(gi + 2 * n_rows * fold_w)
                        np.copyto(sender, new_p, where=execd)
                        np.copyto(receiver, new_rcv, where=execd)
                    else:
                        np.copyto(receiver, new_p, where=execd)
                    np.copyto(moved3[:, s], new_mv, where=execd)
                    finish = tmin + amt / r
                    fin_col = fin3[:, s]
                    np.copyto(fin_col, finish, where=execd & (finish > fin_col))
                    if anyblk:
                        tnew = np.where(blk, tmin + eps, finish + ovh)
                    else:
                        tnew = finish + ovh
                else:
                    tnew = tmin + eps
                if anyblk:
                    blocked += np.where(blk, m, 0)
                tpush = np.where(tnew < horizon, tnew, _INF)
                # Consume the first u members (slot order — tasks of one
                # stage are anonymous, so the assignment is free).
                if bool(np.any(u < m)):
                    rk = np.add.accumulate(member, axis=1, dtype=np.int32)
                    upd = member & (rk <= u[:, None])
                else:
                    upd = member
                np.copyto(t_s[s], tpush[:, None], where=upd)
                np.copyto(seq_s[s], idxg + ctr[:, None], where=upd)
                ctr += np.int32(ksl)
                events += int(u.sum())
                proceed &= u >= m

        thr3 = (moved3 / np.maximum(horizon[:, None], fin3)) * 8.0 / 1e6
        self._elapsed += horizon
        self.last_blocked_retries = blocked
        self.last_queue_peak = total.copy()
        self._stat_steps += 1
        self._stat_transfer_steps += n_rows
        self._stat_rounds.append(rounds)
        self._stat_events.append(events)
        return BatchStageMetrics(
            throughput_read=thr3[:, 0],
            throughput_network=thr3[:, 1],
            throughput_write=thr3[:, 2],
            sender_usage=sender.copy(),
            receiver_usage=receiver.copy(),
            sender_free=cap_s - sender,
            receiver_free=cap_r - receiver,
            threads=n,
        )

    # ----------------------------------------------------------- telemetry
    def export_telemetry(self) -> bool:
        """Flush accumulated counters to the active obs session, if any.

        Stepping itself never touches :mod:`repro.obs`; this exports the
        deferred totals (``sim/batch_steps``, ``sim/batch_size``) and a
        column-lane per-step summary in one call at end of run.  Returns
        True when a session was active and the export happened.
        """
        sess = obs.active()
        if sess is None or self._stat_steps == 0:
            return False
        sess.count("sim/batch_steps", self._stat_steps)
        sess.count("sim/batch_size", self._stat_transfer_steps)
        sess.count("sim/batch_rounds", sum(self._stat_rounds))
        sess.count("sim/batch_events", sum(self._stat_events))
        steps = self._stat_steps
        sess.sample_columns(
            _BATCH_FMT,
            (
                list(range(steps)),
                [self.batch] * steps,
                self._stat_rounds,
                self._stat_events,
            ),
            steps,
        )
        self._stat_steps = 0
        self._stat_transfer_steps = 0
        self._stat_rounds = []
        self._stat_events = []
        return True
