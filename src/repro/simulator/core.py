"""Algorithm 1: the priority-queue I/O–network dynamics simulator.

Faithful to the paper's pseudocode:

* tasks (one per scheduled thread slot) live in a time-ordered priority
  queue; popping a task checks its buffer precondition, moves a chunk if it
  can, and re-enqueues itself at ``t + d_task + ε`` while that lands before
  the horizon;
* a read task needs free sender-buffer space, a network task needs data at
  the sender *and* free receiver space, a write task needs data at the
  receiver;
* after the queue drains, per-stage byte counters are normalized by their
  finish times to produce throughputs;
* the buffer occupancies persist across calls ("update the internal
  simulator state"), which is exactly what gives the environment its
  non-trivial dynamics (Fig. 1).

Aggregate stage ceilings ``B_i`` are enforced by capping the effective
per-thread rate at ``B_i / n_i`` — with ``n_i`` threads running the stage
can never exceed its bandwidth.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro import obs
from repro.simulator.config import SimulatorConfig
from repro.utils.errors import SimulationError
from repro.utils.units import bytes_per_sec_to_mbps, mbps_to_bytes_per_sec

_READ, _NETWORK, _WRITE = 0, 1, 2
STAGE_NAMES = ("read", "network", "write")

#: Histogram buckets for event-queue depth (tasks = scheduled thread slots).
_QUEUE_DEPTH_BUCKETS = (2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0)


@dataclass(frozen=True)
class StageMetrics:
    """Per-second observation returned by :meth:`IONetworkSimulator.step_second`.

    Throughputs are Mbps achieved over the simulated second; buffer values
    are bytes at the end of the second.
    """

    throughput_read: float
    throughput_network: float
    throughput_write: float
    sender_usage: float
    receiver_usage: float
    sender_free: float
    receiver_free: float
    threads: tuple[int, int, int]

    @property
    def throughputs(self) -> tuple[float, float, float]:
        """``(t_r, t_n, t_w)`` in Mbps."""
        return (self.throughput_read, self.throughput_network, self.throughput_write)


class IONetworkSimulator:
    """Event-queue simulator of coupled read/network/write stages.

    The simulator is deterministic: identical call sequences produce
    identical metrics, which keeps offline PPO training reproducible.

    Parameters
    ----------
    config:
        Static scenario description (per-thread speeds, ceilings, buffers).
    sender_usage, receiver_usage:
        Initial staging-buffer occupancy in bytes (default empty).
    cache_rates:
        Memoize per-thread rates, chunk sizes and the initial task queue
        per clamped thread triple (default on).  The config is frozen, so
        these are pure functions of the triple; training loops revisit a
        handful of triples millions of times and the recomputation used to
        dominate :meth:`step_second` setup.  Results are bit-identical
        either way.
    """

    #: Distinct thread triples memoized before the cache resets.  Policies
    #: visit far fewer than this (≤ max_threads³ bounded by exploration);
    #: the cap only guards pathological sweeps over huge ``max_threads``.
    _RATE_CACHE_MAX = 1024

    def __init__(
        self,
        config: SimulatorConfig,
        *,
        sender_usage: float = 0.0,
        receiver_usage: float = 0.0,
        cache_rates: bool = True,
    ) -> None:
        self.config = config
        self._validate_usage(sender_usage, receiver_usage)
        self._sender_usage = float(sender_usage)
        self._receiver_usage = float(receiver_usage)
        self._elapsed = 0.0
        self.cache_rates = bool(cache_rates)
        #: (n_r, n_n, n_w) -> (rates, chunks, initial queue); see step_second.
        self._rate_cache: dict[tuple[int, int, int], tuple] = {}
        # Bound method lookup hoisted out of the per-step path.
        self._obs_active = obs.active
        #: Diagnostics of the most recent :meth:`step_second` call — how many
        #: blocked tasks re-queued after the ε back-off, and the deepest the
        #: event queue got.  Exported to :mod:`repro.obs` when enabled.
        self.last_blocked_retries = 0
        self.last_queue_peak = 0

    def _validate_usage(self, sender: float, receiver: float) -> None:
        if not (0.0 <= sender <= self.config.sender_buffer_capacity):
            raise SimulationError(f"sender usage {sender} out of range")
        if not (0.0 <= receiver <= self.config.receiver_buffer_capacity):
            raise SimulationError(f"receiver usage {receiver} out of range")

    # --------------------------------------------------------------- state
    @property
    def sender_usage(self) -> float:
        """Bytes currently staged at the sender."""
        return self._sender_usage

    @property
    def receiver_usage(self) -> float:
        """Bytes currently staged at the receiver."""
        return self._receiver_usage

    @property
    def elapsed(self) -> float:
        """Total simulated seconds so far."""
        return self._elapsed

    def reset(self, *, sender_usage: float = 0.0, receiver_usage: float = 0.0) -> None:
        """Reset buffers (and the clock) to start a fresh episode."""
        self._validate_usage(sender_usage, receiver_usage)
        self._sender_usage = float(sender_usage)
        self._receiver_usage = float(receiver_usage)
        self._elapsed = 0.0

    # ----------------------------------------------------------------- step
    def _clamp_threads(self, threads) -> tuple[int, int, int]:
        n_max = self.config.max_threads
        clamped = tuple(int(min(n_max, max(1, round(float(n))))) for n in threads)
        if len(clamped) != 3:
            raise SimulationError(f"expected 3 thread counts, got {threads!r}")
        return clamped  # type: ignore[return-value]

    def step_second(self, threads) -> StageMetrics:
        """Simulate ``config.duration`` seconds under concurrency ``threads``.

        ``threads`` is any length-3 sequence ``(n_r, n_n, n_w)``; values are
        rounded and clamped to ``[1, max_threads]`` exactly as the
        production loop does (§IV-F).
        """
        cfg = self.config
        n = self._clamp_threads(threads)

        cached = self._rate_cache.get(n) if self.cache_rates else None
        if cached is None:
            # Effective per-thread byte rates with the aggregate ceiling
            # applied, the chunk each thread moves per task, and the t = 0
            # task queue (Algorithm 1, line 29) — all pure in (config, n).
            rates = [
                mbps_to_bytes_per_sec(min(tpt, bw / n_i))
                for tpt, bw, n_i in zip(cfg.tpt, cfg.bandwidth, n)
            ]
            chunks = [
                max(cfg.min_chunk_bytes, rate * cfg.chunk_seconds) for rate in rates
            ]
            init_queue: list[tuple[float, int, int]] = []
            for stage in (_READ, _NETWORK, _WRITE):
                for _ in range(n[stage]):
                    init_queue.append((0.0, len(init_queue), stage))
            if self.cache_rates:
                if len(self._rate_cache) >= self._RATE_CACHE_MAX:
                    # FIFO eviction: drop the oldest triple (dict insertion
                    # order) so a sweep of cold triples cannot wipe the
                    # whole cache and with it the hot working set.
                    del self._rate_cache[next(iter(self._rate_cache))]
                self._rate_cache[n] = (rates, chunks, init_queue)
        else:
            rates, chunks, init_queue = cached

        horizon = cfg.duration
        eps = cfg.epsilon
        overhead = cfg.task_overhead
        sender_cap = cfg.sender_buffer_capacity
        receiver_cap = cfg.receiver_buffer_capacity
        sender = self._sender_usage
        receiver = self._receiver_usage

        # Hot loop: ~duration/(chunk_seconds + overhead) events per thread
        # per call, millions of calls per training run.  Per-stage scalars
        # replace list indexing, heap functions are bound locally, and
        # ``min`` unrolls to comparisons — all value-identical to the
        # straightforward form this replaced.
        heappop, heappush = heapq.heappop, heapq.heappush
        rate_r, rate_n, rate_w = rates
        chunk_r, chunk_n, chunk_w = chunks
        moved_r = moved_n = moved_w = 0.0
        fin_r = fin_n = fin_w = 0.0
        blocked_retries = 0

        # The initial queue is already a valid min-heap: every priority is
        # 0.0 and sequence numbers ascend, so no heapify is needed.  The
        # sequence number breaks ties deterministically.  Each iteration
        # pops one task and pushes at most one back, so the queue never
        # grows past its starting depth — the peak *is* the initial size.
        queue = init_queue.copy()
        seq = len(queue)
        queue_peak = seq

        while queue:
            t, _, stage = heappop(queue)
            if stage == _READ:
                free = sender_cap - sender
                if free > 0.0:
                    amount = chunk_r if chunk_r <= free else free
                    sender += amount
                    moved_r += amount
                    finish = t + amount / rate_r
                    if finish > fin_r:
                        fin_r = finish
                    t_next = finish + overhead
                else:
                    blocked_retries += 1
                    t_next = t + eps
            elif stage == _NETWORK:
                free = receiver_cap - receiver
                if sender > 0.0 and free > 0.0:
                    amount = chunk_n
                    if sender < amount:
                        amount = sender
                    if free < amount:
                        amount = free
                    sender -= amount
                    receiver += amount
                    moved_n += amount
                    finish = t + amount / rate_n
                    if finish > fin_n:
                        fin_n = finish
                    t_next = finish + overhead
                else:
                    blocked_retries += 1
                    t_next = t + eps
            else:  # _WRITE
                if receiver > 0.0:
                    amount = chunk_w if chunk_w <= receiver else receiver
                    receiver -= amount
                    moved_w += amount
                    finish = t + amount / rate_w
                    if finish > fin_w:
                        fin_w = finish
                    t_next = finish + overhead
                else:
                    blocked_retries += 1
                    t_next = t + eps
            if t_next < horizon:
                heappush(queue, (t_next, seq, stage))
                seq += 1

        # Normalize throughputs by their finish times (line 37): a stage that
        # ran past the horizon gets credited over its true elapsed time.
        throughputs = [
            bytes_per_sec_to_mbps(moved / (horizon if horizon >= fin else fin))
            for moved, fin in ((moved_r, fin_r), (moved_n, fin_n), (moved_w, fin_w))
        ]

        self._sender_usage = sender
        self._receiver_usage = receiver
        self._elapsed += horizon
        self.last_blocked_retries = blocked_retries
        self.last_queue_peak = queue_peak
        sess = self._obs_active()
        if sess is not None:
            sess.count("sim/steps")
            sess.count("sim/blocked_retries", blocked_retries)
            sess.observe("sim/queue_peak", queue_peak, buckets=_QUEUE_DEPTH_BUCKETS)

        return StageMetrics(
            throughput_read=throughputs[_READ],
            throughput_network=throughputs[_NETWORK],
            throughput_write=throughputs[_WRITE],
            sender_usage=sender,
            receiver_usage=receiver,
            sender_free=sender_cap - sender,
            receiver_free=receiver_cap - receiver,
            threads=n,
        )
