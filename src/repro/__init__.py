"""Reproduction of AutoMDT — "Modular Architecture for High-Performance and
Low Overhead Data Transfers" (SC 2025).

Subpackages
-----------
``repro.core``
    The paper's contribution: utility function, exploration phase, PPO agent
    and offline training (Algorithms 1–2 consumers), production controller.
``repro.simulator``
    Algorithm 1 — the I/O–network dynamics simulator used for offline
    training.
``repro.emulator``
    The evaluation testbed emulator standing in for CloudLab/FABRIC
    hardware (see DESIGN.md §2).
``repro.transfer``
    Datasets, the modular transfer engine, the chunk-granular file-level
    engine, probing and metrics.
``repro.baselines``
    Marlin, joint gradient descent, Globus-static, probe heuristics, and
    the online single-parameter DRL baseline.
``repro.workloads``
    The paper's Large / Mixed datasets.
``repro.harness``
    Per-table/figure experiments, artifact cache, CLI
    (``python -m repro.harness``).

Quick start::

    from repro.core import AutoMDT
    from repro.emulator import Testbed, fig5_read_bottleneck
    from repro.transfer import ModularTransferEngine
    from repro.transfer.files import uniform_dataset

    pipeline = AutoMDT(seed=7)
    pipeline.explore(Testbed(fig5_read_bottleneck(), rng=7), duration=120)
    pipeline.train_offline()
    result = ModularTransferEngine(
        Testbed(fig5_read_bottleneck(), rng=8),
        uniform_dataset(25, 1e9),
        pipeline.controller(),
    ).run()
"""

__version__ = "0.1.0"
