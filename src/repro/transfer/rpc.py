"""Receiver→sender buffer reporting over a (simulated) RPC channel.

Paper §IV-D1: "Every DTN measures its available buffer space with a system
call and the receiver sends the result to its peer over the RPC channel."
On a real WAN that report arrives one round-trip late; the channel models a
configurable staleness of ``delay`` probe intervals so the agent sees the
same slightly-stale receiver state it would in production.

Reports can also be *lost*: a congested or flapping control channel drops
the datagram and the sender keeps acting on the last report it received
(``exchange(..., lost=True)``) — the failure mode the fault-injection
subsystem (:mod:`repro.emulator.faults`) exercises via
:class:`~repro.emulator.faults.ReportLoss` windows.
"""

from __future__ import annotations

from collections import deque

from repro.utils.config import require_non_negative


class BufferReportChannel:
    """FIFO of receiver buffer reports with fixed delay in report intervals."""

    def __init__(self, delay: int = 1, initial_value: float = 0.0) -> None:
        require_non_negative(delay, "delay")
        self.delay = int(delay)
        self._queue: deque[float] = deque([initial_value] * self.delay)
        self._last_delivered = float(initial_value)

    @property
    def last_delivered(self) -> float:
        """The most recent report the sender actually received."""
        return self._last_delivered

    def exchange(self, fresh_value: float, *, lost: bool = False) -> float:
        """Push the receiver's newest measurement, pop the one now arriving.

        With ``delay = 0`` this is a passthrough.  With ``lost = True`` the
        fresh report is dropped in flight: nothing enters the channel and the
        sender re-reads the stale value it already had.
        """
        if lost:
            return self._last_delivered
        if self.delay == 0:
            self._last_delivered = float(fresh_value)
            return fresh_value
        self._queue.append(fresh_value)
        self._last_delivered = float(self._queue.popleft())
        return self._last_delivered

    def reset(self, initial_value: float = 0.0) -> None:
        """Clear the in-flight reports."""
        self._queue = deque([initial_value] * self.delay)
        self._last_delivered = float(initial_value)
