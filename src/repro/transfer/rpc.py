"""Receiver→sender buffer reporting over a (simulated) RPC channel.

Paper §IV-D1: "Every DTN measures its available buffer space with a system
call and the receiver sends the result to its peer over the RPC channel."
On a real WAN that report arrives one round-trip late; the channel models a
configurable staleness of ``delay`` probe intervals so the agent sees the
same slightly-stale receiver state it would in production.
"""

from __future__ import annotations

from collections import deque

from repro.utils.config import require_non_negative


class BufferReportChannel:
    """FIFO of receiver buffer reports with fixed delay in report intervals."""

    def __init__(self, delay: int = 1, initial_value: float = 0.0) -> None:
        require_non_negative(delay, "delay")
        self.delay = int(delay)
        self._queue: deque[float] = deque([initial_value] * self.delay)

    def exchange(self, fresh_value: float) -> float:
        """Push the receiver's newest measurement, pop the one now arriving.

        With ``delay = 0`` this is a passthrough.
        """
        if self.delay == 0:
            return fresh_value
        self._queue.append(fresh_value)
        return self._queue.popleft()

    def reset(self, initial_value: float = 0.0) -> None:
        """Clear the in-flight reports."""
        self._queue = deque([initial_value] * self.delay)
