"""Resilient transfer supervision: detect → backoff → retry → resume.

:class:`TransferSupervisor` wraps a :class:`~repro.transfer.engine.ModularTransferEngine`
with the failure handling the paper's production loop (§IV-F) assumes away:

* **stall detection** — a watchdog aborts the attempt when the destination
  makes no forward progress for ``stall_intervals`` consecutive probe
  intervals;
* **bounded retry with exponential backoff + jitter** — each retry restarts
  the data plane (buffers, connections) after a deterministic, seeded
  backoff delay on the virtual clock;
* **checkpoint / resume** — a :class:`TransferCheckpoint` records the bytes
  durably written and the controller's last thread triple, so a retry never
  re-transfers completed bytes (only bytes lost in staging buffers are
  re-sent);
* **incident accounting** — each incident produces a
  :class:`~repro.transfer.metrics.FaultEvent` and, once progress resumes, a
  :class:`~repro.transfer.metrics.RecoveryRecord` (time-to-detect,
  time-to-recover, goodput lost) in the stitched transfer metrics.

The supervisor state machine::

    RUNNING --(no progress for N intervals)--> DETECTED
    DETECTED --(retries left)--> BACKOFF --> RESUME(checkpoint) --> RUNNING
    DETECTED --(retries exhausted)--> FAILED
    RUNNING --(all bytes written)--> COMPLETED
    RUNNING --(max_seconds)--> TIMED_OUT
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.transfer.engine import ModularTransferEngine, Observation, TransferResult
from repro.transfer.metrics import FaultEvent, RecoveryRecord, TransferMetrics
from repro.utils.backoff import RetryBudget, backoff_delay
from repro.utils.config import (
    dump_json,
    load_json,
    require_in_range,
    require_non_negative,
    require_positive,
)
from repro.utils.errors import CheckpointVersionError
from repro.utils.units import bytes_per_sec_to_mbps

#: Serialization version written by :meth:`TransferCheckpoint.to_dict`.
#: Bump when the on-disk schema changes incompatibly; loaders reject
#: unknown versions with :class:`~repro.utils.errors.CheckpointVersionError`
#: so a supervisor can fall back to a fresh transfer instead of resuming
#: from fields it would misinterpret.
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision knobs.

    ``stall_intervals`` is the watchdog patience in probe intervals;
    backoff for the *k*-th consecutive fruitless retry is
    ``min(backoff_max, backoff_base * backoff_factor**(k-1))`` scaled by a
    seeded jitter factor uniform in ``[1 - jitter, 1 + jitter]``.

    ``max_elapsed`` is the retry *budget*: the supervised transfer never
    schedules a resume more than ``max_elapsed`` virtual seconds after its
    clock origin, so a retry loop cannot creep past a deadline one capped
    backoff at a time.  An exhausted budget is a typed outcome
    (:attr:`SupervisedTransferResult.budget_exhausted`), not an exception.
    """

    stall_intervals: int = 5
    min_progress_bytes: float = 1.0
    max_retries: int = 4
    backoff_base: float = 2.0
    backoff_factor: float = 2.0
    backoff_max: float = 60.0
    jitter: float = 0.25
    max_elapsed: float = math.inf
    seed: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        require_positive(self.stall_intervals, "stall_intervals")
        require_positive(self.min_progress_bytes, "min_progress_bytes")
        require_non_negative(self.max_retries, "max_retries")
        require_positive(self.backoff_base, "backoff_base")
        require_positive(self.backoff_factor, "backoff_factor")
        require_positive(self.backoff_max, "backoff_max")
        require_in_range(self.jitter, 0.0, 1.0, "jitter")
        require_positive(self.max_elapsed, "max_elapsed")


@dataclass(frozen=True)
class TransferCheckpoint:
    """Everything needed to resume an interrupted transfer.

    ``bytes_completed`` counts only bytes durably written at the
    destination — bytes lost in staging buffers are deliberately excluded
    and will be re-read on resume.  ``elapsed`` is the global virtual time
    to restart at (the abort instant plus the backoff delay), and
    ``threads`` warm-starts the controller's view of concurrency.
    """

    bytes_completed: float
    elapsed: float
    threads: tuple[int, int, int] = (1, 1, 1)
    attempt: int = 0

    def to_dict(self) -> dict:
        """JSON-friendly form (inverse of :meth:`from_dict`)."""
        return {
            "version": CHECKPOINT_VERSION,
            "bytes_completed": self.bytes_completed,
            "elapsed": self.elapsed,
            "threads": list(self.threads),
            "attempt": self.attempt,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TransferCheckpoint":
        """Rebuild from :meth:`to_dict` output.

        Checkpoints written before versioning carry no ``version`` field and
        are read as version 1; any other version raises
        :class:`~repro.utils.errors.CheckpointVersionError` *before* any
        field access, so schema drift surfaces as a typed error rather than
        a ``KeyError`` mid-parse.
        """
        version = int(data.get("version", 1))
        if version != CHECKPOINT_VERSION:
            raise CheckpointVersionError(
                f"unsupported checkpoint version {version} (this build reads "
                f"version {CHECKPOINT_VERSION})"
            )
        return cls(
            bytes_completed=float(data["bytes_completed"]),
            elapsed=float(data["elapsed"]),
            threads=tuple(int(n) for n in data.get("threads", (1, 1, 1))),  # type: ignore[arg-type]
            attempt=int(data.get("attempt", 0)),
        )

    def save(self, path: str | Path) -> None:
        """Persist to JSON so a new process can resume the transfer."""
        dump_json(self.to_dict(), path)

    @classmethod
    def load(cls, path: str | Path) -> "TransferCheckpoint":
        """Inverse of :meth:`save`."""
        return cls.from_dict(load_json(path))


@dataclass(frozen=True)
class AttemptRecord:
    """One engine run under supervision."""

    index: int
    start_time: float
    end_time: float
    start_bytes: float
    end_bytes: float
    outcome: str  # "completed" | "stalled" | "timed_out"

    @property
    def bytes_transferred(self) -> float:
        """Durable bytes this attempt added at the destination."""
        return self.end_bytes - self.start_bytes


@dataclass(frozen=True)
class SupervisedTransferResult:
    """Outcome of a supervised transfer across all attempts.

    ``budget_exhausted`` marks a transfer abandoned because the next resume
    would have landed past :attr:`SupervisorConfig.max_elapsed` — the typed
    :class:`~repro.utils.backoff.RetryBudget` outcome, distinct from both
    ``timed_out`` (engine budget) and plain retry exhaustion.
    """

    completed: bool
    timed_out: bool
    completion_time: float
    total_bytes: float
    metrics: TransferMetrics
    attempts: tuple[AttemptRecord, ...]
    retries_used: int
    last_checkpoint: TransferCheckpoint | None
    controller_name: str = ""
    budget_exhausted: bool = False

    @property
    def effective_throughput(self) -> float:
        """End-to-end Mbps over the whole supervised transfer."""
        if self.completion_time <= 0:
            return 0.0
        return bytes_per_sec_to_mbps(self.total_bytes / self.completion_time)


class _StallDetector:
    """Watchdog: abort when the destination stops making forward progress."""

    def __init__(self, stall_intervals: int, min_progress_bytes: float) -> None:
        self.stall_intervals = stall_intervals
        self.min_progress_bytes = min_progress_bytes
        self._last_bytes: float | None = None
        self._stagnant = 0
        self.progress_stopped_at: float | None = None
        self.detected_at: float | None = None
        self.last_good_rate = 0.0  # bytes/s just before the stall
        self._prev_time: float | None = None

    def __call__(self, observation: Observation) -> bool:
        written = observation.bytes_written_total
        t = observation.elapsed
        if self._last_bytes is None:
            self._last_bytes = written
            self._prev_time = t
            return True
        progressed = written - self._last_bytes >= self.min_progress_bytes
        if progressed:
            dt = max(t - (self._prev_time or 0.0), 1e-9)
            self.last_good_rate = (written - self._last_bytes) / dt
            self._stagnant = 0
            self.progress_stopped_at = None
        else:
            self._stagnant += 1
            if self.progress_stopped_at is None:
                self.progress_stopped_at = self._prev_time
            if self._stagnant >= self.stall_intervals:
                self.detected_at = t
                return False
        self._last_bytes = written
        self._prev_time = t
        return True


class TransferSupervisor:
    """Runs a transfer to completion across faults, retries and resumes."""

    def __init__(
        self, engine: ModularTransferEngine, config: SupervisorConfig | None = None
    ) -> None:
        self.engine = engine
        self.config = config or SupervisorConfig()

    def _attribute(self, t: float) -> str:
        """Name the injected fault(s) active at ``t``, if a schedule exists."""
        faults = self.engine.testbed.faults
        if faults is None:
            return "stall"
        kinds = faults.active_kinds(t)
        return ",".join(kinds) if kinds else "stall"

    def run(
        self,
        *,
        resume_from: TransferCheckpoint | None = None,
        observer: Callable[[Observation], None] | None = None,
    ) -> SupervisedTransferResult:
        """Supervised transfer: returns once completed, failed, or out of budget.

        ``observer`` is called with every interval observation (before the
        stall check) across all attempts; its return value is ignored.  The
        integrity layer uses it to map durable byte progress onto
        checksummed chunks without duplicating the engine loop.  Exceptions
        it raises propagate — a simulated crash in the chaos-soak harness
        is exactly such an exception.

        Under an active observability session the whole supervised transfer
        runs inside a ``transfer/supervised`` span; each incident emits an
        ``incident/detected`` event when the watchdog fires and an
        ``incident/recovered`` event once progress resumes, carrying the
        onset/detect/recover timestamps the post-mortem needs.
        """
        # Pin virtual_start to this supervised transfer's clock origin (a
        # stale clock from an earlier run would yield a negative duration).
        obs.set_virtual_time(resume_from.elapsed if resume_from is not None else 0.0)
        with obs.span(
            "transfer/supervised",
            controller=type(self.engine.controller).__name__,
            resumed=resume_from is not None,
        ):
            return self._run(resume_from, observer)

    def resume_from_path(self, path: str | Path) -> SupervisedTransferResult:
        """Resume from a checkpoint file, falling back to a fresh transfer.

        An unreadable-version checkpoint
        (:class:`~repro.utils.errors.CheckpointVersionError`) is an
        *incident*, not a crash: it is counted on
        ``supervisor/checkpoint_incompatible``, logged as an event, and the
        transfer restarts from byte zero — slower, never wrong.
        """
        try:
            checkpoint = TransferCheckpoint.load(path)
        except CheckpointVersionError as exc:
            obs.count("supervisor/checkpoint_incompatible")
            obs.event("supervisor/checkpoint_incompatible", path=str(path), error=str(exc))
            checkpoint = None
        return self.run(resume_from=checkpoint)

    def _run(
        self,
        resume_from: TransferCheckpoint | None,
        observer: Callable[[Observation], None] | None = None,
    ) -> SupervisedTransferResult:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        metrics = TransferMetrics()
        attempts: list[AttemptRecord] = []
        checkpoint = resume_from
        pending: FaultEvent | None = None  # detected incident awaiting recovery
        pending_retries = 0  # retries spent on the pending incident
        retries_used = checkpoint.attempt if checkpoint is not None else 0
        consecutive_fruitless = 0
        result: TransferResult | None = None
        budget = RetryBudget(cfg.max_elapsed)
        budget.start(checkpoint.elapsed if checkpoint is not None else 0.0)
        budget_exhausted = False

        while True:
            start_bytes = checkpoint.bytes_completed if checkpoint else 0.0
            start_time = checkpoint.elapsed if checkpoint else 0.0
            threads = checkpoint.threads if checkpoint else (1, 1, 1)
            detector = _StallDetector(cfg.stall_intervals, cfg.min_progress_bytes)
            if observer is None:
                hook = detector
            else:
                def hook(observation: Observation, _detector=detector) -> bool:
                    observer(observation)
                    return _detector(observation)
            result = self.engine.run(
                start_bytes=start_bytes,
                start_time=start_time,
                initial_threads=threads,
                interval_hook=hook,
            )
            outcome = (
                "completed"
                if result.completed
                else ("stalled" if result.aborted else "timed_out")
            )
            attempts.append(
                AttemptRecord(
                    index=len(attempts),
                    start_time=start_time,
                    end_time=result.completion_time,
                    start_bytes=start_bytes,
                    end_bytes=result.bytes_transferred,
                    outcome=outcome,
                )
            )
            metrics.merge_from(result.metrics)

            made_progress = (
                result.bytes_transferred - start_bytes >= cfg.min_progress_bytes
            )
            if pending is not None and made_progress:
                # The resumed attempt moved bytes again: the incident is over.
                lost = max(0.0, (start_time - pending.t_onset) * detector.last_good_rate)
                recovery = RecoveryRecord(
                    kind=pending.kind,
                    t_onset=pending.t_onset,
                    t_detected=pending.t_detected,
                    t_recovered=start_time,
                    retries=pending_retries,
                    goodput_lost_bytes=lost,
                )
                metrics.record_recovery(recovery)
                obs.event("incident/recovered", t=start_time, **recovery.to_dict())
                pending = None
                pending_retries = 0

            if outcome != "stalled":
                break

            onset = (
                detector.progress_stopped_at
                if detector.progress_stopped_at is not None
                else start_time
            )
            detected = (
                detector.detected_at
                if detector.detected_at is not None
                else result.completion_time
            )
            if pending is None:
                pending = FaultEvent(
                    kind=self._attribute(detected), t_onset=onset, t_detected=detected
                )
                metrics.record_fault(pending)
                obs.event("incident/detected", t=detected, **pending.to_dict())
                obs.count("supervisor/incidents")

            if retries_used >= cfg.max_retries:
                obs.event(
                    "supervisor/gave_up", t=result.completion_time,
                    retries_used=retries_used, kind=pending.kind,
                )
                break

            consecutive_fruitless = consecutive_fruitless + 1 if not made_progress else 1
            delay = backoff_delay(
                consecutive_fruitless,
                base=cfg.backoff_base, factor=cfg.backoff_factor,
                max_delay=cfg.backoff_max, jitter=cfg.jitter, rng=rng,
            )
            resume_at = result.completion_time + delay
            if not budget.allows(resume_at):
                budget_exhausted = True
                obs.event(
                    "supervisor/retry_budget_exhausted", t=result.completion_time,
                    resume_at=resume_at, max_elapsed=cfg.max_elapsed,
                    retries_used=retries_used,
                )
                obs.count("supervisor/retry_budget_exhausted")
                break
            retries_used += 1
            pending_retries += 1
            obs.event(
                "supervisor/backoff", t=result.completion_time,
                delay=delay, resume_at=resume_at, retry=retries_used,
            )
            obs.count("supervisor/retries")
            if resume_at >= self.engine.config.max_seconds:
                break  # no budget left to retry into
            checkpoint = TransferCheckpoint(
                bytes_completed=result.bytes_transferred,
                elapsed=resume_at,
                threads=result.final_threads,
                attempt=retries_used,
            )

        last_checkpoint = (
            None
            if result.completed
            else TransferCheckpoint(
                bytes_completed=result.bytes_transferred,
                elapsed=result.completion_time,
                threads=result.final_threads,
                attempt=retries_used,
            )
        )
        return SupervisedTransferResult(
            completed=result.completed,
            timed_out=result.timed_out,
            completion_time=result.completion_time,
            total_bytes=result.total_bytes,
            metrics=metrics,
            attempts=tuple(attempts),
            retries_used=retries_used,
            last_checkpoint=last_checkpoint,
            controller_name=result.controller_name,
            budget_exhausted=budget_exhausted,
        )


__all__ = [
    "AttemptRecord",
    "SupervisedTransferResult",
    "SupervisorConfig",
    "TransferCheckpoint",
    "TransferSupervisor",
    "_StallDetector",
]
