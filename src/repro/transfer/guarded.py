"""Degraded-mode control: keep a trained policy safe on pathological inputs.

:class:`GuardedController` decorates any controller (typically
:class:`repro.core.production.AutoMDTController`) with three defenses the
policy never needed in training:

* **observation sanitation** — NaN/infinite throughputs (probe dropouts),
  zero or negative buffer capacities and NaN buffer reports are replaced
  with safe values *before* the policy sees them, so nothing non-finite
  enters the policy network;
* **pathological-output detection** — repeated out-of-range proposals or
  thread thrashing (consecutive proposals jumping by more than
  ``thrash_threshold`` total threads, ``thrash_window`` times in a row)
  mark the policy as misbehaving;
* **heuristic fallback** — while degraded, proposals come from a
  conservative fallback controller (default:
  :class:`repro.baselines.heuristic.ProbeHeuristicController`); the primary
  re-engages after ``recovery_intervals`` consecutive clean observations.

Every guard action is logged in :attr:`events` as ``(elapsed, reason)`` so
tests and incident reports can reconstruct what the guard did and when.
"""

from __future__ import annotations

import math
from dataclasses import replace

from repro import obs as telemetry
from repro.transfer.engine import Controller, Observation
from repro.utils.config import require_positive


def _finite(value: float, fallback: float = 0.0) -> float:
    return float(value) if math.isfinite(value) else fallback


class GuardedController:
    """Wraps a primary controller with sanitation and heuristic fallback."""

    def __init__(
        self,
        primary: Controller,
        fallback: Controller | None = None,
        *,
        max_threads: int = 30,
        thrash_threshold: int = 12,
        thrash_window: int = 3,
        out_of_range_limit: int = 3,
        recovery_intervals: int = 3,
    ) -> None:
        require_positive(max_threads, "max_threads")
        require_positive(thrash_threshold, "thrash_threshold")
        require_positive(thrash_window, "thrash_window")
        require_positive(out_of_range_limit, "out_of_range_limit")
        require_positive(recovery_intervals, "recovery_intervals")
        if fallback is None:
            from repro.baselines.heuristic import ProbeHeuristicController

            fallback = ProbeHeuristicController(max_threads=max_threads)
        self.primary = primary
        self.fallback = fallback
        self.max_threads = int(max_threads)
        self.thrash_threshold = int(thrash_threshold)
        self.thrash_window = int(thrash_window)
        self.out_of_range_limit = int(out_of_range_limit)
        self.recovery_intervals = int(recovery_intervals)
        self.events: list[tuple[float, str]] = []
        self.degraded_intervals = 0
        self._reset_state()

    def _reset_state(self) -> None:
        self._degraded = False
        self._clean_streak = 0
        self._thrash_streak = 0
        self._range_streak = 0
        self._last_proposal: tuple[int, int, int] | None = None

    @property
    def degraded(self) -> bool:
        """Whether proposals currently come from the fallback controller."""
        return self._degraded

    # ------------------------------------------------------------- sanitation
    def _sanitize(self, obs: Observation) -> tuple[Observation, bool]:
        """Return a finite, consistent observation and whether it was dirty."""
        throughputs = tuple(max(0.0, _finite(v)) for v in obs.throughputs)
        sender_capacity = obs.sender_capacity
        receiver_capacity = obs.receiver_capacity
        dirty = throughputs != tuple(float(v) for v in obs.throughputs)
        if not math.isfinite(sender_capacity) or sender_capacity <= 0.0:
            sender_capacity, dirty = 1.0, True
        if not math.isfinite(receiver_capacity) or receiver_capacity <= 0.0:
            receiver_capacity, dirty = 1.0, True
        sender_free = _finite(obs.sender_free, sender_capacity)
        receiver_free = _finite(obs.receiver_free, receiver_capacity)
        sender_free = min(max(sender_free, 0.0), sender_capacity)
        receiver_free = min(max(receiver_free, 0.0), receiver_capacity)
        if (sender_free, receiver_free) != (obs.sender_free, obs.receiver_free):
            dirty = True
        if not dirty:
            return obs, False
        return (
            replace(
                obs,
                throughputs=throughputs,  # type: ignore[arg-type]
                sender_capacity=sender_capacity,
                receiver_capacity=receiver_capacity,
                sender_free=sender_free,
                receiver_free=receiver_free,
            ),
            True,
        )

    # ----------------------------------------------------------- output checks
    def _proposal_pathology(self, proposal) -> str | None:
        try:
            triple = tuple(float(n) for n in proposal)
        except (TypeError, ValueError):
            return "malformed"
        if len(triple) != 3 or any(not math.isfinite(n) for n in triple):
            return "malformed"
        if any(n < 1 or n > self.max_threads for n in triple):
            self._range_streak += 1
            if self._range_streak >= self.out_of_range_limit:
                return "out_of_range"
        else:
            self._range_streak = 0
        if self._last_proposal is not None:
            jump = sum(abs(a - b) for a, b in zip(triple, self._last_proposal))
            if jump >= self.thrash_threshold:
                self._thrash_streak += 1
                if self._thrash_streak >= self.thrash_window:
                    return "thrashing"
            else:
                self._thrash_streak = 0
        return None

    def _clamp(self, proposal) -> tuple[int, int, int]:
        triple = []
        for n in proposal:
            value = float(n)
            if not math.isfinite(value):
                value = 1.0
            triple.append(int(min(self.max_threads, max(1, round(value)))))
        return (triple[0], triple[1], triple[2])

    # ---------------------------------------------------------------- protocol
    def propose(self, observation: Observation) -> tuple[int, int, int]:
        """Controller protocol: sanitize, guard, and answer with a safe triple."""
        obs, dirty = self._sanitize(observation)
        if dirty:
            self._clean_streak = 0
        else:
            self._clean_streak += 1

        if self._degraded:
            self.degraded_intervals += 1
            proposal = self._clamp(self.fallback.propose(obs))
            if self._clean_streak >= self.recovery_intervals:
                self._degraded = False
                self._thrash_streak = 0
                self._range_streak = 0
                self.events.append((obs.elapsed, "recovered"))
            self._last_proposal = proposal
            return proposal

        raw = self.primary.propose(obs)
        reason = self._proposal_pathology(raw)
        if reason == "malformed":
            self._degrade(obs, "malformed_proposal")
            proposal = self._clamp(self.fallback.propose(obs))
        elif reason is not None:
            self._degrade(obs, reason)
            proposal = self._clamp(self.fallback.propose(obs))
        else:
            proposal = self._clamp(raw)
        self._last_proposal = proposal
        return proposal

    def _degrade(self, obs: Observation, reason: str) -> None:
        self._degraded = True
        self._clean_streak = 0
        self.events.append((obs.elapsed, f"degraded:{reason}"))
        # Labelled incident metric: ingested by the results store on session
        # close so `automdt report` can count degradations per run by cause.
        session = telemetry.active()
        if session is not None:
            session.registry.counter(
                "guard/degraded_total", label_names=("reason",)
            ).labels(reason=reason).inc()
        telemetry.event("guard/degraded", t=obs.elapsed, reason=reason)
        # The fallback starts from a known state, not mid-climb.
        self.fallback.reset()

    def reset(self) -> None:
        """Forget per-transfer state (both wrapped controllers included)."""
        self.primary.reset()
        self.fallback.reset()
        self.events = []
        self.degraded_intervals = 0
        self._reset_state()
