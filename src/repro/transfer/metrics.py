"""Per-transfer metric recording.

One :class:`TransferMetrics` instance accumulates everything a figure needs:
per-stage throughput, per-stage concurrency, buffer occupancy, and the
utility/reward series, all on the virtual clock.  Supervised transfers
additionally log per-incident :class:`FaultEvent` / :class:`RecoveryRecord`
entries (time-to-detect, time-to-recover, goodput lost).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.timeseries import TimeSeries
from repro.utils.units import bytes_per_sec_to_mbps

_SERIES_NAMES = (
    "throughput_read",
    "throughput_network",
    "throughput_write",
    "threads_read",
    "threads_network",
    "threads_write",
    "sender_usage",
    "receiver_usage",
    "utility",
    "bytes_written",
)


@dataclass(frozen=True)
class FaultEvent:
    """One detected incident: forward progress stopped and a watchdog fired.

    ``kind`` names the injected fault classes active at detection time when
    attribution is possible (e.g. ``"link_flap"``), else ``"stall"``.
    """

    kind: str
    t_onset: float
    t_detected: float

    @property
    def time_to_detect(self) -> float:
        """Seconds between losing forward progress and the watchdog firing."""
        return self.t_detected - self.t_onset

    def to_dict(self) -> dict:
        """JSON-friendly form (inverse of :meth:`from_dict`)."""
        return {"kind": self.kind, "t_onset": self.t_onset, "t_detected": self.t_detected}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            kind=str(data["kind"]),
            t_onset=float(data["t_onset"]),
            t_detected=float(data["t_detected"]),
        )


@dataclass(frozen=True)
class RecoveryRecord:
    """How one incident was resolved by the supervisor."""

    kind: str
    t_onset: float
    t_detected: float
    t_recovered: float
    retries: int
    goodput_lost_bytes: float

    @property
    def time_to_recover(self) -> float:
        """Seconds between losing forward progress and progress resuming."""
        return self.t_recovered - self.t_onset

    def to_dict(self) -> dict:
        """JSON-friendly form (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "t_onset": self.t_onset,
            "t_detected": self.t_detected,
            "t_recovered": self.t_recovered,
            "retries": self.retries,
            "goodput_lost_bytes": self.goodput_lost_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RecoveryRecord":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            kind=str(data["kind"]),
            t_onset=float(data["t_onset"]),
            t_detected=float(data["t_detected"]),
            t_recovered=float(data["t_recovered"]),
            retries=int(data["retries"]),
            goodput_lost_bytes=float(data["goodput_lost_bytes"]),
        )


class TransferMetrics:
    """Time-series bundle recorded by a transfer engine."""

    def __init__(self) -> None:
        self.throughput_read = TimeSeries("throughput_read")
        self.throughput_network = TimeSeries("throughput_network")
        self.throughput_write = TimeSeries("throughput_write")
        self.threads_read = TimeSeries("threads_read")
        self.threads_network = TimeSeries("threads_network")
        self.threads_write = TimeSeries("threads_write")
        self.sender_usage = TimeSeries("sender_usage")
        self.receiver_usage = TimeSeries("receiver_usage")
        self.utility = TimeSeries("utility")
        self.bytes_written = TimeSeries("bytes_written")
        self.fault_events: list[FaultEvent] = []
        self.recoveries: list[RecoveryRecord] = []

    def record(
        self,
        t: float,
        *,
        throughputs: tuple[float, float, float],
        threads: tuple[int, int, int],
        sender_usage: float,
        receiver_usage: float,
        utility: float | None = None,
        bytes_written_total: float | None = None,
    ) -> None:
        """Append one probe interval's samples at virtual time ``t``."""
        self.throughput_read.append(t, throughputs[0])
        self.throughput_network.append(t, throughputs[1])
        self.throughput_write.append(t, throughputs[2])
        self.threads_read.append(t, threads[0])
        self.threads_network.append(t, threads[1])
        self.threads_write.append(t, threads[2])
        self.sender_usage.append(t, sender_usage)
        self.receiver_usage.append(t, receiver_usage)
        if utility is not None:
            self.utility.append(t, utility)
        if bytes_written_total is not None:
            self.bytes_written.append(t, bytes_written_total)

    def record_fault(self, event: FaultEvent) -> None:
        """Log a detected incident."""
        self.fault_events.append(event)

    def record_recovery(self, record: RecoveryRecord) -> None:
        """Log the resolution of an incident."""
        self.recoveries.append(record)

    def merge_from(self, other: "TransferMetrics") -> None:
        """Append another bundle's samples and incidents (times must follow ours).

        The supervisor uses this to stitch per-attempt metrics into one
        transfer-wide record: attempts run on a shared global clock, so each
        attempt's series continues where the previous one stopped.
        """
        for name in _SERIES_NAMES:
            ours: TimeSeries = getattr(self, name)
            for t, v in getattr(other, name):
                ours.append(t, v)
        self.fault_events.extend(other.fault_events)
        self.recoveries.extend(other.recoveries)

    # ---------------------------------------------------------------- queries
    @property
    def duration(self) -> float:
        """Last recorded time (0 when empty)."""
        return self.throughput_read.times[-1] if len(self.throughput_read) else 0.0

    def average_throughput(self, *, warmup: float = 0.0) -> float:
        """Mean end-to-end (write-stage) throughput in Mbps after ``warmup``."""
        return self.throughput_write.mean(t_start=warmup)

    def effective_throughput(self, total_bytes: float, completion_time: float) -> float:
        """End-to-end Mbps computed from bytes over wall time — the Table I metric."""
        if completion_time <= 0:
            return 0.0
        return bytes_per_sec_to_mbps(total_bytes / completion_time)

    def time_to_network_concurrency(self, level: int, *, sustain: int = 3) -> float | None:
        """When the network concurrency first reached ``level`` (and held).

        This is the paper's convergence-speed measure ("AutoMDT reaches 20
        streams within 7 seconds").
        """
        return self.threads_network.time_to_reach(level, sustain=sustain)

    def concurrency_cost(self) -> float:
        """Mean total thread count across stages — the overhead measure."""
        total = (
            self.threads_read.values + self.threads_network.values + self.threads_write.values
        )
        return float(total.mean()) if len(total) else 0.0

    def stability(self, series_name: str = "threads_network", *, t_start: float = 0.0) -> float:
        """Standard deviation of a concurrency series (lower = more stable)."""
        series: TimeSeries = getattr(self, series_name)
        return series.std(t_start=t_start)

    def to_dict(self) -> dict:
        """Serialize every series and incident record (JSON-friendly)."""
        blob = {name: getattr(self, name).to_dict() for name in _SERIES_NAMES}
        blob["fault_events"] = [e.to_dict() for e in self.fault_events]
        blob["recoveries"] = [r.to_dict() for r in self.recoveries]
        return blob

    @classmethod
    def from_dict(cls, data: dict) -> "TransferMetrics":
        """Rebuild a bundle from :meth:`to_dict` output (archived runs).

        Tolerates missing keys so partial/older dumps still load: absent
        series stay empty, absent incident lists stay empty.
        """
        metrics = cls()
        for name in _SERIES_NAMES:
            if name in data:
                setattr(metrics, name, TimeSeries.from_dict(data[name]))
        metrics.fault_events = [FaultEvent.from_dict(d) for d in data.get("fault_events", [])]
        metrics.recoveries = [RecoveryRecord.from_dict(d) for d in data.get("recoveries", [])]
        return metrics
