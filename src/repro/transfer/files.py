"""File and dataset models.

A :class:`Dataset` is what gets transferred: a list of :class:`FileSpec`
entries.  Its role in the emulation is twofold — it defines the total byte
count, and its file-size distribution determines the per-file-overhead
efficiency factor for each stage (small files make fixed per-file costs
dominate, which is why the paper's Mixed dataset transfers slower than the
Large one in Table I).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.utils.config import require_positive
from repro.utils.errors import ConfigError
from repro.utils.units import format_size, mbps_to_bytes_per_sec


@dataclass(frozen=True)
class FileSpec:
    """One file: a name and a size in bytes."""

    name: str
    size: float

    def __post_init__(self) -> None:
        require_positive(self.size, f"size of {self.name!r}")


class Dataset:
    """An ordered collection of files to transfer."""

    def __init__(self, files: Iterable[FileSpec], name: str = "") -> None:
        self.files: tuple[FileSpec, ...] = tuple(files)
        if not self.files:
            raise ConfigError("dataset must contain at least one file")
        self.name = name
        self._total = float(sum(f.size for f in self.files))

    # ------------------------------------------------------------- accessors
    @property
    def total_bytes(self) -> float:
        """Sum of all file sizes."""
        return self._total

    @property
    def num_files(self) -> int:
        """Number of files."""
        return len(self.files)

    @property
    def mean_file_size(self) -> float:
        """Average file size in bytes."""
        return self._total / len(self.files)

    def __len__(self) -> int:
        return len(self.files)

    def __iter__(self) -> Iterator[FileSpec]:
        return iter(self.files)

    def __getitem__(self, idx: int) -> FileSpec:
        return self.files[idx]

    # ------------------------------------------------------------ efficiency
    def stage_efficiency(self, per_thread_mbps: float, per_file_cost: float) -> float:
        """Throughput efficiency factor in ``(0, 1]`` from per-file overheads.

        One thread streaming the whole dataset at per-thread rate ``R``
        (bytes/s) spends ``total/R`` seconds moving bytes plus
        ``num_files * per_file_cost`` seconds of fixed per-file work, so its
        effective rate is scaled by ``1 / (1 + cost * R * N / total)``
        — equivalently ``1 / (1 + cost * R / mean_size)``.
        """
        if per_file_cost <= 0.0:
            return 1.0
        rate = mbps_to_bytes_per_sec(per_thread_mbps)
        return 1.0 / (1.0 + per_file_cost * rate / self.mean_file_size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Dataset({self.name!r}, files={self.num_files}, "
            f"total={format_size(self._total)})"
        )


def uniform_dataset(num_files: int, file_size: float, name: str = "uniform") -> Dataset:
    """Dataset of ``num_files`` equal files of ``file_size`` bytes each."""
    if num_files <= 0:
        raise ConfigError(f"num_files must be positive, got {num_files}")
    return Dataset(
        (FileSpec(f"{name}-{i:06d}", float(file_size)) for i in range(num_files)),
        name=name,
    )


def log_uniform_dataset(
    total_bytes: float,
    min_size: float,
    max_size: float,
    rng: np.random.Generator,
    name: str = "mixed",
) -> Dataset:
    """Dataset whose file sizes are log-uniform in ``[min_size, max_size]``.

    Files are drawn until their sum reaches ``total_bytes`` (the last file is
    trimmed to land exactly on the total).
    """
    if not (0 < min_size <= max_size):
        raise ConfigError(f"need 0 < min_size <= max_size, got {min_size}, {max_size}")
    require_positive(total_bytes, "total_bytes")
    files: list[FileSpec] = []
    accumulated = 0.0
    log_lo, log_hi = np.log(min_size), np.log(max_size)
    while accumulated < total_bytes:
        size = float(np.exp(rng.uniform(log_lo, log_hi)))
        size = min(size, total_bytes - accumulated)
        if size < 1.0:
            size = total_bytes - accumulated
        files.append(FileSpec(f"{name}-{len(files):06d}", size))
        accumulated += size
    return Dataset(files, name=name)
