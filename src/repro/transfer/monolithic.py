"""Monolithic-architecture adapter.

Traditional tools (GridFTP/Globus and most others) "use socket connection
threads for all read, write, and transfer operations" (§III): a single
concurrency value drives every stage, optionally multiplied by per-file TCP
parallelism on the network leg.  :class:`MonolithicController` adapts any
single-value policy onto the modular engine by expanding ``cc`` into the
triple ``(cc, cc * parallelism, cc)`` — which is exactly the resource
over-subscription the paper's motivation section criticizes: the stage that
needs the most streams forces its concurrency onto everyone else.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.transfer.engine import Observation
from repro.utils.config import require_positive


class MonolithicController:
    """Single-concurrency controller expanded onto all three stages.

    Parameters
    ----------
    concurrency:
        Either a fixed integer (static tools: Globus's ``-cc``) or a
        callable ``(Observation) -> int`` for adaptive monolithic tools.
    parallelism:
        TCP streams opened per concurrent file (Globus's ``-p``); the
        network stage gets ``concurrency * parallelism`` streams.
    """

    def __init__(
        self,
        concurrency: int | Callable[[Observation], int] = 4,
        parallelism: int = 8,
    ) -> None:
        require_positive(parallelism, "parallelism")
        self._policy = concurrency
        self.parallelism = int(parallelism)

    def propose(self, observation: Observation) -> tuple[int, int, int]:
        """Expand the single concurrency into a (read, network, write) triple."""
        cc = self._policy(observation) if callable(self._policy) else self._policy
        cc = max(1, int(cc))
        return (cc, cc * self.parallelism, cc)

    def reset(self) -> None:
        """Static policies carry no state; adaptive callables own theirs."""
