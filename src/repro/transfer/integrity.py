"""End-to-end data integrity: checksummed chunks, manifest, WAL, verified resume.

PR 1 made transfers *available* under faults (stall detection, retry,
checkpoint-resume) — but nothing in that stack can detect **wrong bytes**:
a resumed :class:`~repro.transfer.supervisor.TransferCheckpoint` trusts
every previously counted byte.  This module adds the verification layer
production transfer services (GridFTP/Globus-style) treat as table stakes:

* :class:`TransferManifest` — the dataset split into fixed-size chunks,
  each with an expected digest (:func:`repro.utils.checksum.crc32c` or
  :func:`~repro.utils.checksum.xxh32`).  Chunk payload tags live in one
  shared arena digested with the buffer-parallel batch kernels
  (:func:`~repro.utils.checksum.crc32c_many`), and :meth:`payload_of`
  hands out ``memoryview`` slices of it — building and verifying a
  manifest never copies chunk content.
* :class:`ChunkJournal` — an append-only JSONL write-ahead journal of
  chunk completions with a **coalescing batch writer**: a verification
  pass's claims fold into one buffered ``chunkbatch`` record, flushed
  whenever ``flush_every`` claims are buffered, so a crash still loses at
  most ``flush_every`` claims.  Replayed with the torn-tail-tolerant
  reader and last-record-wins semantics, batch or single records alike.
* :class:`DestinationLedger` — the emulator-side destination truth,
  stored **columnar** (numpy per-chunk status/digest/send-count arrays)
  so verification sweeps are single vector ops; the ``status`` /
  ``digests`` / ``send_counts`` attributes remain dict-like views.  The
  fluid model moves byte *counts*, not bytes, so each chunk's content is
  identified by a deterministic payload tag; data-plane faults
  (:class:`~repro.emulator.faults.DataCorruption`,
  :class:`~repro.emulator.faults.TornWrite`,
  :class:`~repro.emulator.faults.SilentTruncation`) divert a chunk's
  *digest* without ever changing a byte count — exactly the failures only
  end-to-end verification can catch.
* :class:`VerifiedTransfer` — wraps a
  :class:`~repro.transfer.supervisor.TransferSupervisor`: maps durable
  byte progress onto chunks via the supervisor's interval observer,
  journals completions, re-verifies journaled chunks on resume
  (re-transferring only mismatches), and runs bounded repair passes until
  every manifest digest matches.  Emits ``transfer.verify.bytes`` /
  ``transfer.verify.mb_per_s`` so ``automdt obs summary`` shows what
  verification cost.

Verify-on-resume state machine::

    REPLAY(journal) --> VERIFY(claims vs ledger) --> RESUME(verified bytes)
    RESUME --> TRANSFER(pending chunks) --> FINAL_VERIFY
    FINAL_VERIFY --(mismatches, rounds left)--> REPAIR(bad chunks) --> FINAL_VERIFY
    FINAL_VERIFY --(clean)--> VERIFIED

Everything is deterministic: corruption draws come from
:func:`repro.parallel.seeds.spawn_key` on ``(chunk_id, send_count)``, so a
re-sent chunk gets a fresh draw while identical runs stay bit-identical.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from itertools import accumulate
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.emulator.faults import (
    DataCorruption,
    FaultSchedule,
    SilentTruncation,
    TornWrite,
)
from repro.obs.events import JsonlEventWriter, read_events
from repro.transfer.engine import Observation
from repro.transfer.supervisor import (
    SupervisedTransferResult,
    TransferCheckpoint,
    TransferSupervisor,
)
from repro.utils.checksum import Xxh32Stream, crc32c, crc32c_many, xxh32, xxh32_many
from repro.utils.config import dump_json, load_json, require_positive
from repro.utils.errors import IntegrityError
from repro.parallel.seeds import spawn_key

__all__ = [
    "ChunkJournal",
    "ChunkSpec",
    "DestinationLedger",
    "IntegrityConfig",
    "TransferManifest",
    "VerifiedTransfer",
    "VerifiedTransferResult",
    "verify_artifacts",
]

#: Digest algorithms available for manifests.
ALGORITHMS: dict[str, Callable[[bytes], int]] = {"crc32c": crc32c, "xxh32": xxh32}

#: Batch digest kernels (arena + offsets/lengths) per algorithm.
_BATCH_KERNELS = {"crc32c": crc32c_many, "xxh32": xxh32_many}

#: Serialization version for manifest / destination-ledger JSON files.
MANIFEST_VERSION = 1

#: Engine completion tolerance (the engine declares a transfer done at
#: ``total - 0.5`` bytes), reused as the chunk-completion epsilon so the
#: final chunk completes when the engine says the dataset did.
_COMPLETE_EPS = 0.5

#: Deferred-format journal records — formatted at writer-flush time so
#: journaling inside the transfer loop costs one list append.  A
#: ``chunkbatch`` record carries a whole sync's completions; ``%s`` on a
#: list of ints renders valid JSON (``[1, 2, 3]``).
_JOURNAL_FMT = '{"type":"chunk","id":%d,"digest":%d,"t":%.3f}'
_BATCH_FMT = '{"type":"chunkbatch","t":%.3f,"ids":%s,"digests":%s}'
_RUN_FMT = '{"type":"chunkrun","t":%.3f,"lo":%d,"hi":%d}'

# Derivation-path tags for seeded corruption draws (first spawn_key level).
_DRAW_INFLIGHT = 1
_DRAW_ATREST = 2

#: Clean-path ledger syncs are batched to ~this many chunk completions per
#: sync: the engine's byte counter is cumulative, so skipped observations
#: lose nothing — completions just land on the next sync.  Claims not yet
#: synced behave exactly like journal-buffered ones on a crash
#: (conservative resume re-sends them), so the effective durability bound
#: is ``journal_flush_every + _SYNC_BATCH_CHUNKS`` claims.  Faulted
#: ledgers always sync every observation: fault instants and in-flight
#: draws depend on the ledger clock advancing interval by interval.
_SYNC_BATCH_CHUNKS = 64

_U64 = float(1 << 64)

#: Ledger chunk statuses, stored as uint8 codes in the columnar arrays.
_STATUS_NAMES = ("missing", "ok", "corrupt", "torn")
_STATUS_CODES = {name: code for code, name in enumerate(_STATUS_NAMES)}
_MISSING, _OK, _CORRUPT, _TORN = range(4)


@dataclass(frozen=True, slots=True)
class ChunkSpec:
    """One manifest chunk: a contiguous byte range of one file.

    Slotted: a big transfer holds thousands of these for its whole
    lifetime, and per-instance ``__dict__``s would both double the memory
    and make every GC generation scan measurably slower (the verification
    overhead budget counts that).
    """

    chunk_id: int
    file: str
    index: int  # chunk index within the file
    offset: float  # global byte offset in the dataset
    size: float
    digest: int  # expected digest of the chunk's (synthesised) content


class TransferManifest:
    """Per-file chunk digests for one dataset — what "correct" means.

    The emulator is a fluid model: there are no real bytes to hash, so each
    chunk's canonical content is a deterministic payload tag derived from
    ``(dataset, file, chunk index, content_seed)``.  Two manifests built
    with the same arguments are identical; a different ``content_seed``
    models a different dataset's contents.

    Tags are packed into one bytes arena and digested in a single
    buffer-parallel kernel pass; :meth:`payload_of` returns zero-copy
    ``memoryview`` slices of the arena.
    """

    def __init__(
        self,
        dataset_name: str,
        files: tuple[tuple[str, float], ...],
        chunk_size: float,
        algorithm: str = "crc32c",
        content_seed: int = 0,
    ) -> None:
        require_positive(chunk_size, "chunk_size")
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown digest algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
            )
        self.dataset_name = dataset_name
        self.files = tuple((str(n), float(s)) for n, s in files)
        self.chunk_size = float(chunk_size)
        self.algorithm = algorithm
        self.content_seed = int(content_seed)
        # Columnar chunk table, built with vector ops: plain arrays of
        # numbers are invisible to the cyclic GC, where thousands of
        # per-chunk objects would be rescanned on every collection for the
        # whole transfer (a measurable slice of the verification overhead
        # budget).  Chunk ids are row indices; the object view
        # (:attr:`chunks`) is built lazily for inspection/serialization.
        file_sizes = np.array([s for _, s in self.files], dtype=np.float64)
        counts = np.maximum(
            1, np.ceil(file_sizes / self.chunk_size).astype(np.int64)
        ) if len(self.files) else np.zeros(0, dtype=np.int64)
        total_chunks = int(counts.sum())
        file_idx = np.repeat(np.arange(len(self.files), dtype=np.int64), counts)
        starts = np.zeros(len(self.files), dtype=np.int64)
        if len(self.files):
            starts[1:] = np.cumsum(counts)[:-1]
        indices = np.arange(total_chunks, dtype=np.int64) - np.repeat(starts, counts)
        chunk_bytes = np.minimum(
            self.chunk_size, file_sizes[file_idx] - indices.astype(np.float64) * self.chunk_size
        )
        running = np.cumsum(chunk_bytes)
        offsets = np.zeros(total_chunks, dtype=np.float64)
        offsets[1:] = running[:-1]
        # Payload-tag arena: every chunk's canonical content, concatenated.
        # Index strings are shared across files so a 50k-chunk manifest
        # builds ~one str() per distinct chunk index.
        max_count = int(counts.max()) if len(counts) else 0
        index_strs = [str(i) for i in range(max_count)]
        tags: list[bytes] = []
        for fi, (name, _size) in enumerate(self.files):
            prefix = f"{self.dataset_name}:{name}:"
            suffix = f":{self.content_seed}"
            tags.extend(
                (prefix + index_strs[i] + suffix).encode() for i in range(int(counts[fi]))
            )
        tag_lengths = np.array([len(t) for t in tags], dtype=np.int64)
        tag_offsets = np.zeros(total_chunks, dtype=np.int64)
        if total_chunks:
            tag_offsets[1:] = np.cumsum(tag_lengths)[:-1]
        self._arena = b"".join(tags)
        self._arena_view = memoryview(self._arena)
        self._tag_offsets = tag_offsets
        self._tag_lengths = tag_lengths
        digests = _BATCH_KERNELS[algorithm](self._arena, tag_offsets, tag_lengths)

        self.chunk_files: tuple[int, ...] = tuple(file_idx.tolist())
        self.chunk_indices: tuple[int, ...] = tuple(indices.tolist())
        self.chunk_offsets: tuple[float, ...] = tuple(offsets.tolist())
        self.chunk_sizes: tuple[float, ...] = tuple(chunk_bytes.tolist())
        self.chunk_digests: tuple[int, ...] = tuple(int(d) for d in digests)
        #: Vector views of the chunk table for the ledger's sweep kernels.
        self.sizes_np = chunk_bytes
        self.digests_np = np.asarray(digests, dtype=np.int64)
        self.total_bytes = float(running[-1]) if total_chunks else 0.0
        self._chunks_cache: tuple[ChunkSpec, ...] | None = None

    @property
    def chunks(self) -> tuple[ChunkSpec, ...]:
        """The chunk table as :class:`ChunkSpec` rows (lazily materialised)."""
        if self._chunks_cache is None:
            self._chunks_cache = tuple(
                ChunkSpec(
                    chunk_id=cid,
                    file=self.files[self.chunk_files[cid]][0],
                    index=self.chunk_indices[cid],
                    offset=self.chunk_offsets[cid],
                    size=self.chunk_sizes[cid],
                    digest=self.chunk_digests[cid],
                )
                for cid in range(len(self.chunk_sizes))
            )
        return self._chunks_cache

    @classmethod
    def from_dataset(
        cls,
        dataset,
        chunk_size: float,
        *,
        algorithm: str = "crc32c",
        content_seed: int = 0,
    ) -> "TransferManifest":
        """Build from a :class:`repro.transfer.files.Dataset`."""
        return cls(
            dataset.name,
            tuple((f.name, f.size) for f in dataset),
            chunk_size,
            algorithm=algorithm,
            content_seed=content_seed,
        )

    # ------------------------------------------------------------- content
    def payload(self, file: str, index: int) -> bytes:
        """Canonical content tag of one chunk (what gets digested)."""
        return f"{self.dataset_name}:{file}:{index}:{self.content_seed}".encode()

    def payload_of(self, chunk_id: int) -> memoryview:
        """Canonical content tag of one chunk by id — a zero-copy view of
        the manifest's tag arena."""
        offset = int(self._tag_offsets[chunk_id])
        return self._arena_view[offset : offset + int(self._tag_lengths[chunk_id])]

    def digest_fn(self) -> Callable[[bytes], int]:
        """The manifest's digest function."""
        return ALGORITHMS[self.algorithm]

    def expected(self) -> dict[int, int]:
        """``{chunk_id: expected digest}`` for every chunk."""
        return dict(enumerate(self.chunk_digests))

    def size_of(self, chunk_id: int) -> float:
        """Byte size of one chunk."""
        return self.chunk_sizes[chunk_id]

    def __len__(self) -> int:
        return len(self.chunk_sizes)

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-friendly form (inverse of :meth:`from_dict`)."""
        return {
            "version": MANIFEST_VERSION,
            "dataset": self.dataset_name,
            "algorithm": self.algorithm,
            "chunk_size": self.chunk_size,
            "content_seed": self.content_seed,
            "files": [[n, s] for n, s in self.files],
            "chunks": [
                [c.chunk_id, c.file, c.index, c.offset, c.size, c.digest]
                for c in self.chunks
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TransferManifest":
        """Rebuild from :meth:`to_dict` output (digests are re-derived and
        cross-checked, so a tampered manifest file fails loudly)."""
        manifest = cls(
            data["dataset"],
            tuple((n, float(s)) for n, s in data["files"]),
            float(data["chunk_size"]),
            algorithm=data["algorithm"],
            content_seed=int(data.get("content_seed", 0)),
        )
        recorded = {int(row[0]): int(row[5]) for row in data["chunks"]}
        if recorded != manifest.expected():
            raise IntegrityError(
                f"manifest digests for {data['dataset']!r} do not match re-derived values"
            )
        return manifest

    def save(self, path: str | Path) -> None:
        """Persist to JSON."""
        dump_json(self.to_dict(), path)

    @classmethod
    def load(cls, path: str | Path) -> "TransferManifest":
        """Inverse of :meth:`save`."""
        return cls.from_dict(load_json(path))


class ChunkJournal:
    """Append-only write-ahead journal of chunk completions (JSONL).

    Three record shapes share the log: ``chunk`` (one completion with its
    digest, the :meth:`record` lane), ``chunkbatch`` (a whole sync's
    completions + digests coalesced by :meth:`record_batch` into a single
    buffered write — the faulted-transfer lane, where destination digests
    can differ from the manifest's), and ``chunkrun`` (a contiguous id
    run claimed *at the manifest's expected digests*, written by
    :meth:`record_runs` — the clean-transfer lane, where serialising tens
    of thousands of known digest values would dominate the verification
    overhead budget; replaying it therefore requires the ``expected``
    digest table).  All go through
    :meth:`JsonlEventWriter.write_sample`'s deferred-format lane, so
    journaling inside the transfer loop costs one list append;
    serialisation happens at flush time.  The journal flushes itself
    whenever ``flush_every`` *claims* (not lines) are buffered, so
    batching never weakens the durability bound: a crash loses at most
    ``flush_every`` claims, exactly as with per-record appends.

    :meth:`replay` folds the log into a last-record-wins
    ``{chunk_id: digest}`` map with the torn-tail-tolerant reader, and
    self-heals a torn tail (truncating the record the dying process never
    finished) so post-recovery appends can't corrupt the next record.
    Replay is idempotent: replaying an unchanged journal any number of
    times yields the same claims.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        flush_every: int = 64,
        expected=None,
    ) -> None:
        self.path = Path(path)
        self._flush_every = max(1, int(flush_every))
        self._writer = JsonlEventWriter(self.path, mode="a", flush_every=flush_every)
        self._claims_buffered = 0
        #: Manifest digest table (``expected[chunk_id]``) — required to
        #: resolve digest-elided ``chunkrun`` records at replay.
        self._expected = expected
        #: Open coalescing run ``[lo, hi, t]`` not yet handed to the
        #: writer: consecutive clean syncs complete consecutive ids, so
        #: most :meth:`record_runs` calls just advance ``hi``.  Counts as
        #: buffered (lost on crash), like any unflushed record.
        self._run: list | None = None

    def record(self, chunk_id: int, digest: int, t: float) -> None:
        """Journal one chunk completion (hot path: deferred format)."""
        if self._run is not None:
            self._emit_run()
        self._writer.write_sample(_JOURNAL_FMT, (chunk_id, digest, t))
        self._bump(1)

    def record_batch(self, chunk_ids, digests, t: float) -> None:
        """Journal a whole sync's completions as one coalesced record.

        ``chunk_ids`` / ``digests`` are parallel sequences (numpy arrays
        or lists).  The write is a single buffered append regardless of
        batch size; the claim-counting flush bound still holds.
        """
        if type(chunk_ids) is not list:
            chunk_ids = chunk_ids.tolist() if hasattr(chunk_ids, "tolist") else list(chunk_ids)
        if not chunk_ids:
            return
        if type(digests) is not list:
            digests = digests.tolist() if hasattr(digests, "tolist") else list(digests)
        if self._run is not None:
            self._emit_run()  # keep file order == claim order (last wins)
        self._writer.write_sample(_BATCH_FMT, (t, chunk_ids, digests))
        self._bump(len(chunk_ids))

    def record_runs(self, chunk_ids: list[int], t: float) -> None:
        """Journal completions *at the manifest's expected digests*.

        ``chunk_ids`` must be sorted; each maximal contiguous id run
        becomes one tiny ``chunkrun`` record (no digest payload — the
        digests are by definition the manifest's, and re-serialising tens
        of thousands of known values per transfer would dominate the
        verification budget).  Consecutive calls completing consecutive
        ids coalesce into one open run, so the per-sync hot-path cost is
        two integer assignments.  Only the fault-free sync path may use
        this lane: a faulted destination's digests can diverge and must
        go through :meth:`record_batch` verbatim.
        """
        if not chunk_ids:
            return
        lo = chunk_ids[0]
        last = chunk_ids[-1]
        run = self._run
        if last - lo == len(chunk_ids) - 1:  # one contiguous run (common case)
            if run is not None and run[1] == lo:
                run[1] = last + 1  # extend the open run in place
                run[2] = t
            else:
                if run is not None:
                    self._emit_run()
                self._run = [lo, last + 1, t]
            self._bump(len(chunk_ids))
            return
        if run is not None:
            self._emit_run()
        prev = lo
        for cid in chunk_ids[1:]:
            if cid != prev + 1:
                self._writer.write_sample(_RUN_FMT, (t, lo, prev + 1))
                lo = cid
            prev = cid
        self._run = [lo, prev + 1, t]
        self._bump(len(chunk_ids))

    def _emit_run(self) -> None:
        """Hand the open coalesced run to the writer buffer."""
        lo, hi, t = self._run
        self._run = None
        self._writer.write_sample(_RUN_FMT, (t, lo, hi))

    def record_span(self, lo: int, hi: int, t: float) -> None:
        """Journal the contiguous id run ``[lo, hi)`` at expected digests.

        The no-slice variant of :meth:`record_runs` for callers whose
        pending queue is the identity (chunk id == queue position).
        """
        run = self._run
        if run is not None and run[1] == lo:
            run[1] = hi
            run[2] = t
        else:
            if run is not None:
                self._emit_run()
            self._run = [lo, hi, t]
        self._bump(hi - lo)

    def _bump(self, claims: int) -> None:
        self._claims_buffered += claims
        if self._claims_buffered >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        """Force buffered records to disk (checkpoint barrier)."""
        if self._run is not None:
            self._emit_run()
        self._writer.flush()
        self._claims_buffered = 0

    def close(self) -> None:
        """Flush and close the underlying writer."""
        if self._run is not None:
            self._emit_run()
        self._writer.close()
        self._claims_buffered = 0

    def crash(self, *, torn_tail: bool = False) -> None:
        """Simulate dying mid-run: unflushed records are lost.

        With ``torn_tail`` a partial record (no trailing newline) is left
        at the end of the file — the exact wreckage of a process killed
        mid-``write`` — which :meth:`replay` must tolerate and repair.
        """
        self._run = None  # unflushed coalesced claims die with the buffer
        self._writer.discard_buffer()
        self._writer.close()
        self._claims_buffered = 0
        if torn_tail:
            with self.path.open("a") as fh:
                fh.write('{"type":"chunk","id":99')  # deliberately torn

    def replay(self) -> dict[int, int]:
        """Fold the journal into ``{chunk_id: last claimed digest}``.

        Missing file → no claims.  A torn final line is truncated away so
        subsequent appends start clean.  ``chunkbatch`` records replay as
        if their claims had been appended individually, in order.
        """
        if not self.path.exists():
            return {}
        text = self.path.read_text()
        if text and not text.endswith("\n"):
            # Self-heal: truncate the torn tail (a record the dying process
            # never finished) so later appends cannot glue onto it and turn
            # recoverable wreckage into mid-file corruption.
            self.path.write_text(text[: text.rfind("\n") + 1])
        claims: dict[int, int] = {}
        for record in read_events(self.path):
            kind = record.get("type")
            if kind == "chunk":
                claims[int(record["id"])] = int(record["digest"])
            elif kind == "chunkbatch":
                for cid, digest in zip(record["ids"], record["digests"]):
                    claims[int(cid)] = int(digest)
            elif kind == "chunkrun":
                if self._expected is None:
                    raise IntegrityError(
                        "journal contains digest-elided chunkrun records; "
                        "replay requires the manifest's expected digests"
                    )
                expected = self._expected
                for cid in range(int(record["lo"]), int(record["hi"])):
                    claims[cid] = expected[cid]
        return claims

    def __enter__(self) -> "ChunkJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _ChunkColumn:
    """Dict-like view over one per-chunk ledger column (keys = chunk ids).

    The ledger stores chunk state columnar — numpy arrays indexed by chunk
    id — so verification sweeps are single vector ops; these views keep
    the external dict API (``ledger.status[3]``, ``.values()``, equality)
    working against the arrays.  Every access folds the ledger's deferred
    fast-path completions first (:meth:`DestinationLedger._materialize`),
    so readers never observe stale columns.
    """

    __slots__ = ("_ledger", "_arr")
    __hash__ = None

    def __init__(self, ledger, arr) -> None:
        self._ledger = ledger
        self._arr = arr

    def _decode(self, raw: int):
        return raw

    def _encode(self, value) -> int:
        return value

    def __getitem__(self, chunk_id: int):
        self._ledger._materialize()
        return self._decode(int(self._arr[chunk_id]))

    def __setitem__(self, chunk_id: int, value) -> None:
        self._ledger._materialize()  # a later fold must not clobber this write
        self._arr[chunk_id] = self._encode(value)

    def __len__(self) -> int:
        return len(self._arr)

    def __iter__(self):
        return iter(range(len(self._arr)))

    def __contains__(self, chunk_id) -> bool:
        return isinstance(chunk_id, int) and 0 <= chunk_id < len(self._arr)

    def keys(self):
        return range(len(self._arr))

    def values(self) -> list:
        self._ledger._materialize()
        decode = self._decode
        return [decode(raw) for raw in self._arr.tolist()]

    def items(self):
        return list(enumerate(self.values()))

    def get(self, chunk_id: int, default=None):
        if 0 <= chunk_id < len(self._arr):
            return self[chunk_id]
        return default

    def __eq__(self, other) -> bool:
        if isinstance(other, _ChunkColumn):
            self._ledger._materialize()
            other._ledger._materialize()
            return type(other) is type(self) and bool(np.array_equal(self._arr, other._arr))
        if isinstance(other, dict):
            return dict(self.items()) == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"{type(self).__name__}({dict(self.items())!r})"


class _StatusColumn(_ChunkColumn):
    """Status codes decoded to their names (``missing``/``ok``/…)."""

    __slots__ = ()

    def _decode(self, raw: int) -> str:
        return _STATUS_NAMES[raw]

    def _encode(self, value: str) -> int:
        return _STATUS_CODES[value]


class _DigestColumn(_ChunkColumn):
    """Digests with ``-1`` decoding to ``None`` (chunk not durable)."""

    __slots__ = ()

    def _decode(self, raw: int):
        return None if raw < 0 else raw

    def _encode(self, value) -> int:
        return -1 if value is None else int(value)


class _CountColumn(_ChunkColumn):
    """Plain integer counts (send counts)."""

    __slots__ = ()


class DestinationLedger:
    """The destination's ground truth: per-chunk status and actual digest.

    The engine reports monotone durable byte counts; the ledger maps each
    delta onto pending chunks in id order (a fractional head models the
    chunk currently being written).  Chunk completions draw seeded
    in-flight corruption from the active
    :class:`~repro.emulator.faults.FaultSchedule`; fire-once instants
    (:class:`TornWrite`, :class:`SilentTruncation`, at-rest
    :class:`DataCorruption`) strike between syncs.  **No byte count ever
    changes** — damage is visible only to verification, which is the point.

    State is columnar (status codes, digests, send counts as numpy arrays
    indexed by chunk id) with dict-like views for external readers.  On
    the fault-free path :meth:`sync` is fully vectorized: one
    ``searchsorted`` against the pending queue's cumulative sizes maps a
    byte delta onto every chunk it completes.

    Statuses: ``missing`` (not durable), ``ok`` (digest matches manifest),
    ``corrupt`` (bit-flipped in flight or at rest), ``torn`` (partial
    persist).
    """

    def __init__(
        self,
        manifest: TransferManifest,
        faults: FaultSchedule | None = None,
        *,
        seed: int = 0,
    ) -> None:
        self.manifest = manifest
        self.faults = faults
        self.seed = int(seed)
        self._sizes = manifest.chunk_sizes
        self._expected = manifest.chunk_digests
        self._sizes_np = manifest.sizes_np
        self._expected_np = manifest.digests_np
        n = len(manifest)
        # NOTE: the columns are updated lazily for fault-free ledgers —
        # read them through the query methods (verify/matches/status_counts/
        # to_dict), which fold in deferred completions first.
        self._status_arr = np.zeros(n, dtype=np.uint8)  # _MISSING
        self._digest_arr = np.full(n, -1, dtype=np.int64)
        self._send_arr = np.zeros(n, dtype=np.int64)
        self.status = _StatusColumn(self, self._status_arr)
        self.digests = _DigestColumn(self, self._digest_arr)
        self.send_counts = _CountColumn(self, self._send_arr)
        self._order: list[int] = []  # durable chunks, completion order (for truncation)
        self._order_set: set[int] = set()  # membership mirror: keeps the hot
        # completion path O(1) instead of scanning _order per chunk
        self._order_set_stale = False  # _materialize defers the set rebuild
        self._order_head = 0  # pending-queue entries already folded into _order
        #: Index into ``_order`` up to which the columns reflect
        #: completions.  The fault-free completion path only appends to
        #: ``_order``; :meth:`_materialize` folds the tail into the
        #: columns (one vector op) before any of them is read.
        self._clean_tail = 0
        # Full-pass queue state, precomputed once: plain python lists, not
        # arrays — per-sync batches are ~tens of chunks, where C-level list
        # slicing and ``bisect`` beat numpy's per-call dispatch overhead.
        self._all_ids: list[int] = list(range(n))
        self._full_cum: list[float] = np.cumsum(self._sizes_np).tolist()
        self._pending: list[int] = self._all_ids
        self._pend_cum: list[float] = self._full_cum
        self._pend_dig = self._expected  # digests aligned with _pending
        self._head = 0  # completed entries of the pending queue
        self._partial = 0.0  # bytes already written into the head chunk
        self._consumed = 0.0  # bytes mapped into the current pass's queue
        self._synced_bytes = 0.0  # engine byte count already mapped
        self._clock = 0.0
        self._torn_pending = False
        #: Durable bytes applied across ALL passes (never rewound by
        #: :meth:`begin_pass`) — the conservation side of the accounting.
        self.bytes_applied_total = 0.0

    # ---------------------------------------------------------- fault model
    def _uniform(self, tag: int, chunk_id: int, send: int) -> float:
        """Deterministic uniform draw in [0, 1) for one (chunk, send) pair."""
        return spawn_key(self.seed, (tag, chunk_id, send)) / _U64

    def _divergent_digest(self, chunk_id: int, marker: bytes) -> int:
        """A digest deterministically different from the chunk's expected one.

        Zero-copy: equals ``digest(payload + marker [+ "!"*k])`` without
        re-reading (CRC32C chains linearly off the expected digest) or
        copying (XXH32 streams over the arena view) the payload bytes.
        """
        expected = self._expected[chunk_id]
        if self.manifest.algorithm == "crc32c":
            # crc32c(a + b) == crc32c(b, value=crc32c(a)), and the payload's
            # digest IS the manifest's expected value.
            digest = crc32c(marker, value=expected)
            while digest == expected:  # 2**-32 collision: keep salting
                digest = crc32c(b"!", value=digest)
            return digest
        stream = Xxh32Stream()
        stream.update(self.manifest.payload_of(chunk_id)).update(marker)
        digest = stream.digest()
        while digest == expected:
            stream.update(b"!")
            digest = stream.digest()
        return digest

    def _ordered_ids(self) -> set[int]:
        """Membership set over ``_order``, rebuilt lazily after deferred
        fast-path completions (building a 50k-int set per verification
        sweep would cost more than the sweep itself)."""
        if self._order_set_stale:
            self._order_set = set(self._order)
            self._order_set_stale = False
        return self._order_set

    def _complete_chunk(self, chunk_id: int, t: float) -> int:
        """Mark one chunk durable; returns the digest the destination holds."""
        send = int(self._send_arr[chunk_id]) + 1
        self._send_arr[chunk_id] = send
        if self._torn_pending:
            self._torn_pending = False
            code, digest = _TORN, self._divergent_digest(chunk_id, b"|torn:%d" % send)
        else:
            rate = self.faults.corruption_rate(t) if self.faults is not None else 0.0
            if rate > 0.0 and self._uniform(_DRAW_INFLIGHT, chunk_id, send) < rate:
                code, digest = _CORRUPT, self._divergent_digest(
                    chunk_id, b"|flip:%d" % send
                )
            else:
                code, digest = _OK, self._expected[chunk_id]
        self._status_arr[chunk_id] = code
        self._digest_arr[chunk_id] = digest
        order_set = self._ordered_ids()
        if chunk_id in order_set:  # re-send: move to the tail (rare)
            self._order.remove(chunk_id)
        else:
            order_set.add(chunk_id)
        self._order.append(chunk_id)
        self._clean_tail = len(self._order)  # columns are current for this entry
        return digest

    def _materialize(self) -> None:
        """Fold deferred fast-path completions into the chunk columns.

        The fault-free completion path in :meth:`sync` records durability
        as a bare ``_order`` extend (plus the journal record) and defers
        the status/digest/send-count writes; every reader of those columns
        calls this first — one fancy-indexed vector op for the whole tail.
        No-op for faulted ledgers, where :meth:`_complete_chunk` keeps the
        columns current in-line.
        """
        if self.faults is None and self._order_head < self._head:
            # Fold the deferred completion order first: the clean sync path
            # advances only its queue head.
            self._order.extend(self._pending[self._order_head : self._head])
            self._order_head = self._head
        order = self._order
        if self._clean_tail == len(order):
            return
        tail = order[self._clean_tail :]
        # Within one deferred tail ids are strictly increasing (the clean
        # path completes pending chunks in id order), so a full-span check
        # detects the contiguous common case and folds it as one slice.
        lo, hi = tail[0], tail[-1] + 1
        if hi - lo == len(tail):
            sl = slice(lo, hi)
            self._status_arr[sl] = _OK
            self._digest_arr[sl] = self._expected_np[sl]
            self._send_arr[sl] += 1
        else:
            ids = np.fromiter(tail, count=len(tail), dtype=np.int64)
            self._status_arr[ids] = _OK
            self._digest_arr[ids] = self._expected_np[ids]
            self._send_arr[ids] += 1
        self._order_set_stale = True  # rebuilt lazily by _ordered_ids
        self._clean_tail = len(order)

    def _apply_instant(self, event) -> None:
        if isinstance(event, TornWrite):
            # The chunk in flight at the tear completes with a garbage tail.
            if self._head < len(self._pending):
                self._torn_pending = True
        elif isinstance(event, SilentTruncation):
            # The destination silently loses its most recent durable chunks.
            lost = self._order[-event.chunks :]
            if lost:
                ids = np.asarray(lost, dtype=np.int64)
                self._status_arr[ids] = _MISSING
                self._digest_arr[ids] = -1
                self._ordered_ids().difference_update(lost)
            del self._order[len(self._order) - min(event.chunks, len(self._order)) :]
        elif isinstance(event, DataCorruption):  # site == "storage", at-rest
            for chunk_id in list(self._order):
                if self._status_arr[chunk_id] != _OK:
                    continue
                send = int(self._send_arr[chunk_id])
                if self._uniform(_DRAW_ATREST, chunk_id, send) < event.rate:
                    self._status_arr[chunk_id] = _CORRUPT
                    self._digest_arr[chunk_id] = self._divergent_digest(
                        chunk_id, b"|rest:%d" % send
                    )

    # -------------------------------------------------------------- syncing
    def begin_pass(self, chunk_ids, *, start_bytes: float) -> None:
        """Queue ``chunk_ids`` (id order) for (re-)transfer from ``start_bytes``.

        ``start_bytes`` is the engine byte count the coming pass resumes
        from — the ledger re-bases its mapping there, so repair passes
        (whose checkpoints rewind the byte count) stay consistent.
        """
        self._materialize()  # fold the previous pass before swapping queues
        self._order_head = 0
        if isinstance(chunk_ids, range) and chunk_ids == range(len(self._all_ids)):
            ids = None  # full pass, checked O(1)
        elif isinstance(chunk_ids, range):
            ids = list(chunk_ids) if chunk_ids.step == 1 else sorted(chunk_ids)
        else:
            ids = sorted(int(c) for c in chunk_ids)
        if ids is None or (
            len(ids) == len(self._all_ids)
            and (not ids or (ids[0] == 0 and ids[-1] == len(ids) - 1))
        ):
            # Full pass (sorted distinct ids spanning 0..n-1): reuse the
            # precomputed queue instead of rebuilding 3 × n-element lists.
            self._pending = self._all_ids
            self._pend_cum = self._full_cum
            self._pend_dig = self._expected
        else:
            sizes, expected = self._sizes, self._expected
            self._pending = ids
            self._pend_cum = list(accumulate(sizes[c] for c in ids))
            self._pend_dig = [expected[c] for c in ids]
        self._head = 0
        self._partial = 0.0
        self._consumed = 0.0
        self._synced_bytes = float(start_bytes)
        self._torn_pending = False

    def sync(
        self,
        bytes_total: float,
        t: float,
        journal: "ChunkJournal | None" = None,
    ) -> list[tuple[int, int]]:
        """Map the engine's durable byte count onto chunk completions.

        Fires pending data-plane fault instants in ``[last sync, t)``,
        then maps the byte delta onto the pending queue.  Returns the
        ``(chunk_id, digest)`` pairs newly completed — the caller journals
        them.  With ``journal`` the completions go straight to
        :meth:`ChunkJournal.record_batch` as one coalesced record and the
        return value is empty.  Byte counts only move forward; a smaller
        ``bytes_total`` than already synced is ignored (stale observation).

        Fault-free ledgers take a fully vectorized path: one
        ``searchsorted`` against the queue's cumulative sizes finds every
        chunk the delta completes, and the status/digest/send-count
        column writes are deferred to :meth:`_materialize`.  Faulted
        ledgers route per-chunk through :meth:`_complete_chunk`, which
        handles torn/corrupt outcomes and re-send bookkeeping.
        """
        if self.faults is not None:
            for event in self.faults.take_data_events(self._clock, t):
                self._apply_instant(event)
            if t > self._clock:
                self._clock = t
            delta = bytes_total - self._synced_bytes
            if delta <= 0.0:
                return []
            self._synced_bytes = bytes_total
            self.bytes_applied_total += delta
            return self._sync_faulted(delta, t, journal)

        # Fault-free hot path, inlined (runs once per engine interval).
        # One ``bisect`` against the pending queue's cumulative sizes finds
        # every chunk the delta completes; a per-sync batch is ~tens of
        # chunks, where C-level list slicing beats numpy dispatch overhead.
        if t > self._clock:
            self._clock = t
        delta = bytes_total - self._synced_bytes
        if delta <= 0.0:
            return []
        self._synced_bytes = bytes_total
        self.bytes_applied_total += delta
        cum = self._pend_cum
        count = len(cum)
        head = self._head
        consumed = self._consumed + delta
        # Chunk j completes when consumed >= cum[j] - eps — identical to the
        # scalar walk, where each completion subtracts its full size and the
        # epsilon forgives at most one shortfall in total.  The search is
        # windowed near the head first: a sync advances by ~tens of chunks,
        # and probing the whole 50k-element list would touch cold cachelines
        # every interval.
        limit = consumed + _COMPLETE_EPS
        window = head + 128
        if window < count and cum[window] > limit:
            new_head = bisect_right(cum, limit, head, window)
        else:
            new_head = bisect_right(cum, limit, head)
        if new_head >= count and consumed - (cum[-1] if count else 0.0) > _COMPLETE_EPS:
            overflow = consumed - (cum[-1] if count else 0.0)
            raise IntegrityError(
                f"destination received {overflow:.0f} bytes beyond the pending chunk set"
            )
        completed: list[tuple[int, int]] = []
        if new_head > head:
            # Durability is recorded by advancing the head alone; both the
            # ``_order`` extend and the column writes are deferred to
            # :meth:`_materialize`.  (Safe because a queued chunk is never
            # already durable: :meth:`begin_pass` callers demote first.)
            consumed = max(consumed, cum[new_head - 1])
            if journal is None:
                ids = self._pending[head:new_head]
                completed = list(zip(ids, self._pend_dig[head:new_head]))
            elif self._pending is self._all_ids:
                # Full pass: queue position == chunk id, no slicing needed.
                journal.record_span(head, new_head, t)
            else:
                # Clean completions carry the manifest digests by
                # construction — journal them as digest-elided runs.
                journal.record_runs(self._pending[head:new_head], t)
        self._head = new_head
        self._consumed = consumed
        self._partial = consumed - (cum[new_head - 1] if new_head else 0.0)
        return completed

    def _sync_faulted(
        self, delta: float, t: float, journal: "ChunkJournal | None"
    ) -> list[tuple[int, int]]:
        """Scalar delta mapping for faulted ledgers (torn/corrupt outcomes)."""
        pending, sizes, head, partial = (
            self._pending,
            self._sizes,
            self._head,
            self._partial,
        )
        count = len(pending)
        completed: list[tuple[int, int]] = []
        while delta > 0.0 and head < count:
            chunk_id = pending[head]
            need = sizes[chunk_id] - partial
            if delta >= need - _COMPLETE_EPS:
                delta -= need
                partial = 0.0
                head += 1
                completed.append((chunk_id, self._complete_chunk(chunk_id, t)))
            else:
                partial += delta
                delta = 0.0
        self._head, self._partial = head, partial
        self._consumed = (self._pend_cum[head - 1] if head else 0.0) + partial
        if delta > _COMPLETE_EPS and head >= count:
            raise IntegrityError(
                f"destination received {delta:.0f} bytes beyond the pending chunk set"
            )
        if journal is not None and completed:
            journal.record_batch(
                [c for c, _ in completed], [d for _, d in completed], t
            )
            return []
        return completed

    # ------------------------------------------------------------- queries
    def matches(self, chunk_id: int) -> bool:
        """Whether the destination's digest equals the manifest's."""
        self._materialize()
        return bool(self._digest_arr[chunk_id] == self._expected_np[chunk_id])

    def verify(self) -> list[int]:
        """Chunk ids whose destination digest is missing or wrong.

        One vector comparison over the digest column — this is the
        verification sweep the repair loop runs after every pass.
        """
        self._materialize()
        return np.nonzero(self._digest_arr != self._expected_np)[0].tolist()

    def demote(self, chunk_ids: list[int]) -> None:
        """Mark chunks non-durable so a repair pass re-transfers them."""
        self._materialize()
        if len(chunk_ids):
            ids = np.asarray(list(chunk_ids), dtype=np.int64)
            self._status_arr[ids] = _MISSING
            self._digest_arr[ids] = -1
            dropped = set(int(c) for c in chunk_ids) & self._ordered_ids()
            if dropped:
                self._order = [c for c in self._order if c not in dropped]
                self._order_set -= dropped
        self._clean_tail = len(self._order)

    @property
    def verified_bytes(self) -> float:
        """Bytes whose chunks verify against the manifest."""
        self._materialize()
        return float(self._sizes_np[self._digest_arr == self._expected_np].sum())

    def status_counts(self) -> dict[str, int]:
        """Histogram of chunk statuses (``ok``/``corrupt``/``torn``/``missing``)."""
        self._materialize()
        counts = np.bincount(self._status_arr, minlength=len(_STATUS_NAMES))
        return {
            _STATUS_NAMES[code]: int(n) for code, n in enumerate(counts) if n
        }

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-friendly destination snapshot (inverse of :meth:`from_dict`)."""
        self._materialize()
        statuses = self.status.values()
        digests = self.digests.values()
        sends = self._send_arr.tolist()
        return {
            "version": MANIFEST_VERSION,
            "seed": self.seed,
            "chunks": {
                str(cid): {"status": statuses[cid], "digest": digests[cid], "sends": sends[cid]}
                for cid in range(len(statuses))
            },
            "order": list(self._order),
            "synced_bytes": self._synced_bytes,
            "applied_bytes": self.bytes_applied_total,
            "clock": self._clock,
        }

    @classmethod
    def from_dict(
        cls,
        manifest: TransferManifest,
        data: dict,
        faults: FaultSchedule | None = None,
    ) -> "DestinationLedger":
        """Rebuild a destination snapshot against its manifest."""
        ledger = cls(manifest, faults, seed=int(data.get("seed", 0)))
        chunks = data["chunks"]
        if len(chunks) != len(manifest):
            raise IntegrityError(
                f"destination snapshot has {len(chunks)} chunks, manifest {len(manifest)}"
            )
        for key, entry in chunks.items():
            cid = int(key)
            ledger.status[cid] = entry["status"]
            digest = entry["digest"]
            ledger.digests[cid] = None if digest is None else int(digest)
            ledger.send_counts[cid] = int(entry["sends"])
        ledger._order = [int(c) for c in data.get("order", [])]
        ledger._order_set = set(ledger._order)
        ledger._clean_tail = len(ledger._order)  # snapshot columns are current
        ledger._synced_bytes = float(data.get("synced_bytes", 0.0))
        ledger.bytes_applied_total = float(data.get("applied_bytes", 0.0))
        ledger._clock = float(data.get("clock", 0.0))
        return ledger

    def save(self, path: str | Path) -> None:
        """Persist the destination snapshot to JSON."""
        dump_json(self.to_dict(), path)


@dataclass(frozen=True)
class IntegrityConfig:
    """Knobs of the verification layer."""

    #: Verification/recovery granularity.  Smaller chunks bound the bytes
    #: re-sent per corrupt/torn unit more tightly and make resume
    #: checkpoints finer.  With the vectorized checksum kernels, columnar
    #: ledger sweeps and batched WAL appends, 4 MB keeps even a
    #: multi-hundred-GB transfer (tens of thousands of chunks) within the
    #: ≤5% clean-path verification budget that previously required 128 MB
    #: chunks (``benchmarks/bench_integrity.py`` holds the line;
    #: ``benchmarks/bench_dataplane.py`` gates the kernels).
    chunk_size: float = 4e6
    algorithm: str = "crc32c"
    max_repair_rounds: int = 3
    #: Journal claims buffered between fsync-like flushes.  A crash loses
    #: at most this many claims (conservative resume re-sends them); the
    #: default trades that bounded re-work for fewer write syscalls on the
    #: clean path.  Batched (``chunkbatch``) appends count claims, not
    #: lines, so coalescing never weakens the bound.  Chaos-soak cases pin
    #: this low to stress recovery.
    journal_flush_every: int = 512
    content_seed: int = 0
    seed: int = field(default=0, compare=False)  # corruption-draw stream

    def __post_init__(self) -> None:
        require_positive(self.chunk_size, "chunk_size")
        require_positive(self.max_repair_rounds, "max_repair_rounds")
        require_positive(self.journal_flush_every, "journal_flush_every")
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown digest algorithm {self.algorithm!r}; "
                f"choose from {sorted(ALGORITHMS)}"
            )


@dataclass(frozen=True)
class VerifiedTransferResult:
    """Outcome of a verified transfer (supervision + verification)."""

    completed: bool  # the supervised transfer moved all pending bytes
    verified: bool  # every manifest digest matches at the destination
    supervised: SupervisedTransferResult  # last supervised pass
    chunks_total: int
    resumed_verified_chunks: int  # journal claims accepted on resume
    resent_chunk_ids: tuple[int, ...]  # chunks re-transferred (mismatch/unclaimed-demote)
    repair_rounds: int
    unrecovered_chunk_ids: tuple[int, ...]  # still bad after repair budget
    verify_seconds: float = 0.0  # wall seconds spent in verification sweeps
    verify_mb_per_s: float = 0.0  # manifest MB checked per sweep-second

    @property
    def clean(self) -> bool:
        """Completed, verified, nothing left to repair."""
        return self.completed and self.verified and not self.unrecovered_chunk_ids


class VerifiedTransfer:
    """A supervised transfer with end-to-end chunk verification.

    Owns a :class:`~repro.transfer.supervisor.TransferSupervisor` and
    threads a ledger-sync observer through it: every interval observation
    maps durable bytes onto chunks, journals completions (one coalesced
    batch record per interval), and (after the supervised run) verifies
    all digests and repairs mismatches with bounded extra passes.
    """

    def __init__(
        self,
        supervisor: TransferSupervisor,
        manifest: TransferManifest,
        ledger: DestinationLedger,
        journal: ChunkJournal,
        config: IntegrityConfig | None = None,
    ) -> None:
        self.supervisor = supervisor
        self.manifest = manifest
        self.ledger = ledger
        self.journal = journal
        self.config = config or IntegrityConfig()

    @classmethod
    def for_supervisor(
        cls,
        supervisor: TransferSupervisor,
        run_dir: str | Path,
        config: IntegrityConfig | None = None,
    ) -> "VerifiedTransfer":
        """Wire manifest, ledger and journal for a supervisor's engine.

        The manifest digests the engine's dataset; the ledger draws its
        corruption stream from the engine testbed's fault schedule; the
        journal lives at ``run_dir/journal.jsonl``.
        """
        config = config or IntegrityConfig()
        engine = supervisor.engine
        manifest = TransferManifest.from_dataset(
            engine.dataset,
            config.chunk_size,
            algorithm=config.algorithm,
            content_seed=config.content_seed,
        )
        ledger = DestinationLedger(
            manifest, engine.testbed.faults, seed=config.seed
        )
        journal = ChunkJournal(
            Path(run_dir) / "journal.jsonl",
            flush_every=config.journal_flush_every,
            expected=manifest.chunk_digests,
        )
        return cls(supervisor, manifest, ledger, journal, config)

    # ------------------------------------------------------------- internals
    def _sync(self, bytes_total: float, t: float) -> None:
        self.ledger.sync(bytes_total, t, self.journal)

    def _hook(
        self, extra: Callable[[Observation], None] | None
    ) -> Callable[[Observation], None]:
        # Bound method + journal captured once: this closure runs every
        # engine interval, and each sync coalesces its completions into a
        # single journal batch record.
        ledger_sync = self.ledger.sync
        journal = self.journal
        if self.ledger.faults is not None:

            def observe(observation: Observation) -> None:
                ledger_sync(
                    observation.bytes_written_total, observation.elapsed, journal
                )
                if extra is not None:
                    extra(observation)

            return observe

        # Fault-free destination: batch syncs to ~_SYNC_BATCH_CHUNKS
        # completions.  The byte counter is cumulative, so skipped
        # observations are folded into the next sync; :meth:`_post_sync`
        # maps whatever remains at completion.
        threshold = _SYNC_BATCH_CHUNKS * self.config.chunk_size
        last = [self.ledger._synced_bytes]

        def observe(observation: Observation) -> None:
            bytes_total = observation.bytes_written_total
            if bytes_total - last[0] >= threshold:
                last[0] = bytes_total
                ledger_sync(bytes_total, observation.elapsed, journal)
            if extra is not None:
                extra(observation)

        return observe

    def _post_sync(self, supervised: SupervisedTransferResult) -> None:
        # The engine never calls the interval hook on the completing
        # interval, so the final chunk(s) are mapped here from the last
        # attempt's terminal byte count.
        if supervised.attempts:
            last = supervised.attempts[-1]
            self._sync(last.end_bytes, supervised.completion_time)
        self.journal.flush()

    def _verified_resume(self) -> tuple[float, int, list[int]]:
        """Replay the journal and verify claims; returns the resume state.

        A chunk counts as verified only when the journal *claims* it, the
        claim equals the manifest digest, **and** the destination still
        holds that digest (at-rest damage after journaling is caught
        here).  Everything else is queued for (re-)transfer; claimed-but-
        mismatching chunks are demoted first and reported as re-sent.
        """
        claims = self.journal.replay()
        expected = self.manifest.expected()
        verified: list[int] = []
        resent: list[int] = []
        for chunk_id, claim in claims.items():
            if chunk_id not in expected:
                continue  # journal from another manifest; ignore the claim
            if claim == expected[chunk_id] and self.ledger.matches(chunk_id):
                verified.append(chunk_id)
            else:
                resent.append(chunk_id)
        self.ledger.demote(resent)
        # Unclaimed-but-durable chunks (journal buffer lost in the crash)
        # are NOT trusted: conservative WAL semantics re-transfer them.
        resent_set = set(resent)
        unclaimed = [
            cid
            for cid in range(len(self.manifest))
            if cid not in claims or cid in resent_set
        ]
        self.ledger.demote([c for c in unclaimed if c not in resent_set])
        start_bytes = sum(self.manifest.size_of(c) for c in verified)
        self.ledger.begin_pass(unclaimed, start_bytes=start_bytes)
        return start_bytes, len(verified), resent

    # ------------------------------------------------------------------ run
    def run(
        self,
        *,
        resume: bool = False,
        resume_elapsed: float = 0.0,
        observer: Callable[[Observation], None] | None = None,
    ) -> VerifiedTransferResult:
        """Run the verified transfer to a fully-checked destination.

        With ``resume`` the journal is replayed first and only unverified
        chunks are transferred, starting the virtual clock at
        ``resume_elapsed`` (the crash instant).  ``observer`` is chained
        after the ledger sync on every interval — the chaos-soak harness
        injects its crash exceptions there, so a crash always happens
        *after* the bytes it interrupts were accounted.
        """
        cfg = self.config
        resent: list[int] = []
        resumed_verified = 0
        verify_seconds = 0.0
        verify_bytes = 0.0
        if resume:
            with obs.span("integrity/verify_resume", chunks=len(self.manifest)):
                start_bytes, resumed_verified, demoted = self._verified_resume()
                resent.extend(demoted)
            obs.count("integrity/resume_verified_chunks", resumed_verified)
            obs.count("integrity/resume_resent_chunks", len(demoted))
        else:
            start_bytes = 0.0
            self.ledger.begin_pass(range(len(self.manifest)), start_bytes=0.0)

        checkpoint = None
        if start_bytes > 0.0 or resume_elapsed > 0.0:
            checkpoint = TransferCheckpoint(
                bytes_completed=start_bytes, elapsed=resume_elapsed
            )
        supervised = self.supervisor.run(
            resume_from=checkpoint, observer=self._hook(observer)
        )
        self._post_sync(supervised)

        with obs.span("integrity/verify", chunks=len(self.manifest)):
            sweep_start = time.perf_counter()
            bad = self.ledger.verify()
            verify_seconds += time.perf_counter() - sweep_start
            verify_bytes += self.manifest.total_bytes
        obs.count("integrity/verify_passes")

        repair_rounds = 0
        while bad and supervised.completed and repair_rounds < cfg.max_repair_rounds:
            repair_rounds += 1
            obs.count("integrity/repair_rounds")
            obs.count("integrity/chunks_resent", len(bad))
            with obs.span("integrity/repair", round=repair_rounds, chunks=len(bad)):
                self.ledger.demote(bad)
                rewind = sum(self.manifest.size_of(c) for c in bad)
                pass_start = self.manifest.total_bytes - rewind
                self.ledger.begin_pass(bad, start_bytes=pass_start)
                resent.extend(bad)
                last_obs = self.supervisor.engine.last_observation
                checkpoint = TransferCheckpoint(
                    bytes_completed=pass_start,
                    elapsed=supervised.completion_time,
                    threads=last_obs.threads if last_obs is not None else (1, 1, 1),
                )
                supervised = self.supervisor.run(
                    resume_from=checkpoint, observer=self._hook(observer)
                )
                self._post_sync(supervised)
                sweep_start = time.perf_counter()
                bad = self.ledger.verify()
                verify_seconds += time.perf_counter() - sweep_start
                verify_bytes += self.manifest.total_bytes

        verified = not bad
        if not verified:
            obs.count("integrity/unrecovered_chunks", len(bad))
        verify_mb_per_s = verify_bytes / max(verify_seconds, 1e-9) / 1e6
        obs.count("transfer.verify.bytes", verify_bytes)
        obs.metric(
            "transfer.verify.mb_per_s",
            round(verify_mb_per_s, 3),
            t=supervised.completion_time,
        )
        return VerifiedTransferResult(
            completed=supervised.completed,
            verified=verified,
            supervised=supervised,
            chunks_total=len(self.manifest),
            resumed_verified_chunks=resumed_verified,
            resent_chunk_ids=tuple(resent),
            repair_rounds=repair_rounds,
            unrecovered_chunk_ids=tuple(bad),
            verify_seconds=verify_seconds,
            verify_mb_per_s=round(verify_mb_per_s, 3),
        )


def verify_artifacts(run_dir: str | Path) -> dict:
    """Offline verification of one run directory's integrity artifacts.

    Reads ``manifest.json``, ``journal.jsonl`` and ``destination.json``
    (each optional except the manifest), cross-checks journal claims and
    destination digests against the manifest, and confirms journal-replay
    idempotence.  This is what ``automdt verify`` prints.
    """
    run_dir = Path(run_dir)
    manifest = TransferManifest.load(run_dir / "manifest.json")
    expected = manifest.expected()

    journal = ChunkJournal(run_dir / "journal.jsonl", expected=manifest.chunk_digests)
    claims = journal.replay()
    replay_idempotent = journal.replay() == claims
    journal.close()
    claimed_ok = [cid for cid, d in claims.items() if expected.get(cid) == d]
    claimed_bad = [cid for cid, d in claims.items() if expected.get(cid) != d]

    report: dict = {
        "dataset": manifest.dataset_name,
        "algorithm": manifest.algorithm,
        "chunks_total": len(manifest),
        "total_bytes": manifest.total_bytes,
        "journal_claims": len(claims),
        "journal_claims_ok": len(claimed_ok),
        "journal_claims_bad": sorted(claimed_bad),
        "replay_idempotent": replay_idempotent,
    }

    destination_path = run_dir / "destination.json"
    if destination_path.exists():
        ledger = DestinationLedger.from_dict(manifest, load_json(destination_path))
        bad = ledger.verify()
        report["destination"] = ledger.status_counts()
        report["destination_bad_chunks"] = sorted(bad)
        report["verified_bytes"] = ledger.verified_bytes
        report["all_verified"] = not bad
    else:
        report["all_verified"] = (
            not claimed_bad and len(claimed_ok) == len(manifest)
        )
    return report
