"""End-to-end data integrity: checksummed chunks, manifest, WAL, verified resume.

PR 1 made transfers *available* under faults (stall detection, retry,
checkpoint-resume) — but nothing in that stack can detect **wrong bytes**:
a resumed :class:`~repro.transfer.supervisor.TransferCheckpoint` trusts
every previously counted byte.  This module adds the verification layer
production transfer services (GridFTP/Globus-style) treat as table stakes:

* :class:`TransferManifest` — the dataset split into fixed-size chunks,
  each with an expected digest (:func:`repro.utils.checksum.crc32c` or
  :func:`~repro.utils.checksum.xxh32`).
* :class:`ChunkJournal` — an append-only JSONL write-ahead journal of
  chunk completions, written through the obs event-writer fast lane and
  replayed with the torn-tail-tolerant reader, so a crash mid-append
  costs at most the unflushed buffer.
* :class:`DestinationLedger` — the emulator-side destination truth.  The
  fluid model moves byte *counts*, not bytes, so each chunk's content is
  identified by a deterministic payload tag; data-plane faults
  (:class:`~repro.emulator.faults.DataCorruption`,
  :class:`~repro.emulator.faults.TornWrite`,
  :class:`~repro.emulator.faults.SilentTruncation`) divert a chunk's
  *digest* without ever changing a byte count — exactly the failures only
  end-to-end verification can catch.
* :class:`VerifiedTransfer` — wraps a
  :class:`~repro.transfer.supervisor.TransferSupervisor`: maps durable
  byte progress onto chunks via the supervisor's interval observer,
  journals completions, re-verifies journaled chunks on resume
  (re-transferring only mismatches), and runs bounded repair passes until
  every manifest digest matches.

Verify-on-resume state machine::

    REPLAY(journal) --> VERIFY(claims vs ledger) --> RESUME(verified bytes)
    RESUME --> TRANSFER(pending chunks) --> FINAL_VERIFY
    FINAL_VERIFY --(mismatches, rounds left)--> REPAIR(bad chunks) --> FINAL_VERIFY
    FINAL_VERIFY --(clean)--> VERIFIED

Everything is deterministic: corruption draws come from
:func:`repro.parallel.seeds.spawn_key` on ``(chunk_id, send_count)``, so a
re-sent chunk gets a fresh draw while identical runs stay bit-identical.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.emulator.faults import (
    DataCorruption,
    FaultSchedule,
    SilentTruncation,
    TornWrite,
)
from repro.obs.events import JsonlEventWriter, read_events
from repro.transfer.engine import Observation
from repro.transfer.supervisor import (
    SupervisedTransferResult,
    TransferCheckpoint,
    TransferSupervisor,
)
from repro.utils.checksum import crc32c, xxh32
from repro.utils.config import dump_json, load_json, require_positive
from repro.utils.errors import IntegrityError
from repro.parallel.seeds import spawn_key

__all__ = [
    "ChunkJournal",
    "ChunkSpec",
    "DestinationLedger",
    "IntegrityConfig",
    "TransferManifest",
    "VerifiedTransfer",
    "VerifiedTransferResult",
    "verify_artifacts",
]

#: Digest algorithms available for manifests.
ALGORITHMS: dict[str, Callable[[bytes], int]] = {"crc32c": crc32c, "xxh32": xxh32}

#: Serialization version for manifest / destination-ledger JSON files.
MANIFEST_VERSION = 1

#: Engine completion tolerance (the engine declares a transfer done at
#: ``total - 0.5`` bytes), reused as the chunk-completion epsilon so the
#: final chunk completes when the engine says the dataset did.
_COMPLETE_EPS = 0.5

#: Deferred-format journal record — written on the event-writer fast lane
#: so journaling a chunk costs one list append in the transfer loop.
_JOURNAL_FMT = '{"type":"chunk","id":%d,"digest":%d,"t":%.3f}'

# Derivation-path tags for seeded corruption draws (first spawn_key level).
_DRAW_INFLIGHT = 1
_DRAW_ATREST = 2

_U64 = float(1 << 64)


@dataclass(frozen=True, slots=True)
class ChunkSpec:
    """One manifest chunk: a contiguous byte range of one file.

    Slotted: a big transfer holds thousands of these for its whole
    lifetime, and per-instance ``__dict__``s would both double the memory
    and make every GC generation scan measurably slower (the verification
    overhead budget counts that).
    """

    chunk_id: int
    file: str
    index: int  # chunk index within the file
    offset: float  # global byte offset in the dataset
    size: float
    digest: int  # expected digest of the chunk's (synthesised) content


class TransferManifest:
    """Per-file chunk digests for one dataset — what "correct" means.

    The emulator is a fluid model: there are no real bytes to hash, so each
    chunk's canonical content is a deterministic payload tag derived from
    ``(dataset, file, chunk index, content_seed)``.  Two manifests built
    with the same arguments are identical; a different ``content_seed``
    models a different dataset's contents.
    """

    def __init__(
        self,
        dataset_name: str,
        files: tuple[tuple[str, float], ...],
        chunk_size: float,
        algorithm: str = "crc32c",
        content_seed: int = 0,
    ) -> None:
        require_positive(chunk_size, "chunk_size")
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown digest algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
            )
        self.dataset_name = dataset_name
        self.files = tuple((str(n), float(s)) for n, s in files)
        self.chunk_size = float(chunk_size)
        self.algorithm = algorithm
        self.content_seed = int(content_seed)
        digest_fn = ALGORITHMS[algorithm]
        # Columnar chunk table: plain tuples of numbers are invisible to the
        # cyclic GC, where thousands of per-chunk objects would be rescanned
        # on every collection for the whole transfer (a measurable slice of
        # the verification overhead budget).  Chunk ids are row indices; the
        # object view (:attr:`chunks`) is built lazily for inspection and
        # serialization paths.
        file_idx: list[int] = []
        indices: list[int] = []
        offsets: list[float] = []
        sizes: list[float] = []
        digests: list[int] = []
        offset = 0.0
        for fi, (name, size) in enumerate(self.files):
            count = max(1, math.ceil(size / self.chunk_size))
            for index in range(count):
                chunk_bytes = min(self.chunk_size, size - index * self.chunk_size)
                file_idx.append(fi)
                indices.append(index)
                offsets.append(offset)
                sizes.append(chunk_bytes)
                digests.append(digest_fn(self.payload(name, index)))
                offset += chunk_bytes
        self.chunk_files: tuple[int, ...] = tuple(file_idx)
        self.chunk_indices: tuple[int, ...] = tuple(indices)
        self.chunk_offsets: tuple[float, ...] = tuple(offsets)
        self.chunk_sizes: tuple[float, ...] = tuple(sizes)
        self.chunk_digests: tuple[int, ...] = tuple(digests)
        self.total_bytes = offset
        self._chunks_cache: tuple[ChunkSpec, ...] | None = None

    @property
    def chunks(self) -> tuple[ChunkSpec, ...]:
        """The chunk table as :class:`ChunkSpec` rows (lazily materialised)."""
        if self._chunks_cache is None:
            self._chunks_cache = tuple(
                ChunkSpec(
                    chunk_id=cid,
                    file=self.files[self.chunk_files[cid]][0],
                    index=self.chunk_indices[cid],
                    offset=self.chunk_offsets[cid],
                    size=self.chunk_sizes[cid],
                    digest=self.chunk_digests[cid],
                )
                for cid in range(len(self.chunk_sizes))
            )
        return self._chunks_cache

    @classmethod
    def from_dataset(
        cls,
        dataset,
        chunk_size: float,
        *,
        algorithm: str = "crc32c",
        content_seed: int = 0,
    ) -> "TransferManifest":
        """Build from a :class:`repro.transfer.files.Dataset`."""
        return cls(
            dataset.name,
            tuple((f.name, f.size) for f in dataset),
            chunk_size,
            algorithm=algorithm,
            content_seed=content_seed,
        )

    # ------------------------------------------------------------- content
    def payload(self, file: str, index: int) -> bytes:
        """Canonical content tag of one chunk (what gets digested)."""
        return f"{self.dataset_name}:{file}:{index}:{self.content_seed}".encode()

    def payload_of(self, chunk_id: int) -> bytes:
        """Canonical content tag of one chunk by id (columnar lookup)."""
        return self.payload(
            self.files[self.chunk_files[chunk_id]][0], self.chunk_indices[chunk_id]
        )

    def digest_fn(self) -> Callable[[bytes], int]:
        """The manifest's digest function."""
        return ALGORITHMS[self.algorithm]

    def expected(self) -> dict[int, int]:
        """``{chunk_id: expected digest}`` for every chunk."""
        return dict(enumerate(self.chunk_digests))

    def size_of(self, chunk_id: int) -> float:
        """Byte size of one chunk."""
        return self.chunk_sizes[chunk_id]

    def __len__(self) -> int:
        return len(self.chunk_sizes)

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-friendly form (inverse of :meth:`from_dict`)."""
        return {
            "version": MANIFEST_VERSION,
            "dataset": self.dataset_name,
            "algorithm": self.algorithm,
            "chunk_size": self.chunk_size,
            "content_seed": self.content_seed,
            "files": [[n, s] for n, s in self.files],
            "chunks": [
                [c.chunk_id, c.file, c.index, c.offset, c.size, c.digest]
                for c in self.chunks
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TransferManifest":
        """Rebuild from :meth:`to_dict` output (digests are re-derived and
        cross-checked, so a tampered manifest file fails loudly)."""
        manifest = cls(
            data["dataset"],
            tuple((n, float(s)) for n, s in data["files"]),
            float(data["chunk_size"]),
            algorithm=data["algorithm"],
            content_seed=int(data.get("content_seed", 0)),
        )
        recorded = {int(row[0]): int(row[5]) for row in data["chunks"]}
        if recorded != manifest.expected():
            raise IntegrityError(
                f"manifest digests for {data['dataset']!r} do not match re-derived values"
            )
        return manifest

    def save(self, path: str | Path) -> None:
        """Persist to JSON."""
        dump_json(self.to_dict(), path)

    @classmethod
    def load(cls, path: str | Path) -> "TransferManifest":
        """Inverse of :meth:`save`."""
        return cls.from_dict(load_json(path))


class ChunkJournal:
    """Append-only write-ahead journal of chunk completions (JSONL).

    Records go through :meth:`JsonlEventWriter.write_sample`'s deferred-
    format lane, so journaling inside the transfer loop costs one list
    append; serialisation happens at flush time.  :meth:`replay` folds the
    log into a last-record-wins ``{chunk_id: digest}`` map with the
    torn-tail-tolerant reader, and self-heals a torn tail (truncating the
    record the dying process never finished) so post-recovery appends
    can't corrupt the next record.  Replay is idempotent: replaying an
    unchanged journal any number of times yields the same claims.
    """

    def __init__(self, path: str | Path, *, flush_every: int = 64) -> None:
        self.path = Path(path)
        self._writer = JsonlEventWriter(self.path, mode="a", flush_every=flush_every)

    def record(self, chunk_id: int, digest: int, t: float) -> None:
        """Journal one chunk completion (hot path: deferred format)."""
        self._writer.write_sample(_JOURNAL_FMT, (chunk_id, digest, t))

    def sink(self) -> Callable[[str, tuple], None]:
        """The writer's bound deferred-format lane, for per-interval loops.

        Callers pass :data:`_JOURNAL_FMT` and ``(chunk_id, digest, t)``;
        binding once skips the :meth:`record` call layer on a path that
        runs for every chunk of every transfer.
        """
        return self._writer.write_sample

    def flush(self) -> None:
        """Force buffered records to disk (checkpoint barrier)."""
        self._writer.flush()

    def close(self) -> None:
        """Flush and close the underlying writer."""
        self._writer.close()

    def crash(self, *, torn_tail: bool = False) -> None:
        """Simulate dying mid-run: unflushed records are lost.

        With ``torn_tail`` a partial record (no trailing newline) is left
        at the end of the file — the exact wreckage of a process killed
        mid-``write`` — which :meth:`replay` must tolerate and repair.
        """
        self._writer.discard_buffer()
        self._writer.close()
        if torn_tail:
            with self.path.open("a") as fh:
                fh.write('{"type":"chunk","id":99')  # deliberately torn

    def replay(self) -> dict[int, int]:
        """Fold the journal into ``{chunk_id: last claimed digest}``.

        Missing file → no claims.  A torn final line is truncated away so
        subsequent appends start clean.
        """
        if not self.path.exists():
            return {}
        text = self.path.read_text()
        if text and not text.endswith("\n"):
            # Self-heal: truncate the torn tail (a record the dying process
            # never finished) so later appends cannot glue onto it and turn
            # recoverable wreckage into mid-file corruption.
            self.path.write_text(text[: text.rfind("\n") + 1])
        claims: dict[int, int] = {}
        for record in read_events(self.path):
            if record.get("type") == "chunk":
                claims[int(record["id"])] = int(record["digest"])
        return claims

    def __enter__(self) -> "ChunkJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class DestinationLedger:
    """The destination's ground truth: per-chunk status and actual digest.

    The engine reports monotone durable byte counts; the ledger maps each
    delta onto pending chunks in id order (a fractional head models the
    chunk currently being written).  Chunk completions draw seeded
    in-flight corruption from the active
    :class:`~repro.emulator.faults.FaultSchedule`; fire-once instants
    (:class:`TornWrite`, :class:`SilentTruncation`, at-rest
    :class:`DataCorruption`) strike between syncs.  **No byte count ever
    changes** — damage is visible only to verification, which is the point.

    Statuses: ``missing`` (not durable), ``ok`` (digest matches manifest),
    ``corrupt`` (bit-flipped in flight or at rest), ``torn`` (partial
    persist).
    """

    def __init__(
        self,
        manifest: TransferManifest,
        faults: FaultSchedule | None = None,
        *,
        seed: int = 0,
    ) -> None:
        self.manifest = manifest
        self.faults = faults
        self.seed = int(seed)
        self._sizes = manifest.chunk_sizes
        self._expected = manifest.chunk_digests
        chunk_ids = range(len(manifest))
        # NOTE: these three maps are updated lazily for fault-free ledgers —
        # read them through the query methods (verify/matches/status_counts/
        # to_dict), which fold in deferred completions first.
        self.status: dict[int, str] = {cid: "missing" for cid in chunk_ids}
        self.digests: dict[int, int | None] = {cid: None for cid in chunk_ids}
        self.send_counts: dict[int, int] = {cid: 0 for cid in chunk_ids}
        self._order: list[int] = []  # durable chunks, completion order (for truncation)
        self._order_set: set[int] = set()  # membership mirror: keeps the hot
        # completion path O(1) instead of scanning _order per chunk
        #: Index into ``_order`` up to which the status/digest/send-count
        #: maps reflect completions.  The fault-free completion path only
        #: appends to ``_order``; :meth:`_materialize` folds the tail into
        #: the maps before any of them is read.
        self._clean_tail = 0
        self._pending: list[int] = list(chunk_ids)
        self._head = 0  # index into _pending
        self._partial = 0.0  # bytes already written into the head chunk
        self._synced_bytes = 0.0  # engine byte count already mapped
        self._clock = 0.0
        self._torn_pending = False
        #: Durable bytes applied across ALL passes (never rewound by
        #: :meth:`begin_pass`) — the conservation side of the accounting.
        self.bytes_applied_total = 0.0

    # ---------------------------------------------------------- fault model
    def _uniform(self, tag: int, chunk_id: int, send: int) -> float:
        """Deterministic uniform draw in [0, 1) for one (chunk, send) pair."""
        return spawn_key(self.seed, (tag, chunk_id, send)) / _U64

    def _divergent_digest(self, chunk_id: int, marker: bytes) -> int:
        """A digest deterministically different from the chunk's expected one."""
        digest_fn = self.manifest.digest_fn()
        payload = self.manifest.payload_of(chunk_id) + marker
        digest = digest_fn(payload)
        expected = self._expected[chunk_id]
        while digest == expected:  # 2**-32 collision: keep salting
            payload += b"!"
            digest = digest_fn(payload)
        return digest

    def _complete_chunk(self, chunk_id: int, t: float) -> int:
        """Mark one chunk durable; returns the digest the destination holds."""
        send = self.send_counts[chunk_id] + 1
        self.send_counts[chunk_id] = send
        if self._torn_pending:
            self._torn_pending = False
            status, digest = "torn", self._divergent_digest(
                chunk_id, b"|torn:%d" % send
            )
        else:
            rate = self.faults.corruption_rate(t) if self.faults is not None else 0.0
            if rate > 0.0 and self._uniform(_DRAW_INFLIGHT, chunk_id, send) < rate:
                status, digest = "corrupt", self._divergent_digest(
                    chunk_id, b"|flip:%d" % send
                )
            else:
                status, digest = "ok", self._expected[chunk_id]
        self.status[chunk_id] = status
        self.digests[chunk_id] = digest
        if chunk_id in self._order_set:  # re-send: move to the tail (rare)
            self._order.remove(chunk_id)
        else:
            self._order_set.add(chunk_id)
        self._order.append(chunk_id)
        self._clean_tail = len(self._order)  # maps are current for this entry
        return digest

    def _materialize(self) -> None:
        """Fold deferred fast-path completions into the chunk maps.

        The fault-free completion path in :meth:`sync` records durability
        as a bare ``_order`` append (plus the journal record) and defers
        the status/digest/send-count writes; every reader of those maps
        calls this first.  No-op for faulted ledgers, where
        :meth:`_complete_chunk` keeps the maps current in-line.
        """
        order = self._order
        if self._clean_tail == len(order):
            return
        status, digests, expected = self.status, self.digests, self._expected
        send_counts, order_set = self.send_counts, self._order_set
        for cid in order[self._clean_tail:]:
            status[cid] = "ok"
            digests[cid] = expected[cid]
            send_counts[cid] += 1
            order_set.add(cid)
        self._clean_tail = len(order)

    def _apply_instant(self, event) -> None:
        if isinstance(event, TornWrite):
            # The chunk in flight at the tear completes with a garbage tail.
            if self._head < len(self._pending):
                self._torn_pending = True
        elif isinstance(event, SilentTruncation):
            # The destination silently loses its most recent durable chunks.
            for chunk_id in self._order[-event.chunks:]:
                self.status[chunk_id] = "missing"
                self.digests[chunk_id] = None
                self._order_set.discard(chunk_id)
            del self._order[len(self._order) - min(event.chunks, len(self._order)):]
        elif isinstance(event, DataCorruption):  # site == "storage", at-rest
            for chunk_id in list(self._order):
                if self.status[chunk_id] != "ok":
                    continue
                send = self.send_counts[chunk_id]
                if self._uniform(_DRAW_ATREST, chunk_id, send) < event.rate:
                    self.status[chunk_id] = "corrupt"
                    self.digests[chunk_id] = self._divergent_digest(
                        chunk_id, b"|rest:%d" % send
                    )

    # -------------------------------------------------------------- syncing
    def begin_pass(self, chunk_ids: list[int], *, start_bytes: float) -> None:
        """Queue ``chunk_ids`` (id order) for (re-)transfer from ``start_bytes``.

        ``start_bytes`` is the engine byte count the coming pass resumes
        from — the ledger re-bases its mapping there, so repair passes
        (whose checkpoints rewind the byte count) stay consistent.
        """
        self._pending = sorted(chunk_ids)
        self._head = 0
        self._partial = 0.0
        self._synced_bytes = float(start_bytes)
        self._torn_pending = False

    def sync(
        self,
        bytes_total: float,
        t: float,
        sink: Callable[[str, tuple], None] | None = None,
    ) -> list[tuple[int, int]]:
        """Map the engine's durable byte count onto chunk completions.

        Fires pending data-plane fault instants in ``[last sync, t)``,
        then walks the byte delta through the pending queue.  Returns the
        ``(chunk_id, digest)`` pairs newly completed — the caller journals
        them.  With ``sink`` (a :meth:`ChunkJournal.sink` lane) completions
        are journaled in-loop instead and the return value is empty — one
        less list build + iteration on the per-interval hot path.  Byte
        counts only move forward; a smaller ``bytes_total`` than already
        synced is ignored (stale observation).
        """
        if self.faults is not None:
            for event in self.faults.take_data_events(self._clock, t):
                self._apply_instant(event)
        if t > self._clock:
            self._clock = t
        delta = bytes_total - self._synced_bytes
        if delta <= 0.0:
            return []
        self._synced_bytes = bytes_total
        self.bytes_applied_total += delta
        completed: list[tuple[int, int]] = []
        # Hot loop (runs every engine interval): locals beat attribute walks,
        # and the fault-free completion path — the common case a production
        # service pays on every clean transfer — is a bare ordered append
        # plus the journal record; the chunk-map writes are deferred to
        # :meth:`_materialize`.  (Safe because a queued chunk is never
        # already durable: :meth:`begin_pass` callers demote first.)
        # Faulted ledgers route through :meth:`_complete_chunk`, which
        # handles torn/corrupt outcomes and re-send bookkeeping.
        pending, sizes, head, partial = self._pending, self._sizes, self._head, self._partial
        count = len(pending)
        clean = self.faults is None
        expected = self._expected
        order_append = self._order.append
        while delta > 0.0 and head < count:
            chunk_id = pending[head]
            need = sizes[chunk_id] - partial
            if delta >= need - _COMPLETE_EPS:
                delta -= need
                partial = 0.0
                head += 1
                if clean:
                    digest = expected[chunk_id]
                    order_append(chunk_id)
                else:
                    digest = self._complete_chunk(chunk_id, t)
                if sink is not None:
                    sink(_JOURNAL_FMT, (chunk_id, digest, t))
                else:
                    completed.append((chunk_id, digest))
            else:
                partial += delta
                delta = 0.0
        self._head, self._partial = head, partial
        if delta > _COMPLETE_EPS and head >= count:
            raise IntegrityError(
                f"destination received {delta:.0f} bytes beyond the pending chunk set"
            )
        return completed

    # ------------------------------------------------------------- queries
    def matches(self, chunk_id: int) -> bool:
        """Whether the destination's digest equals the manifest's."""
        self._materialize()
        return self.digests[chunk_id] == self._expected[chunk_id]

    def verify(self) -> list[int]:
        """Chunk ids whose destination digest is missing or wrong."""
        self._materialize()
        expected = self._expected
        return [cid for cid, digest in self.digests.items() if digest != expected[cid]]

    def demote(self, chunk_ids: list[int]) -> None:
        """Mark chunks non-durable so a repair pass re-transfers them."""
        self._materialize()
        for chunk_id in chunk_ids:
            self.status[chunk_id] = "missing"
            self.digests[chunk_id] = None
            if chunk_id in self._order_set:
                self._order.remove(chunk_id)
                self._order_set.discard(chunk_id)
        self._clean_tail = len(self._order)

    @property
    def verified_bytes(self) -> float:
        """Bytes whose chunks verify against the manifest."""
        self._materialize()
        sizes, expected = self._sizes, self._expected
        return sum(
            sizes[cid] for cid, digest in self.digests.items() if digest == expected[cid]
        )

    def status_counts(self) -> dict[str, int]:
        """Histogram of chunk statuses (``ok``/``corrupt``/``torn``/``missing``)."""
        self._materialize()
        counts: dict[str, int] = {}
        for status in self.status.values():
            counts[status] = counts.get(status, 0) + 1
        return counts

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-friendly destination snapshot (inverse of :meth:`from_dict`)."""
        self._materialize()
        return {
            "version": MANIFEST_VERSION,
            "seed": self.seed,
            "chunks": {
                str(cid): {
                    "status": self.status[cid],
                    "digest": self.digests[cid],
                    "sends": self.send_counts[cid],
                }
                for cid in self.status
            },
            "order": list(self._order),
            "synced_bytes": self._synced_bytes,
            "applied_bytes": self.bytes_applied_total,
            "clock": self._clock,
        }

    @classmethod
    def from_dict(
        cls,
        manifest: TransferManifest,
        data: dict,
        faults: FaultSchedule | None = None,
    ) -> "DestinationLedger":
        """Rebuild a destination snapshot against its manifest."""
        ledger = cls(manifest, faults, seed=int(data.get("seed", 0)))
        chunks = data["chunks"]
        if len(chunks) != len(manifest):
            raise IntegrityError(
                f"destination snapshot has {len(chunks)} chunks, manifest {len(manifest)}"
            )
        for key, entry in chunks.items():
            cid = int(key)
            ledger.status[cid] = entry["status"]
            digest = entry["digest"]
            ledger.digests[cid] = None if digest is None else int(digest)
            ledger.send_counts[cid] = int(entry["sends"])
        ledger._order = [int(c) for c in data.get("order", [])]
        ledger._order_set = set(ledger._order)
        ledger._clean_tail = len(ledger._order)  # snapshot maps are current
        ledger._synced_bytes = float(data.get("synced_bytes", 0.0))
        ledger.bytes_applied_total = float(data.get("applied_bytes", 0.0))
        ledger._clock = float(data.get("clock", 0.0))
        return ledger

    def save(self, path: str | Path) -> None:
        """Persist the destination snapshot to JSON."""
        dump_json(self.to_dict(), path)


@dataclass(frozen=True)
class IntegrityConfig:
    """Knobs of the verification layer."""

    #: Verification/recovery granularity.  Smaller chunks bound the bytes
    #: re-sent per corrupt/torn unit more tightly but cost proportionally
    #: more ledger and journal work per transferred byte; 128 MB keeps a
    #: multi-hundred-GB transfer in the low thousands of chunks, where the
    #: clean-path overhead stays within the ≤5% verification budget
    #: (``benchmarks/bench_integrity.py`` holds the line).
    chunk_size: float = 128e6
    algorithm: str = "crc32c"
    max_repair_rounds: int = 3
    #: Journal records buffered between fsync-like flushes.  A crash loses
    #: at most this many claims (conservative resume re-sends them); the
    #: default trades that bounded re-work for fewer write syscalls on the
    #: clean path.  Chaos-soak cases pin this low to stress recovery.
    journal_flush_every: int = 512
    content_seed: int = 0
    seed: int = field(default=0, compare=False)  # corruption-draw stream

    def __post_init__(self) -> None:
        require_positive(self.chunk_size, "chunk_size")
        require_positive(self.max_repair_rounds, "max_repair_rounds")
        require_positive(self.journal_flush_every, "journal_flush_every")
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown digest algorithm {self.algorithm!r}; "
                f"choose from {sorted(ALGORITHMS)}"
            )


@dataclass(frozen=True)
class VerifiedTransferResult:
    """Outcome of a verified transfer (supervision + verification)."""

    completed: bool  # the supervised transfer moved all pending bytes
    verified: bool  # every manifest digest matches at the destination
    supervised: SupervisedTransferResult  # last supervised pass
    chunks_total: int
    resumed_verified_chunks: int  # journal claims accepted on resume
    resent_chunk_ids: tuple[int, ...]  # chunks re-transferred (mismatch/unclaimed-demote)
    repair_rounds: int
    unrecovered_chunk_ids: tuple[int, ...]  # still bad after repair budget

    @property
    def clean(self) -> bool:
        """Completed, verified, nothing left to repair."""
        return self.completed and self.verified and not self.unrecovered_chunk_ids


class VerifiedTransfer:
    """A supervised transfer with end-to-end chunk verification.

    Owns a :class:`~repro.transfer.supervisor.TransferSupervisor` and
    threads a ledger-sync observer through it: every interval observation
    maps durable bytes onto chunks, journals completions, and (after the
    supervised run) verifies all digests and repairs mismatches with
    bounded extra passes.
    """

    def __init__(
        self,
        supervisor: TransferSupervisor,
        manifest: TransferManifest,
        ledger: DestinationLedger,
        journal: ChunkJournal,
        config: IntegrityConfig | None = None,
    ) -> None:
        self.supervisor = supervisor
        self.manifest = manifest
        self.ledger = ledger
        self.journal = journal
        self.config = config or IntegrityConfig()

    @classmethod
    def for_supervisor(
        cls,
        supervisor: TransferSupervisor,
        run_dir: str | Path,
        config: IntegrityConfig | None = None,
    ) -> "VerifiedTransfer":
        """Wire manifest, ledger and journal for a supervisor's engine.

        The manifest digests the engine's dataset; the ledger draws its
        corruption stream from the engine testbed's fault schedule; the
        journal lives at ``run_dir/journal.jsonl``.
        """
        config = config or IntegrityConfig()
        engine = supervisor.engine
        manifest = TransferManifest.from_dataset(
            engine.dataset,
            config.chunk_size,
            algorithm=config.algorithm,
            content_seed=config.content_seed,
        )
        ledger = DestinationLedger(
            manifest, engine.testbed.faults, seed=config.seed
        )
        journal = ChunkJournal(
            Path(run_dir) / "journal.jsonl", flush_every=config.journal_flush_every
        )
        return cls(supervisor, manifest, ledger, journal, config)

    # ------------------------------------------------------------- internals
    def _sync(self, bytes_total: float, t: float) -> None:
        self.ledger.sync(bytes_total, t, self.journal.sink())

    def _hook(
        self, extra: Callable[[Observation], None] | None
    ) -> Callable[[Observation], None]:
        # Bound methods captured once: this closure runs every engine
        # interval, so the sync→journal chain is flattened into it.
        ledger_sync = self.ledger.sync
        journal_sink = self.journal.sink()

        def observe(observation: Observation) -> None:
            ledger_sync(observation.bytes_written_total, observation.elapsed, journal_sink)
            if extra is not None:
                extra(observation)

        return observe

    def _post_sync(self, supervised: SupervisedTransferResult) -> None:
        # The engine never calls the interval hook on the completing
        # interval, so the final chunk(s) are mapped here from the last
        # attempt's terminal byte count.
        if supervised.attempts:
            last = supervised.attempts[-1]
            self._sync(last.end_bytes, supervised.completion_time)
        self.journal.flush()

    def _verified_resume(self) -> tuple[float, int, list[int]]:
        """Replay the journal and verify claims; returns the resume state.

        A chunk counts as verified only when the journal *claims* it, the
        claim equals the manifest digest, **and** the destination still
        holds that digest (at-rest damage after journaling is caught
        here).  Everything else is queued for (re-)transfer; claimed-but-
        mismatching chunks are demoted first and reported as re-sent.
        """
        claims = self.journal.replay()
        expected = self.manifest.expected()
        verified: list[int] = []
        resent: list[int] = []
        for chunk_id, claim in claims.items():
            if chunk_id not in expected:
                continue  # journal from another manifest; ignore the claim
            if claim == expected[chunk_id] and self.ledger.matches(chunk_id):
                verified.append(chunk_id)
            else:
                resent.append(chunk_id)
        self.ledger.demote(resent)
        # Unclaimed-but-durable chunks (journal buffer lost in the crash)
        # are NOT trusted: conservative WAL semantics re-transfer them.
        resent_set = set(resent)
        unclaimed = [
            cid
            for cid in range(len(self.manifest))
            if cid not in claims or cid in resent_set
        ]
        self.ledger.demote([c for c in unclaimed if c not in resent_set])
        start_bytes = sum(self.manifest.size_of(c) for c in verified)
        self.ledger.begin_pass(unclaimed, start_bytes=start_bytes)
        return start_bytes, len(verified), resent

    # ------------------------------------------------------------------ run
    def run(
        self,
        *,
        resume: bool = False,
        resume_elapsed: float = 0.0,
        observer: Callable[[Observation], None] | None = None,
    ) -> VerifiedTransferResult:
        """Run the verified transfer to a fully-checked destination.

        With ``resume`` the journal is replayed first and only unverified
        chunks are transferred, starting the virtual clock at
        ``resume_elapsed`` (the crash instant).  ``observer`` is chained
        after the ledger sync on every interval — the chaos-soak harness
        injects its crash exceptions there, so a crash always happens
        *after* the bytes it interrupts were accounted.
        """
        cfg = self.config
        resent: list[int] = []
        resumed_verified = 0
        if resume:
            with obs.span("integrity/verify_resume", chunks=len(self.manifest)):
                start_bytes, resumed_verified, demoted = self._verified_resume()
                resent.extend(demoted)
            obs.count("integrity/resume_verified_chunks", resumed_verified)
            obs.count("integrity/resume_resent_chunks", len(demoted))
        else:
            start_bytes = 0.0
            self.ledger.begin_pass(list(range(len(self.manifest))), start_bytes=0.0)

        checkpoint = None
        if start_bytes > 0.0 or resume_elapsed > 0.0:
            checkpoint = TransferCheckpoint(
                bytes_completed=start_bytes, elapsed=resume_elapsed
            )
        supervised = self.supervisor.run(
            resume_from=checkpoint, observer=self._hook(observer)
        )
        self._post_sync(supervised)

        with obs.span("integrity/verify", chunks=len(self.manifest)):
            bad = self.ledger.verify()
        obs.count("integrity/verify_passes")

        repair_rounds = 0
        while bad and supervised.completed and repair_rounds < cfg.max_repair_rounds:
            repair_rounds += 1
            obs.count("integrity/repair_rounds")
            obs.count("integrity/chunks_resent", len(bad))
            with obs.span("integrity/repair", round=repair_rounds, chunks=len(bad)):
                self.ledger.demote(bad)
                rewind = sum(self.manifest.size_of(c) for c in bad)
                pass_start = self.manifest.total_bytes - rewind
                self.ledger.begin_pass(bad, start_bytes=pass_start)
                resent.extend(bad)
                last_obs = self.supervisor.engine.last_observation
                checkpoint = TransferCheckpoint(
                    bytes_completed=pass_start,
                    elapsed=supervised.completion_time,
                    threads=last_obs.threads if last_obs is not None else (1, 1, 1),
                )
                supervised = self.supervisor.run(
                    resume_from=checkpoint, observer=self._hook(observer)
                )
                self._post_sync(supervised)
                bad = self.ledger.verify()

        verified = not bad
        if not verified:
            obs.count("integrity/unrecovered_chunks", len(bad))
        return VerifiedTransferResult(
            completed=supervised.completed,
            verified=verified,
            supervised=supervised,
            chunks_total=len(self.manifest),
            resumed_verified_chunks=resumed_verified,
            resent_chunk_ids=tuple(resent),
            repair_rounds=repair_rounds,
            unrecovered_chunk_ids=tuple(bad),
        )


def verify_artifacts(run_dir: str | Path) -> dict:
    """Offline verification of one run directory's integrity artifacts.

    Reads ``manifest.json``, ``journal.jsonl`` and ``destination.json``
    (each optional except the manifest), cross-checks journal claims and
    destination digests against the manifest, and confirms journal-replay
    idempotence.  This is what ``automdt verify`` prints.
    """
    run_dir = Path(run_dir)
    manifest = TransferManifest.load(run_dir / "manifest.json")
    expected = manifest.expected()

    journal = ChunkJournal(run_dir / "journal.jsonl")
    claims = journal.replay()
    replay_idempotent = journal.replay() == claims
    journal.close()
    claimed_ok = [cid for cid, d in claims.items() if expected.get(cid) == d]
    claimed_bad = [cid for cid, d in claims.items() if expected.get(cid) != d]

    report: dict = {
        "dataset": manifest.dataset_name,
        "algorithm": manifest.algorithm,
        "chunks_total": len(manifest),
        "total_bytes": manifest.total_bytes,
        "journal_claims": len(claims),
        "journal_claims_ok": len(claimed_ok),
        "journal_claims_bad": sorted(claimed_bad),
        "replay_idempotent": replay_idempotent,
    }

    destination_path = run_dir / "destination.json"
    if destination_path.exists():
        ledger = DestinationLedger.from_dict(manifest, load_json(destination_path))
        bad = ledger.verify()
        report["destination"] = ledger.status_counts()
        report["destination_bad_chunks"] = sorted(bad)
        report["verified_bytes"] = ledger.verified_bytes
        report["all_verified"] = not bad
    else:
        report["all_verified"] = (
            not claimed_bad and len(claimed_ok) == len(manifest)
        )
    return report
