"""Transfer layer: datasets, engines, probing, metrics.

:class:`ModularTransferEngine` is the production data-plane of the
reproduction — it drives a :class:`repro.emulator.Testbed` with the
concurrency triples proposed by a controller (AutoMDT's policy, Marlin's
gradient-descent optimizers, or a static configuration) and records the
time series the paper's figures are made of.
:class:`MonolithicController` adapts single-concurrency tools (Globus-style)
onto the same engine.
"""

from repro.transfer.engine import (
    Controller,
    EngineConfig,
    ModularTransferEngine,
    Observation,
    TransferResult,
)
from repro.transfer.filelevel import FileLevelConfig, FileLevelEngine, FileLevelResult
from repro.transfer.files import Dataset, FileSpec
from repro.transfer.metrics import TransferMetrics
from repro.transfer.monolithic import MonolithicController
from repro.transfer.probing import ThroughputProbe
from repro.transfer.rpc import BufferReportChannel
from repro.transfer.tracing import TraceRecorder, TraceSummary, load_trace, summarize_trace

__all__ = [
    "Controller",
    "EngineConfig",
    "ModularTransferEngine",
    "Observation",
    "TransferResult",
    "Dataset",
    "FileSpec",
    "FileLevelConfig",
    "FileLevelEngine",
    "FileLevelResult",
    "TransferMetrics",
    "MonolithicController",
    "ThroughputProbe",
    "BufferReportChannel",
    "TraceRecorder",
    "TraceSummary",
    "load_trace",
    "summarize_trace",
]
