"""Transfer layer: datasets, engines, probing, metrics, supervision.

:class:`ModularTransferEngine` is the production data-plane of the
reproduction — it drives a :class:`repro.emulator.Testbed` with the
concurrency triples proposed by a controller (AutoMDT's policy, Marlin's
gradient-descent optimizers, or a static configuration) and records the
time series the paper's figures are made of.
:class:`MonolithicController` adapts single-concurrency tools (Globus-style)
onto the same engine.  :class:`TransferSupervisor` wraps the engine with
stall detection, bounded retry/backoff and checkpoint-resume, and
:class:`GuardedController` keeps trained policies safe on inputs they never
saw in training (see :mod:`repro.emulator.faults` for the fault model).
"""

from repro.transfer.engine import (
    Controller,
    EngineConfig,
    ModularTransferEngine,
    Observation,
    TransferResult,
)
from repro.transfer.filelevel import FileLevelConfig, FileLevelEngine, FileLevelResult
from repro.transfer.files import Dataset, FileSpec
from repro.transfer.guarded import GuardedController
from repro.transfer.integrity import (
    ChunkJournal,
    ChunkSpec,
    DestinationLedger,
    IntegrityConfig,
    TransferManifest,
    VerifiedTransfer,
    VerifiedTransferResult,
    verify_artifacts,
)
from repro.transfer.metrics import FaultEvent, RecoveryRecord, TransferMetrics
from repro.transfer.monolithic import MonolithicController
from repro.transfer.probing import ThroughputProbe
from repro.transfer.rpc import BufferReportChannel
from repro.transfer.supervisor import (
    AttemptRecord,
    SupervisedTransferResult,
    SupervisorConfig,
    TransferCheckpoint,
    TransferSupervisor,
)
from repro.transfer.tracing import TraceRecorder, TraceSummary, load_trace, summarize_trace

__all__ = [
    "Controller",
    "EngineConfig",
    "ModularTransferEngine",
    "Observation",
    "TransferResult",
    "Dataset",
    "FileSpec",
    "FileLevelConfig",
    "FileLevelEngine",
    "FileLevelResult",
    "TransferMetrics",
    "FaultEvent",
    "RecoveryRecord",
    "MonolithicController",
    "GuardedController",
    "ChunkJournal",
    "ChunkSpec",
    "DestinationLedger",
    "IntegrityConfig",
    "TransferManifest",
    "VerifiedTransfer",
    "VerifiedTransferResult",
    "verify_artifacts",
    "ThroughputProbe",
    "BufferReportChannel",
    "AttemptRecord",
    "SupervisedTransferResult",
    "SupervisorConfig",
    "TransferCheckpoint",
    "TransferSupervisor",
    "TraceRecorder",
    "TraceSummary",
    "load_trace",
    "summarize_trace",
]
