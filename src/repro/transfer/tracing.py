"""Transfer tracing: record every decision interval to a JSONL file.

Production transfer tools keep per-interval logs for post-mortems; this
module provides the same for the reproduction — a :class:`TraceRecorder`
wraps any controller and appends one JSON line per decision with the
observation it saw and the triple it chose, and :func:`load_trace` /
:func:`summarize_trace` turn a trace back into numbers.

The trace *format* is the :mod:`repro.obs` event log: each record is a JSON
object with ``"type": "decision"``, written through
:class:`repro.obs.events.JsonlEventWriter` in append mode.  That makes
traces resume-safe by default — a checkpoint-resume (the supervisor's
``start_bytes`` path) or a mid-session ``reset()`` extends the file instead
of truncating the history — and means ``automdt obs summary`` reads decision
traces and full observability logs with one parser.  Traces written by older
versions (no ``type`` field) still load.

Usage::

    controller = TraceRecorder(pipeline.controller(), "run.jsonl")
    ModularTransferEngine(testbed, dataset, controller).run()
    print(summarize_trace(load_trace("run.jsonl")))
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.obs.events import JsonlEventWriter, read_events
from repro.transfer.engine import Controller, Observation


class TraceRecorder:
    """Controller wrapper that logs every (observation, decision) pair.

    ``mode="a"`` (default) appends to an existing trace, so one logical
    transfer that spans several engine runs — checkpoint-resumes, resets —
    produces one continuous file.  Pass ``mode="w"`` to truncate once at the
    first write, or call :meth:`truncate` to discard explicitly.
    """

    def __init__(
        self,
        inner: Controller,
        path: str | Path,
        *,
        flush_every: int = 64,
        mode: str = "a",
    ) -> None:
        self.inner = inner
        self.path = Path(path)
        self._writer = JsonlEventWriter(self.path, mode=mode, flush_every=flush_every)

    def propose(self, observation: Observation) -> tuple[int, int, int]:
        """Delegate to the wrapped controller and log the exchange."""
        decision = self.inner.propose(observation)
        self._writer.write(
            {
                "type": "decision",
                "t": observation.elapsed,
                "threads_before": list(observation.threads),
                "throughputs": [round(v, 3) for v in observation.throughputs],
                "sender_free": observation.sender_free,
                "receiver_free": observation.receiver_free,
                "bytes_written": observation.bytes_written_total,
                "decision": list(decision),
            }
        )
        return decision

    def reset(self) -> None:
        """Reset the inner controller; the trace keeps appending.

        Resume-safe by construction: an engine restart (or the supervisor
        resuming from checkpoint) must not erase the decisions already on
        disk.  Use :meth:`truncate` for the old start-a-fresh-file behaviour.
        """
        self.inner.reset()
        self.flush()

    def truncate(self) -> None:
        """Discard everything recorded so far and start an empty trace."""
        self._writer.truncate()

    def flush(self) -> None:
        """Write buffered records to disk."""
        self._writer.flush()

    def close(self) -> None:
        """Flush and close the trace file."""
        self._writer.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class TraceSummary:
    """Aggregates of one trace."""

    decisions: int
    duration: float
    mean_threads: tuple[float, float, float]
    mean_total_threads: float
    mean_throughput: tuple[float, float, float]
    decision_changes: int

    @property
    def churn(self) -> float:
        """Fraction of decisions that changed the triple (stability measure)."""
        if self.decisions <= 1:
            return 0.0
        return self.decision_changes / (self.decisions - 1)


def load_trace(path: str | Path) -> list[dict]:
    """Read a JSONL trace back into a list of decision records.

    Tolerant where a post-mortem needs it to be: an empty file yields
    ``[]``, a truncated final line (process killed mid-append) is dropped,
    and non-decision observability records sharing the log (spans, metrics)
    are filtered out — so the trace of a crashed, resumed, fully
    instrumented run still loads.
    """
    return [
        record
        for record in read_events(path)
        if "decision" in record and record.get("type", "decision") == "decision"
    ]


def summarize_trace(records: list[dict]) -> TraceSummary:
    """Compute aggregate statistics of a trace."""
    if not records:
        return TraceSummary(0, 0.0, (0.0, 0.0, 0.0), 0.0, (0.0, 0.0, 0.0), 0)
    decisions = np.array([r["decision"] for r in records], dtype=float)
    throughputs = np.array([r["throughputs"] for r in records], dtype=float)
    times = np.array([r["t"] for r in records], dtype=float)
    changes = int((np.abs(np.diff(decisions, axis=0)).sum(axis=1) > 0).sum())
    mean_threads = tuple(float(v) for v in decisions.mean(axis=0))
    return TraceSummary(
        decisions=len(records),
        duration=float(times[-1] - times[0]),
        mean_threads=mean_threads,  # type: ignore[arg-type]
        mean_total_threads=float(decisions.sum(axis=1).mean()),
        mean_throughput=tuple(float(v) for v in throughputs.mean(axis=0)),  # type: ignore[arg-type]
        decision_changes=changes,
    )
