"""Transfer tracing: record every decision interval to a JSONL file.

Production transfer tools keep per-interval logs for post-mortems; this
module provides the same for the reproduction — a :class:`TraceRecorder`
wraps any controller and appends one JSON line per decision with the
observation it saw and the triple it chose, and :func:`load_trace` /
:func:`summarize_trace` turn a trace back into numbers.

Usage::

    controller = TraceRecorder(pipeline.controller(), "run.jsonl")
    ModularTransferEngine(testbed, dataset, controller).run()
    print(summarize_trace(load_trace("run.jsonl")))
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.transfer.engine import Controller, Observation


class TraceRecorder:
    """Controller wrapper that logs every (observation, decision) pair."""

    def __init__(self, inner: Controller, path: str | Path, *, flush_every: int = 64) -> None:
        self.inner = inner
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.flush_every = int(flush_every)
        self._buffer: list[str] = []
        self._fh = None

    def _ensure_open(self) -> None:
        if self._fh is None:
            self._fh = self.path.open("w")

    def propose(self, observation: Observation) -> tuple[int, int, int]:
        """Delegate to the wrapped controller and log the exchange."""
        decision = self.inner.propose(observation)
        record = {
            "t": observation.elapsed,
            "threads_before": list(observation.threads),
            "throughputs": [round(v, 3) for v in observation.throughputs],
            "sender_free": observation.sender_free,
            "receiver_free": observation.receiver_free,
            "bytes_written": observation.bytes_written_total,
            "decision": list(decision),
        }
        self._buffer.append(json.dumps(record))
        if len(self._buffer) >= self.flush_every:
            self.flush()
        return decision

    def reset(self) -> None:
        """Reset the inner controller and start a fresh trace file."""
        self.inner.reset()
        self.close()
        self._ensure_open()

    def flush(self) -> None:
        """Write buffered records to disk."""
        if self._buffer:
            self._ensure_open()
            self._fh.write("\n".join(self._buffer) + "\n")
            self._fh.flush()
            self._buffer.clear()

    def close(self) -> None:
        """Flush and close the trace file."""
        self.flush()
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class TraceSummary:
    """Aggregates of one trace."""

    decisions: int
    duration: float
    mean_threads: tuple[float, float, float]
    mean_total_threads: float
    mean_throughput: tuple[float, float, float]
    decision_changes: int

    @property
    def churn(self) -> float:
        """Fraction of decisions that changed the triple (stability measure)."""
        if self.decisions <= 1:
            return 0.0
        return self.decision_changes / (self.decisions - 1)


def load_trace(path: str | Path) -> list[dict]:
    """Read a JSONL trace back into a list of records."""
    records = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def summarize_trace(records: list[dict]) -> TraceSummary:
    """Compute aggregate statistics of a trace."""
    if not records:
        return TraceSummary(0, 0.0, (0.0, 0.0, 0.0), 0.0, (0.0, 0.0, 0.0), 0)
    decisions = np.array([r["decision"] for r in records], dtype=float)
    throughputs = np.array([r["throughputs"] for r in records], dtype=float)
    times = np.array([r["t"] for r in records], dtype=float)
    changes = int((np.abs(np.diff(decisions, axis=0)).sum(axis=1) > 0).sum())
    mean_threads = tuple(float(v) for v in decisions.mean(axis=0))
    return TraceSummary(
        decisions=len(records),
        duration=float(times[-1] - times[0]),
        mean_threads=mean_threads,  # type: ignore[arg-type]
        mean_total_threads=float(decisions.sum(axis=1).mean()),
        mean_throughput=tuple(float(v) for v in throughputs.mean(axis=0)),  # type: ignore[arg-type]
        decision_changes=changes,
    )
