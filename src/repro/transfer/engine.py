"""The modular transfer engine: controller-driven transfers over a testbed.

This is the production loop of the paper (§IV-F) with the controller
abstracted out: every ``decision_interval`` (virtual) seconds the engine
asks the controller for a concurrency triple, applies it to the testbed,
probes the achieved per-stage throughputs, exchanges buffer reports over
the RPC channel, and hands the controller the resulting observation.

Controllers implement :class:`Controller`; AutoMDT's policy, Marlin's
per-stage optimizers, joint gradient descent and static configurations all
plug in here, so every comparison in the evaluation runs on an identical
data plane.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.emulator.testbed import Testbed
from repro.transfer.files import Dataset
from repro.transfer.metrics import TransferMetrics
from repro.transfer.probing import ThroughputProbe
from repro.transfer.rpc import BufferReportChannel
from repro.utils.config import require_non_negative, require_positive
from repro.utils.rng import as_generator
from repro.utils.units import bytes_per_sec_to_mbps


@dataclass(frozen=True)
class Observation:
    """What a controller sees at each decision point.

    Matches the paper's PPO state space (§IV-D1): current thread counts,
    per-stage throughputs, and unused buffer space at both ends (the
    receiver's via the RPC channel, hence possibly one interval stale).
    """

    threads: tuple[int, int, int]
    throughputs: tuple[float, float, float]
    sender_free: float
    receiver_free: float
    sender_capacity: float
    receiver_capacity: float
    elapsed: float
    bytes_written_total: float
    done: bool = False

    @property
    def sender_usage(self) -> float:
        """Bytes staged at the sender."""
        return self.sender_capacity - self.sender_free

    @property
    def receiver_usage(self) -> float:
        """Bytes staged at the receiver (per the last RPC report)."""
        return self.receiver_capacity - self.receiver_free


@runtime_checkable
class Controller(Protocol):
    """Anything that proposes concurrency triples from observations."""

    def propose(self, observation: Observation) -> tuple[int, int, int]:
        """Return the concurrency triple to apply for the next interval."""
        ...  # pragma: no cover

    def reset(self) -> None:
        """Forget per-transfer state before a new run."""
        ...  # pragma: no cover


@dataclass(frozen=True)
class EngineConfig:
    """Engine knobs.

    ``decision_interval`` is the probe/update period (the paper uses 1 s
    probes in production and notes 3–5 s would be needed for *stable*
    metrics online — measurement noise at 1 s is part of what controllers
    must tolerate).
    """

    decision_interval: float = 1.0
    max_seconds: float = 3600.0
    probe_noise: float = 0.0
    probe_smoothing: float = 0.0
    rpc_delay: int = 1
    seed: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        require_positive(self.decision_interval, "decision_interval")
        require_positive(self.max_seconds, "max_seconds")
        require_non_negative(self.probe_noise, "probe_noise")
        require_non_negative(self.rpc_delay, "rpc_delay")


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one dataset transfer."""

    completed: bool
    completion_time: float
    total_bytes: float
    metrics: TransferMetrics
    controller_name: str = ""

    @property
    def effective_throughput(self) -> float:
        """End-to-end Mbps over the whole transfer — the Table I metric."""
        if self.completion_time <= 0:
            return 0.0
        return bytes_per_sec_to_mbps(self.total_bytes / self.completion_time)


class ModularTransferEngine:
    """Runs one dataset transfer, decoupling read/network/write concurrency."""

    def __init__(
        self,
        testbed: Testbed,
        dataset: Dataset,
        controller: Controller,
        config: EngineConfig | None = None,
        *,
        utility_fn: Callable[[tuple[float, float, float], tuple[int, int, int]], float]
        | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.testbed = testbed
        self.dataset = dataset
        self.controller = controller
        self.config = config or EngineConfig()
        self.utility_fn = utility_fn
        self._rng = as_generator(self.config.seed if rng is None else rng)

    def _file_efficiency(self) -> tuple[float, float, float]:
        src = self.testbed.config.source
        net = self.testbed.config.network
        dst = self.testbed.config.destination
        return (
            self.dataset.stage_efficiency(src.tpt, src.per_file_cost),
            self.dataset.stage_efficiency(net.tpt, net.per_file_cost),
            self.dataset.stage_efficiency(dst.tpt, dst.per_file_cost),
        )

    def _initial_observation(self) -> Observation:
        return Observation(
            threads=(1, 1, 1),
            throughputs=(0.0, 0.0, 0.0),
            sender_free=self.testbed.sender_buffer.free,
            receiver_free=self.testbed.receiver_buffer.free,
            sender_capacity=self.testbed.sender_buffer.capacity,
            receiver_capacity=self.testbed.receiver_buffer.capacity,
            elapsed=0.0,
            bytes_written_total=0.0,
        )

    def run(self) -> TransferResult:
        """Transfer the whole dataset; returns the result with full metrics."""
        cfg = self.config
        self.testbed.reset()
        self.controller.reset()
        probe = ThroughputProbe(
            cfg.probe_noise,
            cfg.probe_smoothing,
            rng=np.random.default_rng(self._rng.integers(2**63)),
        )
        rpc = BufferReportChannel(
            cfg.rpc_delay, initial_value=self.testbed.receiver_buffer.free
        )
        metrics = TransferMetrics()
        file_eff = self._file_efficiency()
        total = self.dataset.total_bytes
        remaining_read = total
        written = 0.0
        t = 0.0
        completed = False
        observation = self._initial_observation()

        while t < cfg.max_seconds:
            threads = self.controller.propose(observation)
            flows = self.testbed.advance(
                threads,
                cfg.decision_interval,
                read_available=remaining_read,
                file_efficiency=file_eff,
            )
            remaining_read = max(0.0, remaining_read - flows.bytes_read)
            written += flows.bytes_written

            if written >= total - 0.5:
                # Completed mid-interval: interpolate the finish instant.
                overshoot = flows.bytes_written - (written - total)
                fraction = overshoot / flows.bytes_written if flows.bytes_written > 0 else 1.0
                t += cfg.decision_interval * min(1.0, max(0.0, fraction))
                completed = True
            else:
                t += cfg.decision_interval

            measured = probe.observe(flows.throughputs)
            receiver_free_reported = rpc.exchange(flows.receiver_free)
            utility = (
                self.utility_fn(measured, flows.threads) if self.utility_fn is not None else None
            )
            metrics.record(
                t,
                throughputs=measured,
                threads=flows.threads,
                sender_usage=flows.sender_usage,
                receiver_usage=flows.receiver_usage,
                utility=utility,
                bytes_written_total=written,
            )
            observation = Observation(
                threads=flows.threads,
                throughputs=measured,
                sender_free=flows.sender_free,
                receiver_free=receiver_free_reported,
                sender_capacity=self.testbed.sender_buffer.capacity,
                receiver_capacity=self.testbed.receiver_buffer.capacity,
                elapsed=t,
                bytes_written_total=written,
                done=completed,
            )
            if completed:
                break

        return TransferResult(
            completed=completed,
            completion_time=t,
            total_bytes=total,
            metrics=metrics,
            controller_name=type(self.controller).__name__,
        )
