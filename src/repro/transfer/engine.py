"""The modular transfer engine: controller-driven transfers over a testbed.

This is the production loop of the paper (§IV-F) with the controller
abstracted out: every ``decision_interval`` (virtual) seconds the engine
asks the controller for a concurrency triple, applies it to the testbed,
probes the achieved per-stage throughputs, exchanges buffer reports over
the RPC channel, and hands the controller the resulting observation.

Controllers implement :class:`Controller`; AutoMDT's policy, Marlin's
per-stage optimizers, joint gradient descent and static configurations all
plug in here, so every comparison in the evaluation runs on an identical
data plane.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field, replace
from typing import Protocol, runtime_checkable

import numpy as np

from repro import obs
from repro.emulator.testbed import Testbed
from repro.transfer.files import Dataset
from repro.transfer.metrics import TransferMetrics
from repro.transfer.probing import ThroughputProbe
from repro.transfer.rpc import BufferReportChannel
from repro.utils.config import require_in_range, require_non_negative, require_positive
from repro.utils.rng import as_generator
from repro.utils.units import bytes_per_sec_to_mbps


#: Histogram buckets for end-to-end throughput samples (Mbps).
_THROUGHPUT_BUCKETS_MBPS = (10.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
                            5000.0, 10000.0, 40000.0)

#: Fixed schema of the per-interval sample.  The interval loop is the
#: hottest instrumented site in the repo (~100 µs of simulation per
#: interval), so the engine hands this format string plus a value tuple to
#: :meth:`repro.obs.ObsSession.sample_fmt`, which defers serialisation to
#: flush time instead of paying json.dumps (~6 µs) per interval.  Must
#: stay valid JSON once formatted.
_INTERVAL_FMT = (
    '{"type":"sample","name":"transfer/interval","t":%.3f,'
    '"throughput_read":%.3f,"throughput_network":%.3f,"throughput_write":%.3f,'
    '"threads_read":%d,"threads_network":%d,"threads_write":%d,'
    '"sender_usage":%.0f,"receiver_usage":%.0f,"bytes_written":%.0f}'
)


@dataclass(frozen=True)
class Observation:
    """What a controller sees at each decision point.

    Matches the paper's PPO state space (§IV-D1): current thread counts,
    per-stage throughputs, and unused buffer space at both ends (the
    receiver's via the RPC channel, hence possibly one interval stale).
    """

    threads: tuple[int, int, int]
    throughputs: tuple[float, float, float]
    sender_free: float
    receiver_free: float
    sender_capacity: float
    receiver_capacity: float
    elapsed: float
    bytes_written_total: float
    done: bool = False

    @property
    def sender_usage(self) -> float:
        """Bytes staged at the sender."""
        return self.sender_capacity - self.sender_free

    @property
    def receiver_usage(self) -> float:
        """Bytes staged at the receiver (per the last RPC report)."""
        return self.receiver_capacity - self.receiver_free


@runtime_checkable
class Controller(Protocol):
    """Anything that proposes concurrency triples from observations."""

    def propose(self, observation: Observation) -> tuple[int, int, int]:
        """Return the concurrency triple to apply for the next interval."""
        ...  # pragma: no cover

    def reset(self) -> None:
        """Forget per-transfer state before a new run."""
        ...  # pragma: no cover


@dataclass(frozen=True)
class EngineConfig:
    """Engine knobs.

    ``decision_interval`` is the probe/update period (the paper uses 1 s
    probes in production and notes 3–5 s would be needed for *stable*
    metrics online — measurement noise at 1 s is part of what controllers
    must tolerate).
    """

    decision_interval: float = 1.0
    max_seconds: float = 3600.0
    probe_noise: float = 0.0
    probe_smoothing: float = 0.0
    rpc_delay: int = 1
    seed: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        require_positive(self.decision_interval, "decision_interval")
        require_positive(self.max_seconds, "max_seconds")
        require_non_negative(self.probe_noise, "probe_noise")
        # Validate here, not when run() builds the ThroughputProbe: an
        # invalid smoothing must fail at config construction time.
        require_in_range(self.probe_smoothing, 0.0, 0.99, "probe_smoothing")
        require_non_negative(self.rpc_delay, "rpc_delay")


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one dataset transfer (or one supervised attempt).

    ``timed_out`` distinguishes a run that exhausted ``max_seconds`` from a
    completed one; ``aborted`` marks a run stopped early by a supervisor's
    watchdog.  ``bytes_transferred`` is the cumulative durable byte count at
    the destination, including any resumed-from offset.
    """

    completed: bool
    completion_time: float
    total_bytes: float
    metrics: TransferMetrics
    controller_name: str = ""
    timed_out: bool = False
    aborted: bool = False
    bytes_transferred: float = 0.0
    final_threads: tuple[int, int, int] = (1, 1, 1)

    @property
    def effective_throughput(self) -> float:
        """End-to-end Mbps over the whole transfer — the Table I metric."""
        if self.completion_time <= 0:
            return 0.0
        return bytes_per_sec_to_mbps(self.total_bytes / self.completion_time)


class ModularTransferEngine:
    """Runs one dataset transfer, decoupling read/network/write concurrency."""

    def __init__(
        self,
        testbed: Testbed,
        dataset: Dataset,
        controller: Controller,
        config: EngineConfig | None = None,
        *,
        utility_fn: Callable[[tuple[float, float, float], tuple[int, int, int]], float]
        | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.testbed = testbed
        self.dataset = dataset
        self.controller = controller
        self.config = config or EngineConfig()
        self.utility_fn = utility_fn
        self._rng = as_generator(self.config.seed if rng is None else rng)
        #: Terminal observation of the most recent run (None before any run).
        self.last_observation: Observation | None = None

    def _file_efficiency(self) -> tuple[float, float, float]:
        src = self.testbed.config.source
        net = self.testbed.config.network
        dst = self.testbed.config.destination
        return (
            self.dataset.stage_efficiency(src.tpt, src.per_file_cost),
            self.dataset.stage_efficiency(net.tpt, net.per_file_cost),
            self.dataset.stage_efficiency(dst.tpt, dst.per_file_cost),
        )

    def _initial_observation(
        self, elapsed: float, written: float, threads: tuple[int, int, int]
    ) -> Observation:
        return Observation(
            threads=threads,
            throughputs=(0.0, 0.0, 0.0),
            sender_free=self.testbed.sender_buffer.free,
            receiver_free=self.testbed.receiver_buffer.free,
            sender_capacity=self.testbed.sender_buffer.capacity,
            receiver_capacity=self.testbed.receiver_buffer.capacity,
            elapsed=elapsed,
            bytes_written_total=written,
        )

    def run(
        self,
        *,
        start_bytes: float = 0.0,
        start_time: float = 0.0,
        initial_threads: tuple[int, int, int] = (1, 1, 1),
        interval_hook: Callable[[Observation], bool] | None = None,
    ) -> TransferResult:
        """Transfer the whole dataset; returns the result with full metrics.

        ``start_bytes`` / ``start_time`` resume a checkpointed transfer:
        bytes already durable at the destination are not re-read, and the
        virtual clock (which drives fault schedules, background traffic and
        the ``max_seconds`` budget) continues from ``start_time``.
        ``interval_hook`` is called with each interval's observation; when
        it returns ``False`` the run stops early with ``aborted=True`` —
        this is how :class:`repro.transfer.supervisor.TransferSupervisor`
        implements stall detection without duplicating the loop.

        When an observability session is active (:func:`repro.obs.session`),
        the run opens a ``transfer/run`` span and emits one
        ``transfer/interval`` sample per decision interval.
        """
        # Pin the span's virtual_start to this run's clock origin; without
        # this a resumed attempt inherits the previous attempt's end time
        # and the span shows a negative virtual duration.
        obs.set_virtual_time(start_time)
        with obs.span(
            "transfer/run",
            controller=type(self.controller).__name__,
            total_gb=round(self.dataset.total_bytes / 1e9, 3),
            start_bytes=start_bytes,
        ):
            return self._run(
                start_bytes=start_bytes,
                start_time=start_time,
                initial_threads=initial_threads,
                interval_hook=interval_hook,
            )

    def _export_metrics(
        self, sess, metrics: TransferMetrics, bytes_this_run: float
    ) -> None:
        """Emit the whole run's telemetry from the metrics bundle.

        One ``transfer/interval`` sample per probe interval goes to the
        event log on the deferred-format lane (serialisation happens at
        flush time, after the transfer); counters and the throughput
        histogram are updated in the registry.  Probe-dropout intervals
        carry NaN throughputs, which ``%f`` would render as invalid JSON,
        so those rows take the dict (``json.dumps``) path with ``null``.
        """
        m = metrics
        columns = (
            m.throughput_read.raw_times,
            m.throughput_read.raw_values, m.throughput_network.raw_values,
            m.throughput_write.raw_values,
            m.threads_read.raw_values, m.threads_network.raw_values,
            m.threads_write.raw_values,
            m.sender_usage.raw_values, m.receiver_usage.raw_values,
            m.bytes_written.raw_values,
        )
        count = len(m.throughput_write)
        if not any(v != v for v in m.throughput_read.raw_values):  # no NaN
            # One buffered entry covers the whole run; the writer zips and
            # formats at flush time, after the transfer.
            sess.sample_columns(_INTERVAL_FMT, columns, count)
        else:
            # Probe-dropout rows carry NaN, which %f renders as invalid
            # JSON — walk row-by-row, bulk-emitting the clean stretches.
            pending: list[tuple] = []
            for row in zip(*columns):
                if row[1] == row[1]:  # not NaN
                    pending.append(row)
                else:
                    if pending:
                        sess.sample_fmt_many(_INTERVAL_FMT, pending)
                        pending = []
                    sess.sample(
                        "transfer/interval",
                        t=row[0],
                        throughput_read=None,
                        throughput_network=None,
                        throughput_write=None,
                        threads_read=row[4],
                        threads_network=row[5],
                        threads_write=row[6],
                        sender_usage=row[7],
                        receiver_usage=row[8],
                        bytes_written=row[9],
                    )
            if pending:
                sess.sample_fmt_many(_INTERVAL_FMT, pending)
        reg = sess.registry
        reg.counter("transfer/intervals").inc(count)
        reg.counter("transfer/bytes_written").inc(max(0.0, bytes_this_run))
        reg.histogram(
            "transfer/throughput_write_mbps", buckets=_THROUGHPUT_BUCKETS_MBPS
        ).observe_many(m.throughput_write.raw_values)

    def _run(
        self,
        *,
        start_bytes: float,
        start_time: float,
        initial_threads: tuple[int, int, int],
        interval_hook: Callable[[Observation], bool] | None,
    ) -> TransferResult:
        cfg = self.config
        sess = obs.active()
        require_non_negative(start_bytes, "start_bytes")
        require_non_negative(start_time, "start_time")
        self.testbed.reset(start_time=start_time)
        self.controller.reset()
        probe = ThroughputProbe(
            cfg.probe_noise,
            cfg.probe_smoothing,
            rng=np.random.default_rng(self._rng.integers(2**63)),
        )
        rpc = BufferReportChannel(
            cfg.rpc_delay, initial_value=self.testbed.receiver_buffer.free
        )
        faults = self.testbed.faults
        metrics = TransferMetrics()
        file_eff = self._file_efficiency()
        total = self.dataset.total_bytes
        remaining_read = max(0.0, total - start_bytes)
        written = float(start_bytes)
        t = float(start_time)
        completed = written >= total - 0.5
        aborted = False
        observation = self._initial_observation(t, written, initial_threads)

        while not completed and t < cfg.max_seconds:
            threads = self.controller.propose(observation)
            flows = self.testbed.advance(
                threads,
                cfg.decision_interval,
                read_available=remaining_read,
                file_efficiency=file_eff,
            )
            remaining_read = max(0.0, remaining_read - flows.bytes_read)
            written += flows.bytes_written

            if written >= total - 0.5:
                # Completed mid-interval: interpolate the finish instant.
                overshoot = flows.bytes_written - (written - total)
                fraction = overshoot / flows.bytes_written if flows.bytes_written > 0 else 1.0
                t += cfg.decision_interval * min(1.0, max(0.0, fraction))
                completed = True
            else:
                t += cfg.decision_interval

            measured = probe.observe(flows.throughputs)
            if faults is not None and faults.probe_dropout(t):
                measured = (float("nan"), float("nan"), float("nan"))
            receiver_free_reported = rpc.exchange(
                flows.receiver_free,
                lost=faults is not None and faults.report_lost(t),
            )
            utility = (
                self.utility_fn(measured, flows.threads) if self.utility_fn is not None else None
            )
            metrics.record(
                t,
                throughputs=measured,
                threads=flows.threads,
                sender_usage=flows.sender_usage,
                receiver_usage=flows.receiver_usage,
                utility=utility,
                bytes_written_total=written,
            )
            observation = Observation(
                threads=flows.threads,
                throughputs=measured,
                sender_free=flows.sender_free,
                receiver_free=receiver_free_reported,
                sender_capacity=self.testbed.sender_buffer.capacity,
                receiver_capacity=self.testbed.receiver_buffer.capacity,
                elapsed=t,
                bytes_written_total=written,
                done=completed,
            )
            if completed:
                break
            if interval_hook is not None and not interval_hook(observation):
                aborted = True
                break

        if sess is not None:
            # The interval loop itself carries ZERO instrumentation: every
            # field of the per-interval sample is already in the metrics
            # bundle the engine keeps anyway, so the whole telemetry bill —
            # event-log samples, registry totals, the throughput histogram —
            # is paid here, once, after the transfer loop has finished.
            sess.virtual_time = t
            self._export_metrics(sess, metrics, written - start_bytes)

        timed_out = not completed and not aborted
        if timed_out:
            # The budget ran out: mark the terminal observation done so
            # controllers/metrics consumers can tell this run is over.
            observation = replace(observation, done=True)
        self.last_observation = observation
        return TransferResult(
            completed=completed,
            completion_time=t,
            total_bytes=total,
            metrics=metrics,
            controller_name=type(self.controller).__name__,
            timed_out=timed_out,
            aborted=aborted,
            bytes_transferred=written,
            final_threads=observation.threads,
        )
