"""File-level (chunk-granular) transfer engine.

The fluid :class:`repro.emulator.Testbed` models byte flows; this engine
models the paper's §III process literally: *read threads load files from
the source filesystem into the DTN's shared memory; the files are sent over
the network; write threads sync them to the destination filesystem*.  Each
read worker owns one file at a time, pays that file's open cost, and stages
it chunk by chunk into the bounded sender buffer; network and write workers
drain the staged byte pools at their per-thread rates.  Per-file completion
is tracked exactly (files complete in read order), which gives:

* per-file latency distributions (how small files suffer),
* a from-first-principles account of why the Mixed dataset of Table I is
  slower than the Large one — the per-file open cost serializes against the
  chunk stream on each worker,
* a cross-check of the fluid testbed's aggregate throughput (the two models
  agree within a few percent on uniform datasets; see the consistency test).

Concurrency is re-read from the controller every ``decision_interval``
virtual seconds, so the same :class:`repro.transfer.engine.Controller`
implementations drive this engine too.

Known modelling scope: each file is read/written by a single worker (no
intra-file TCP parallelism), so transfers exhibit the classic *straggler
tail* — the last files drain at per-stream speed even though the aggregate
pipeline ran at the bottleneck rate.  With the paper's 1000×1 GB workload
the tail is ~1% of the transfer; with few large files it dominates, which
is precisely why the related work adds pipelining/parallelism knobs
([45]).  Use the fluid :class:`repro.emulator.Testbed` when you want the
idealized no-tail aggregate.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.emulator.testbed import TestbedConfig
from repro.transfer.engine import Controller, Observation
from repro.transfer.files import Dataset
from repro.transfer.metrics import TransferMetrics
from repro.utils.config import require_positive
from repro.utils.errors import TransferError
from repro.utils.units import bytes_per_sec_to_mbps, mbps_to_bytes_per_sec

_READ, _NETWORK, _WRITE = 0, 1, 2


@dataclass(frozen=True)
class FileLevelConfig:
    """Engine knobs for the chunk-granular data plane.

    ``parallelism`` splits every file into that many independently-readable
    segments (the ``-p`` knob of GridFTP-family tools, refs [14], [45] of
    the paper): a lone multi-GB file can then use several read workers at
    once, shrinking the straggler tail — at the price of one per-segment
    open cost each.
    """

    decision_interval: float = 1.0
    chunk_bytes: float = 8.0 * 1024 * 1024
    max_seconds: float = 3600.0
    epsilon: float = 0.01  # blocked-task retry backoff
    parallelism: int = 1

    def __post_init__(self) -> None:
        require_positive(self.decision_interval, "decision_interval")
        require_positive(self.chunk_bytes, "chunk_bytes")
        require_positive(self.max_seconds, "max_seconds")
        require_positive(self.epsilon, "epsilon")
        require_positive(self.parallelism, "parallelism")


@dataclass
class FileLevelResult:
    """Outcome of a file-level transfer."""

    completed: bool
    completion_time: float
    total_bytes: float
    metrics: TransferMetrics
    file_completion_times: np.ndarray  # virtual second each file finished writing
    file_sizes: np.ndarray

    @property
    def effective_throughput(self) -> float:
        """End-to-end Mbps over the whole transfer."""
        if self.completion_time <= 0:
            return 0.0
        return bytes_per_sec_to_mbps(self.total_bytes / self.completion_time)

    def file_latency_quantiles(self, qs=(0.5, 0.9, 0.99)) -> dict[float, float]:
        """Quantiles of per-file completion times."""
        if len(self.file_completion_times) == 0:
            return {q: float("nan") for q in qs}
        return {q: float(np.quantile(self.file_completion_times, q)) for q in qs}


class FileLevelEngine:
    """Chunk-granular transfer of a dataset under a concurrency controller."""

    def __init__(
        self,
        testbed_config: TestbedConfig,
        dataset: Dataset,
        controller: Controller,
        config: FileLevelConfig | None = None,
    ) -> None:
        self.testbed_config = testbed_config
        self.dataset = dataset
        self.controller = controller
        self.config = config or FileLevelConfig()

    # ------------------------------------------------------------------ rates
    def _stage_rate(self, stage: int, n: int) -> float:
        """Per-worker byte rate for ``n`` active workers of a stage.

        Reuses the emulator's device/path models (per-thread caps, aggregate
        ceilings, over-concurrency degradation).  The network rate is taken
        without ramp/background state — the file-level engine is a steady-
        state data plane; use the fluid Testbed for those dynamics.
        """
        cfg = self.testbed_config
        if stage in (_READ, _WRITE):
            from repro.emulator.storage import StorageDevice

            device = cfg.source if stage == _READ else cfg.destination
            total = StorageDevice(device).aggregate_rate(n)
        else:
            from repro.emulator.network import NetworkPath

            total = NetworkPath(cfg.network).aggregate_rate(float(n), t=0.0)
        return mbps_to_bytes_per_sec(total / max(1, n))

    # ------------------------------------------------------------------- run
    def run(self) -> FileLevelResult:
        """Transfer the dataset; returns per-file and aggregate results."""
        cfg = self.config
        tb = self.testbed_config
        files = self.dataset.files
        sizes = np.array([f.size for f in files])
        cumulative = np.cumsum(sizes)
        total = float(cumulative[-1])

        # Expand files into read work-units: `parallelism` segments per file
        # (kept in file order so cumulative-byte file completion stays exact).
        p = self.config.parallelism
        if p == 1:
            unit_sizes = sizes.tolist()
        else:
            unit_sizes = []
            for size in sizes:
                base = size / p
                unit_sizes.extend([base] * (p - 1))
                unit_sizes.append(size - base * (p - 1))

        self.controller.reset()

        # Pools and cursors.
        sender_cap = tb.sender_buffer_capacity
        receiver_cap = tb.receiver_buffer_capacity
        sender_pool = 0.0
        receiver_pool = 0.0
        next_unit = 0  # next read work-unit (file or file segment) to claim
        bytes_read = bytes_sent = bytes_written = 0.0
        open_cost_read = tb.source.per_file_cost
        open_cost_write = tb.destination.per_file_cost

        # Per-worker state: read workers own (file_index, remaining_bytes).
        read_assignments: dict[int, list] = {}

        file_done = np.full(len(files), np.nan)
        written_files = 0

        threads = (1, 1, 1)
        counters = [0.0, 0.0, 0.0]  # bytes moved this interval
        interval_start = 0.0
        metrics = TransferMetrics()

        # Event queue: (time, seq, stage, worker_slot)
        queue: list[tuple[float, int, int, int]] = []
        seq = 0

        def schedule(t: float, stage: int, slot: int) -> None:
            nonlocal seq
            heapq.heappush(queue, (t, seq, stage, slot))
            seq += 1

        def observation(now: float, tputs) -> Observation:
            return Observation(
                threads=threads,
                throughputs=tputs,
                sender_free=sender_cap - sender_pool,
                receiver_free=receiver_cap - receiver_pool,
                sender_capacity=sender_cap,
                receiver_capacity=receiver_cap,
                elapsed=now,
                bytes_written_total=bytes_written,
            )

        threads = tuple(
            int(min(tb.max_threads, max(1, n)))
            for n in self.controller.propose(observation(0.0, (0.0, 0.0, 0.0)))
        )
        rates = [self._stage_rate(s, threads[s]) for s in range(3)]
        for stage in range(3):
            for slot in range(threads[stage]):
                schedule(0.0, stage, slot)

        now = 0.0
        next_decision = cfg.decision_interval
        completed = False

        while queue:
            t, _, stage, slot = heapq.heappop(queue)
            now = max(now, t)
            if now >= cfg.max_seconds:
                break

            # Decision boundary: probe, consult controller, reschedule pools.
            while t >= next_decision:
                interval = next_decision - interval_start
                tputs = tuple(
                    bytes_per_sec_to_mbps(c / max(interval, 1e-9)) for c in counters
                )
                metrics.record(
                    next_decision,
                    throughputs=tputs,
                    threads=threads,
                    sender_usage=sender_pool,
                    receiver_usage=receiver_pool,
                    bytes_written_total=bytes_written,
                )
                proposed = self.controller.propose(observation(next_decision, tputs))
                new_threads = tuple(
                    int(min(tb.max_threads, max(1, n))) for n in proposed
                )
                if new_threads != threads:
                    # Add workers for grown stages; shrunk stages drop extra
                    # slots lazily (events for slots >= n are discarded).
                    for s in range(3):
                        for extra in range(threads[s], new_threads[s]):
                            schedule(next_decision, s, extra)
                    threads = new_threads
                    rates = [self._stage_rate(s, threads[s]) for s in range(3)]
                counters = [0.0, 0.0, 0.0]
                interval_start = next_decision
                next_decision += cfg.decision_interval

            if slot >= threads[stage]:
                continue  # worker slot retired by a concurrency decrease

            duration = 0.0
            if stage == _READ:
                job = read_assignments.get(slot)
                if job is None and next_unit < len(unit_sizes):
                    job = [next_unit, unit_sizes[next_unit]]
                    read_assignments[slot] = job
                    next_unit += 1
                    duration += open_cost_read
                if job is None:
                    if bytes_read >= total:
                        continue  # nothing left to read: retire this worker
                    schedule(t + cfg.epsilon, stage, slot)
                    continue
                free = sender_cap - sender_pool
                amount = min(cfg.chunk_bytes, job[1], free)
                if amount <= 0.0:
                    schedule(t + cfg.epsilon, stage, slot)
                    continue
                job[1] -= amount
                if job[1] <= 0.0:
                    read_assignments[slot] = None
                sender_pool += amount
                bytes_read += amount
                counters[_READ] += amount
                duration += amount / rates[_READ]

            elif stage == _NETWORK:
                amount = min(cfg.chunk_bytes, sender_pool, receiver_cap - receiver_pool)
                if amount <= 0.0:
                    if bytes_sent >= total:
                        continue
                    schedule(t + cfg.epsilon, stage, slot)
                    continue
                sender_pool -= amount
                receiver_pool += amount
                bytes_sent += amount
                counters[_NETWORK] += amount
                duration = amount / rates[_NETWORK]

            else:  # _WRITE
                amount = min(cfg.chunk_bytes, receiver_pool)
                if amount <= 0.0:
                    if bytes_written >= total:
                        continue
                    schedule(t + cfg.epsilon, stage, slot)
                    continue
                receiver_pool -= amount
                before = bytes_written
                bytes_written += amount
                counters[_WRITE] += amount
                duration = amount / rates[_WRITE]
                # Files complete in read order: charge write open costs and
                # stamp completion for every file boundary crossed.
                while written_files < len(files) and bytes_written >= cumulative[written_files] - 0.5:
                    file_done[written_files] = t + duration
                    duration += open_cost_write
                    written_files += 1
                if bytes_written >= total - 0.5:
                    completed = True
                    now = t + duration
                    break

            schedule(t + duration + 1e-6, stage, slot)

        if not completed and bytes_written < total - 0.5 and now < cfg.max_seconds and not queue:
            raise TransferError(
                "file-level engine stalled: event queue drained before completion"
            )

        # Final interval sample.
        interval = max(now - interval_start, 1e-9)
        metrics.record(
            max(now, interval_start + 1e-9),
            throughputs=tuple(bytes_per_sec_to_mbps(c / interval) for c in counters),
            threads=threads,
            sender_usage=sender_pool,
            receiver_usage=receiver_pool,
            bytes_written_total=bytes_written,
        )

        return FileLevelResult(
            completed=completed,
            completion_time=now,
            total_bytes=total,
            metrics=metrics,
            file_completion_times=file_done,
            file_sizes=sizes,
        )
