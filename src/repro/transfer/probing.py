"""Throughput probing: what the optimizer *sees* each interval.

The testbed reports exact byte flows; a real tool measures throughput by
sampling counters, which adds error.  :class:`ThroughputProbe` injects
optional multiplicative Gaussian measurement noise and exposes an EWMA for
controllers that want smoothed readings (Marlin's gradient estimates are
noticeably affected by this noise — part of its instability story).
"""

from __future__ import annotations

import numpy as np

from repro.utils.config import require_in_range, require_non_negative
from repro.utils.rng import as_generator


class ThroughputProbe:
    """Applies measurement noise and optional smoothing to stage throughputs."""

    def __init__(
        self,
        noise_sigma: float = 0.0,
        smoothing: float = 0.0,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        require_non_negative(noise_sigma, "noise_sigma")
        require_in_range(smoothing, 0.0, 0.99, "smoothing")
        self.noise_sigma = noise_sigma
        self.smoothing = smoothing
        self._rng = as_generator(rng)
        self._ewma: np.ndarray | None = None

    def observe(self, throughputs: tuple[float, float, float]) -> tuple[float, float, float]:
        """Return the measured (noisy, optionally smoothed) throughputs."""
        values = np.asarray(throughputs, dtype=float)
        if self.noise_sigma > 0.0:
            factors = 1.0 + self._rng.normal(0.0, self.noise_sigma, size=3)
            values = values * np.clip(factors, 0.5, 1.5)
        if self.smoothing > 0.0:
            if self._ewma is None:
                self._ewma = values.copy()
            else:
                self._ewma = self.smoothing * self._ewma + (1.0 - self.smoothing) * values
            values = self._ewma
        return (float(values[0]), float(values[1]), float(values[2]))

    def reset(self) -> None:
        """Drop the EWMA state."""
        self._ewma = None
