"""``repro.adapt`` — safe online adaptation for production transfers.

The paper deploys a frozen offline-trained policy (§V-C found online
fine-tuning not worth its cost); this package covers the gap that leaves
open in production: WAN conditions drift and a frozen policy silently
degrades.  The loop is detect → shadow-evaluate → correct → roll back:

* :mod:`~repro.adapt.detectors` — seeded Page–Hinkley + windowed CUSUM
  drift detectors over probed goodput, stall incidence and retry rate;
* :mod:`~repro.adapt.envelope` — hard safety rails on every adaptive move;
* :mod:`~repro.adapt.corrector` — bounded residual thread deltas on top of
  the frozen policy (deterministic hill-climb, no RNG);
* :mod:`~repro.adapt.shadow` — candidate-vs-incumbent scoring on recent
  probes before any promotion (§V-C's gate, online);
* :mod:`~repro.adapt.guard` — the audited NOMINAL → DRIFT_SUSPECTED →
  CORRECTING → ROLLED_BACK state machine;
* :mod:`~repro.adapt.controller` — :class:`AdaptiveController`, wiring it
  all around the proven :class:`~repro.transfer.guarded.GuardedController`.

See DESIGN.md §16 for the state machine, safety envelope and rollback
invariants, and ``automdt soak --drift`` for the deterministic soak that
enforces them.
"""

from repro.adapt.controller import AdaptConfig, AdaptiveController
from repro.adapt.corrector import ResidualCorrector
from repro.adapt.detectors import DriftMonitor, DriftMonitorConfig, PageHinkley, WindowedCusum
from repro.adapt.envelope import SafetyEnvelope
from repro.adapt.guard import (
    CORRECTING,
    DRIFT_SUSPECTED,
    LEGAL_TRANSITIONS,
    NOMINAL,
    ROLLED_BACK,
    GuardTransition,
    RollbackGuard,
    transitions_legal,
)
from repro.adapt.shadow import ShadowEvaluator, ShadowVerdict, ThroughputModel

__all__ = [
    "AdaptConfig",
    "AdaptiveController",
    "ResidualCorrector",
    "DriftMonitor",
    "DriftMonitorConfig",
    "PageHinkley",
    "WindowedCusum",
    "SafetyEnvelope",
    "RollbackGuard",
    "GuardTransition",
    "NOMINAL",
    "DRIFT_SUSPECTED",
    "CORRECTING",
    "ROLLED_BACK",
    "LEGAL_TRANSITIONS",
    "transitions_legal",
    "ShadowEvaluator",
    "ShadowVerdict",
    "ThroughputModel",
]
