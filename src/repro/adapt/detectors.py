"""Seeded, deterministic drift detectors for production transfers.

Two classic sequential change detectors, both pure functions of the update
sequence (no wall clock, no RNG of their own — determinism comes for free):

* :class:`PageHinkley` — one-sided Page–Hinkley test on the running-mean
  deviation.  After a warmup that freezes a reference mean, each sample's
  deviation (in the watched direction) accumulates into ``m_t``; drift fires
  when the accumulated deviation exceeds ``threshold`` relative to its own
  running minimum.  Robust to slow ramps — the statistic integrates small
  per-sample deltas.
* :class:`WindowedCusum` — two-sided CUSUM against a frozen reference mean
  and standard deviation estimated over the first ``reference_window``
  samples; fires when the normalised cumulative sum ``g+``/``g−`` exceeds
  ``threshold``.  A ``min_std`` floor keeps 0/1 indicator signals (stall
  incidence, retry occurrence) usable.

:class:`DriftMonitor` composes three channels the way
:class:`repro.adapt.controller.AdaptiveController` consumes supervisor
observations: probed total throughput (downward PH), stall incidence
(upward CUSUM) and retry occurrence (upward CUSUM).  ``rebaseline()``
re-arms everything against the *current* regime — called after a correction
is promoted or a rollback completes, so the detectors hunt for the next
drift rather than re-firing on the old one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.utils.config import require_positive

__all__ = ["PageHinkley", "WindowedCusum", "DriftMonitor", "DriftMonitorConfig"]


class PageHinkley:
    """One-sided Page–Hinkley change detector.

    ``direction='down'`` (default) watches for the signal *dropping* below
    its warmup reference — the shape of a bandwidth ramp eating probed
    throughput.  ``direction='up'`` watches for increases.

    ``threshold`` and ``delta`` are expressed as fractions of the warmup
    reference mean (the signal is normalised by it), so one configuration
    works across testbeds whose absolute throughput differs by orders of
    magnitude.
    """

    def __init__(
        self,
        *,
        threshold: float = 1.5,
        delta: float = 0.02,
        warmup: int = 8,
        direction: str = "down",
    ) -> None:
        require_positive(threshold, "threshold")
        require_positive(warmup, "warmup")
        if delta < 0.0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        if direction not in ("down", "up"):
            raise ValueError(f"direction must be 'down' or 'up', got {direction!r}")
        self.threshold = float(threshold)
        self.delta = float(delta)
        self.warmup = int(warmup)
        self.direction = direction
        self.reset()

    def reset(self) -> None:
        """Forget everything, including the warmup reference."""
        self._count = 0
        self._warmup_sum = 0.0
        self._reference = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0
        self.fired = False
        self.fired_at_sample: int | None = None

    def update(self, value: float) -> bool:
        """Feed one sample; return True while the detector is in alarm."""
        if not math.isfinite(value):
            return self.fired  # ignore junk samples (probe dropouts)
        self._count += 1
        if self._count <= self.warmup:
            self._warmup_sum += value
            if self._count == self.warmup:
                self._reference = self._warmup_sum / self.warmup
            return False
        scale = abs(self._reference) if self._reference != 0.0 else 1.0
        deviation = (value - self._reference) / scale
        if self.direction == "down":
            deviation = -deviation
        # Accumulate deviation in the watched direction, minus the drift
        # allowance; fire when it rises `threshold` above its running min.
        self._cumulative += deviation - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        if self._cumulative - self._minimum > self.threshold and not self.fired:
            self.fired = True
            self.fired_at_sample = self._count
        return self.fired


class WindowedCusum:
    """Two-sided CUSUM against a frozen reference window.

    The first ``reference_window`` samples freeze a reference mean/std;
    subsequent samples update ``g+ = max(0, g+ + z - drift)`` and
    ``g- = max(0, g- - z - drift)`` with ``z`` the standardised deviation.
    Fires when the watched side exceeds ``threshold``.
    """

    def __init__(
        self,
        *,
        threshold: float = 5.0,
        drift: float = 0.5,
        reference_window: int = 8,
        min_std: float = 0.05,
        direction: str = "both",
    ) -> None:
        require_positive(threshold, "threshold")
        require_positive(reference_window, "reference_window")
        require_positive(min_std, "min_std")
        if drift < 0.0:
            raise ValueError(f"drift must be non-negative, got {drift}")
        if direction not in ("up", "down", "both"):
            raise ValueError(f"direction must be 'up', 'down' or 'both', got {direction!r}")
        self.threshold = float(threshold)
        self.drift = float(drift)
        self.reference_window = int(reference_window)
        self.min_std = float(min_std)
        self.direction = direction
        self.reset()

    def reset(self) -> None:
        """Forget everything, including the frozen reference."""
        self._count = 0
        self._window: list[float] = []
        self._mean = 0.0
        self._std = self.min_std
        self._g_pos = 0.0
        self._g_neg = 0.0
        self.fired = False
        self.fired_at_sample: int | None = None

    def update(self, value: float) -> bool:
        """Feed one sample; return True while the detector is in alarm."""
        if not math.isfinite(value):
            return self.fired
        self._count += 1
        if self._count <= self.reference_window:
            self._window.append(float(value))
            if self._count == self.reference_window:
                mean = sum(self._window) / len(self._window)
                var = sum((v - mean) ** 2 for v in self._window) / len(self._window)
                self._mean = mean
                self._std = max(math.sqrt(var), self.min_std)
                self._window = []
            return False
        z = (value - self._mean) / self._std
        self._g_pos = max(0.0, self._g_pos + z - self.drift)
        self._g_neg = max(0.0, self._g_neg - z - self.drift)
        alarm = False
        if self.direction in ("up", "both") and self._g_pos > self.threshold:
            alarm = True
        if self.direction in ("down", "both") and self._g_neg > self.threshold:
            alarm = True
        if alarm and not self.fired:
            self.fired = True
            self.fired_at_sample = self._count
        return self.fired


@dataclass(frozen=True)
class DriftMonitorConfig:
    """Knobs for the three composed drift channels."""

    throughput_threshold: float = 1.5
    # The per-sample drift allowance must sit at or above the relative
    # throughput noise floor (~5% in the emulator), or stationary random
    # walks false-fire; real drift deviations are ~10x larger.
    throughput_delta: float = 0.05
    warmup: int = 8
    stall_threshold: float = 6.0
    stall_drift: float = 0.5
    retry_threshold: float = 4.0
    retry_drift: float = 0.5

    def __post_init__(self) -> None:
        require_positive(self.throughput_threshold, "throughput_threshold")
        require_positive(self.warmup, "warmup")
        require_positive(self.stall_threshold, "stall_threshold")
        require_positive(self.retry_threshold, "retry_threshold")


@dataclass
class DriftSignal:
    """One drift verdict with its contributing channels."""

    drifted: bool
    channels: tuple[str, ...] = field(default_factory=tuple)


class DriftMonitor:
    """Composite monitor over throughput, stall incidence and retry rate."""

    def __init__(self, config: DriftMonitorConfig | None = None) -> None:
        self.config = config or DriftMonitorConfig()
        self.detections = 0
        self.rebaselines = 0
        self._was_drifted = False
        self._build()

    def _build(self) -> None:
        c = self.config
        self.throughput = PageHinkley(
            threshold=c.throughput_threshold,
            delta=c.throughput_delta,
            warmup=c.warmup,
            direction="down",
        )
        self.stalls = WindowedCusum(
            threshold=c.stall_threshold,
            drift=c.stall_drift,
            reference_window=c.warmup,
            direction="up",
        )
        self.retries = WindowedCusum(
            threshold=c.retry_threshold,
            drift=c.retry_drift,
            reference_window=c.warmup,
            direction="up",
        )

    def update(
        self, *, throughput: float, stalled: bool, retried: bool
    ) -> DriftSignal:
        """Feed one supervisor interval; return the composite verdict."""
        channels: list[str] = []
        if self.throughput.update(throughput):
            channels.append("throughput")
        if self.stalls.update(1.0 if stalled else 0.0):
            channels.append("stalls")
        if self.retries.update(1.0 if retried else 0.0):
            channels.append("retries")
        drifted = bool(channels)
        if drifted and not self._was_drifted:
            self.detections += 1  # rising edge: one detection per alarm episode
        self._was_drifted = drifted
        return DriftSignal(drifted=drifted, channels=tuple(channels))

    def rebaseline(self) -> None:
        """Re-arm every channel against the current regime."""
        self._build()
        self._was_drifted = False
        self.rebaselines += 1
