"""Safety envelope clamping every adaptive concurrency move.

The corrector (:class:`repro.adapt.corrector.ResidualCorrector`) proposes
residual thread deltas on top of the frozen policy; the envelope is the
hard boundary those proposals can never cross:

* **per-interval delta cap** — no stage's thread count may move by more
  than ``max_delta_per_interval`` between consecutive proposals (WAN
  transfers punish thrash: see the over-concurrency degradation knee);
* **hard floors and ceilings** — every stage stays in
  ``[min_threads, max_threads]``, with the ceiling taken from the testbed's
  configured limits via :meth:`SafetyEnvelope.from_testbed_config`.

Every clamp is counted per stage so incident reports can show how often the
corrector leaned on the rails.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.config import require_positive

__all__ = ["SafetyEnvelope"]

_STAGES = ("read", "network", "write")


@dataclass(frozen=True)
class SafetyEnvelope:
    """Hard limits on adaptive concurrency moves."""

    max_threads: tuple[int, int, int] = (30, 30, 30)
    min_threads: tuple[int, int, int] = (1, 1, 1)
    max_delta_per_interval: int = 2

    def __post_init__(self) -> None:
        require_positive(self.max_delta_per_interval, "max_delta_per_interval")
        for lo, hi in zip(self.min_threads, self.max_threads):
            if lo < 1:
                raise ValueError(f"min_threads must be >= 1, got {self.min_threads}")
            if hi < lo:
                raise ValueError(
                    f"max_threads {self.max_threads} below min_threads {self.min_threads}"
                )

    @classmethod
    def from_testbed_config(
        cls, testbed_config, *, max_delta_per_interval: int = 2
    ) -> SafetyEnvelope:
        """Derive ceilings from a :class:`~repro.emulator.testbed.TestbedConfig`."""
        limit = int(getattr(testbed_config, "max_threads", 30))
        return cls(
            max_threads=(limit, limit, limit),
            max_delta_per_interval=max_delta_per_interval,
        )

    def clamp(
        self,
        proposal: tuple[int, int, int],
        previous: tuple[int, int, int] | None,
        counts: dict[str, int] | None = None,
    ) -> tuple[int, int, int]:
        """Clamp ``proposal`` against the rails and the last applied triple.

        ``counts`` (stage name → clamp count) is incremented in place for
        each stage whose proposal had to be altered.
        """
        clamped = []
        for i, stage in enumerate(_STAGES):
            value = int(proposal[i])
            if previous is not None:
                lo_step = previous[i] - self.max_delta_per_interval
                hi_step = previous[i] + self.max_delta_per_interval
                value = min(max(value, lo_step), hi_step)
            value = min(max(value, self.min_threads[i]), self.max_threads[i])
            if counts is not None and value != int(proposal[i]):
                counts[stage] = counts.get(stage, 0) + 1
            clamped.append(value)
        return (clamped[0], clamped[1], clamped[2])
