"""The adaptive controller: detect → shadow-evaluate → correct → roll back.

:class:`AdaptiveController` wraps a :class:`~repro.transfer.guarded.GuardedController`
(the proven production stack) and layers the safe-adaptation loop on top:

1. every supervisor interval feeds the :class:`~repro.adapt.detectors.DriftMonitor`
   (probed goodput, stall incidence, retry occurrence) and the shadow
   evaluator's probe window;
2. a drift alarm moves the :class:`~repro.adapt.guard.RollbackGuard` to
   DRIFT_SUSPECTED, where every ``shadow_every`` intervals the
   :class:`~repro.adapt.corrector.ResidualCorrector` searches for a bounded
   residual and the :class:`~repro.adapt.shadow.ShadowEvaluator` compares it
   against the frozen proposal — promotion to CORRECTING only on a clear win;
3. while CORRECTING the residual is applied under the
   :class:`~repro.adapt.envelope.SafetyEnvelope` (delta cap + hard rails) and
   regression is watched: consecutive stalls or a goodput EMA collapse below
   the pre-correction baseline trigger rollback;
4. ROLLED_BACK zeroes the residual — proposals come verbatim from the
   guarded controller — and recovery to NOMINAL requires
   ``recovery_intervals`` of clean progress, after which the detectors are
   re-baselined against the healed regime.

With ``enabled=False`` the controller is a byte-for-byte passthrough to the
guarded controller: no telemetry, no clamping, no state — the acceptance
criterion that existing fingerprints stay identical when adaptation is off.

``reset()`` (called by the engine at the start of every attempt, including
supervised retries) resets the *wrapped* controller but deliberately
preserves the adaptation state: detectors, guard state and armed residual
survive retries, and the reset count minus one is the retry-occurrence
drift signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs as telemetry
from repro.adapt.corrector import ResidualCorrector
from repro.adapt.detectors import DriftMonitor, DriftMonitorConfig
from repro.adapt.envelope import SafetyEnvelope
from repro.adapt.guard import CORRECTING, DRIFT_SUSPECTED, NOMINAL, ROLLED_BACK, RollbackGuard
from repro.adapt.shadow import ShadowEvaluator
from repro.transfer.engine import Controller, Observation
from repro.transfer.guarded import GuardedController
from repro.utils.config import require_positive

__all__ = ["AdaptConfig", "AdaptiveController"]

_EPS = 1e-6


@dataclass(frozen=True)
class AdaptConfig:
    """Knobs for the whole adaptation loop (one frozen bag, fleet-shareable)."""

    enabled: bool = True
    monitor: DriftMonitorConfig = field(default_factory=DriftMonitorConfig)
    envelope: SafetyEnvelope = field(default_factory=SafetyEnvelope)
    max_residual: int = 8
    shadow_every: int = 4  # intervals between shadow evaluations while suspected
    shadow_window: int = 16
    shadow_min_probes: int = 6
    shadow_margin: float = 0.05
    suspect_patience: int = 16  # suspected intervals before clearing back to NOMINAL
    correction_hold_intervals: int = 12  # clean CORRECTING intervals before re-baselining
    rollback_stall_intervals: int = 3  # consecutive stalls that trigger rollback
    regression_tolerance: float = 0.3  # EMA fraction below baseline that counts as regression
    regression_intervals: int = 4  # consecutive regressed intervals before rollback
    recovery_intervals: int = 6  # clean ROLLED_BACK intervals before recovery
    ema_alpha: float = 0.3

    def __post_init__(self) -> None:
        require_positive(self.shadow_every, "shadow_every")
        require_positive(self.suspect_patience, "suspect_patience")
        require_positive(self.correction_hold_intervals, "correction_hold_intervals")
        require_positive(self.rollback_stall_intervals, "rollback_stall_intervals")
        require_positive(self.regression_intervals, "regression_intervals")
        require_positive(self.recovery_intervals, "recovery_intervals")
        require_positive(self.max_residual, "max_residual")
        if not 0.0 < self.regression_tolerance < 1.0:
            raise ValueError(
                f"regression_tolerance must be in (0, 1), got {self.regression_tolerance}"
            )
        if not 0.0 < self.ema_alpha <= 1.0:
            raise ValueError(f"ema_alpha must be in (0, 1], got {self.ema_alpha}")


class AdaptiveController:
    """Safe online adaptation wrapped around a guarded controller."""

    def __init__(
        self,
        guarded: Controller,
        config: AdaptConfig | None = None,
        *,
        name: str = "",
    ) -> None:
        self.config = config or AdaptConfig()
        if not isinstance(guarded, GuardedController):
            # The rollback target must be the proven guarded stack; wrap
            # bare controllers so demotion always lands somewhere safe.
            guarded = GuardedController(guarded)
        self.guarded = guarded
        self.name = name
        self.monitor = DriftMonitor(self.config.monitor)
        self.guard = RollbackGuard(name=name)
        self.corrector = ResidualCorrector(max_residual=self.config.max_residual)
        self.shadow = ShadowEvaluator(
            window=self.config.shadow_window,
            min_probes=self.config.shadow_min_probes,
            margin=self.config.shadow_margin,
        )
        self.events: list[tuple[float, str]] = []
        self.clamp_counts: dict[str, int] = {}
        self.resets = 0
        self._last_bytes: float | None = None
        self._last_proposal: tuple[int, int, int] | None = None
        self._pending_retry = False
        self._ema: float | None = None
        self._entry_ema = 0.0
        self._suspect_intervals = 0
        self._correct_intervals = 0
        self._stall_streak = 0
        self._regress_streak = 0
        self._clean_streak = 0

    # ------------------------------------------------------------- telemetry
    def _observe_interval(self, obs: Observation) -> tuple[float, bool, bool]:
        """Derive (goodput, stalled, retried) drift signals from one interval."""
        goodput = float(obs.throughputs[2])
        stalled = (
            self._last_bytes is not None
            and obs.bytes_written_total <= self._last_bytes + _EPS
        )
        self._last_bytes = obs.bytes_written_total
        retried = self._pending_retry
        self._pending_retry = False
        if self._ema is None:
            self._ema = goodput
        else:
            a = self.config.ema_alpha
            self._ema = a * goodput + (1.0 - a) * self._ema
        return goodput, stalled, retried

    def _event(self, t: float, what: str) -> None:
        self.events.append((t, what))
        telemetry.event(f"adapt/{what.split(':', 1)[0]}", t=t, detail=what)

    # ---------------------------------------------------------------- protocol
    def propose(self, observation: Observation) -> tuple[int, int, int]:
        """Controller protocol: guarded proposal plus the vetted residual."""
        base = self.guarded.propose(observation)
        if not self.config.enabled:
            return base

        goodput, stalled, retried = self._observe_interval(observation)
        self.shadow.record(observation.threads, observation.throughputs)
        signal = self.monitor.update(throughput=goodput, stalled=stalled, retried=retried)
        t = observation.elapsed
        state = self.guard.state

        if state == NOMINAL:
            if signal.drifted:
                reason = "drift:" + "+".join(signal.channels)
                self.guard.suspect(t, reason)
                self._event(t, f"suspected:{reason}")
                self._suspect_intervals = 0
        elif state == DRIFT_SUSPECTED:
            self._suspect_intervals += 1
            if self._suspect_intervals % self.config.shadow_every == 0:
                self._try_promotion(t, base)
            if (
                self.guard.state == DRIFT_SUSPECTED
                and self._suspect_intervals >= self.config.suspect_patience
            ):
                self.guard.clear(t, "suspicion_expired")
                self.monitor.rebaseline()
                self._event(t, "cleared:suspicion_expired")
        elif state == CORRECTING:
            self._watch_correction(t, stalled)
        elif state == ROLLED_BACK:
            if stalled:
                self._clean_streak = 0
            else:
                self._clean_streak += 1
                if self._clean_streak >= self.config.recovery_intervals:
                    self.guard.recover(t, "guarded_recovered")
                    self.monitor.rebaseline()
                    self.shadow.reset()
                    self._event(t, "recovered")

        if self.corrector.armed:
            proposal = self.envelope_clamp(self.corrector.apply(base))
        else:
            proposal = base
        self._last_proposal = proposal
        return proposal

    def envelope_clamp(self, proposal: tuple[int, int, int]) -> tuple[int, int, int]:
        """Apply the safety envelope against the last returned proposal."""
        return self.config.envelope.clamp(proposal, self._last_proposal, self.clamp_counts)

    # -------------------------------------------------------------- promotion
    def _try_promotion(self, t: float, base: tuple[int, int, int]) -> None:
        model = self.shadow.fit()
        if model is None:
            return
        residual, base_score, best_score = self.corrector.search(
            self.shadow, model, base, self.config.envelope
        )
        if residual == (0, 0, 0):
            return
        candidate = (base[0] + residual[0], base[1] + residual[1], base[2] + residual[2])
        verdict = self.shadow.evaluate(base, candidate)
        if not verdict.promoted:
            self._event(t, f"shadow_rejected:{verdict.reason}")
            return
        self.corrector.arm(residual)
        self._entry_ema = self._ema or 0.0
        self._correct_intervals = 0
        self._stall_streak = 0
        self._regress_streak = 0
        self.guard.promote(
            t, f"shadow_promoted:{base_score:.1f}->{best_score:.1f}"
        )
        self._event(t, f"promoted:residual={residual}")

    # -------------------------------------------------------------- regression
    def _watch_correction(self, t: float, stalled: bool) -> None:
        self._correct_intervals += 1
        self._stall_streak = self._stall_streak + 1 if stalled else 0
        ema = self._ema or 0.0
        regressed = (
            self._entry_ema > _EPS
            and ema < self._entry_ema * (1.0 - self.config.regression_tolerance)
        )
        self._regress_streak = self._regress_streak + 1 if regressed else 0
        if self._stall_streak >= self.config.rollback_stall_intervals:
            self._rollback(t, f"stalled_{self._stall_streak}_intervals")
        elif self._regress_streak >= self.config.regression_intervals:
            self._rollback(t, f"ema_regression:{ema:.1f}<{self._entry_ema:.1f}")
        elif self._correct_intervals >= self.config.correction_hold_intervals:
            # The correction held: keep the residual armed, return to
            # NOMINAL and hunt for the *next* drift from the new regime.
            self.guard.clear(t, "correction_held")
            self.monitor.rebaseline()
            self._event(t, "correction_held")

    def _rollback(self, t: float, reason: str) -> None:
        self.guard.rollback(t, reason)
        self.corrector.disarm()
        self.shadow.reset()
        self._clean_streak = 0
        self._event(t, f"rolled_back:{reason}")
        session = telemetry.active()
        if session is not None:
            session.registry.counter(
                "adapt/rollback_total", label_names=("reason",)
            ).labels(reason=reason.split(":", 1)[0]).inc()

    # ---------------------------------------------------------------- protocol
    def reset(self) -> None:
        """Per-attempt reset: wrapped controllers forget, adaptation persists.

        The engine calls this at the start of every attempt; a reset beyond
        the first means the supervisor retried — that occurrence is the
        retry drift channel's next sample.
        """
        self.guarded.reset()
        if not self.config.enabled:
            return
        self.resets += 1
        if self.resets > 1:
            self._pending_retry = True
        self._last_bytes = None  # bytes accounting restarts with the attempt
        self._last_proposal = None

    # ------------------------------------------------------------------ report
    def report(self) -> dict:
        """JSON-friendly incident report for soak harnesses and fleet rollups."""
        return {
            "state": self.guard.state,
            "transitions": [tr.to_dict() for tr in self.guard.transitions],
            "detections": self.monitor.detections,
            "rebaselines": self.monitor.rebaselines,
            "promotions": self.guard.promotions,
            "rollbacks": self.guard.rollbacks,
            "shadow_evaluations": self.shadow.evaluations,
            "clamps": dict(sorted(self.clamp_counts.items())),
            "resets": self.resets,
            "residual": list(self.corrector.residual),
            "events": [[round(t, 3), what] for t, what in self.events],
        }
