"""Shadow evaluation: score a corrected policy before it touches production.

A correction is promoted only after winning a *shadow* comparison against
the frozen policy on recent probes — no live traffic is risked on an
unproven candidate.  The machinery:

* :class:`ThroughputModel` — a tiny calibrated model fitted over the rolling
  probe window ``(threads, throughputs)``: per stage, the effective
  per-thread rate is the median of ``throughput / threads`` over the window
  (median, not mean — a single stalled probe must not poison the fit), and
  the stage ceiling is the best observed stage throughput times a small
  ``headroom``.  ``predict`` then models a candidate triple as
  ``min(n · tpt_eff, cap)`` per stage — the linear-then-cap shape the
  emulator's stage models and the paper's §IV share.
* :class:`ShadowEvaluator` — keeps the window, fits the model on demand and
  scores triples with the paper's :class:`~repro.core.utility.UtilityFunction`
  (k = 1.02): throughput up, concurrency penalised.  Promotion applies the
  §V-C deployment gate (:func:`repro.core.finetune.promote_if_better`) with
  a safety margin — the candidate must *clearly* beat the incumbent.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.finetune import promote_if_better
from repro.core.utility import UtilityFunction
from repro.utils.config import require_positive

__all__ = ["ThroughputModel", "ShadowEvaluator", "ShadowVerdict"]

_EPS = 1e-9


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass(frozen=True)
class ThroughputModel:
    """Per-stage linear-then-cap throughput model fitted from probes."""

    tpt: tuple[float, float, float]
    cap: tuple[float, float, float]

    def predict(self, threads: tuple[int, int, int]) -> tuple[float, float, float]:
        """Modelled per-stage rates ``min(n · tpt, cap)`` for a thread triple.

        Stages are modelled *independently*, not min-coupled: steady-state
        probes show every stage moving at the pipeline bottleneck, so the
        fitted ratios already embed the coupling — min-ing them again would
        make raising the bottleneck stage look pointless.  The stage-wise
        form matches the paper's utility, which also scores stages
        independently.
        """
        return (
            min(max(threads[0], 0) * self.tpt[0], self.cap[0]),
            min(max(threads[1], 0) * self.tpt[1], self.cap[1]),
            min(max(threads[2], 0) * self.tpt[2], self.cap[2]),
        )


class ShadowEvaluator:
    """Rolling probe window + model-based candidate-vs-incumbent scoring."""

    def __init__(
        self,
        *,
        window: int = 16,
        min_probes: int = 6,
        headroom: float = 1.15,
        margin: float = 0.05,
        utility: UtilityFunction | None = None,
    ) -> None:
        require_positive(window, "window")
        require_positive(min_probes, "min_probes")
        require_positive(headroom, "headroom")
        if margin < 0.0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        self.window = int(window)
        self.min_probes = int(min_probes)
        self.headroom = float(headroom)
        self.margin = float(margin)
        self.utility = utility or UtilityFunction()
        self._probes: deque[tuple[tuple[int, int, int], tuple[float, float, float]]] = deque(
            maxlen=self.window
        )
        self.evaluations = 0

    def record(
        self, threads: tuple[int, int, int], throughputs: tuple[float, float, float]
    ) -> None:
        """Add one probe (the supervisor observation of an interval)."""
        self._probes.append((tuple(threads), tuple(throughputs)))

    @property
    def ready(self) -> bool:
        """Whether enough probes exist to fit a trustworthy model."""
        return len(self._probes) >= self.min_probes

    def fit(self) -> ThroughputModel | None:
        """Fit the per-stage model over the current window (None if not ready)."""
        if not self.ready:
            return None
        tpt: list[float] = []
        cap: list[float] = []
        for stage in range(3):
            ratios = [
                tp[stage] / max(n[stage], 1)
                for n, tp in self._probes
                if tp[stage] > _EPS
            ]
            best = max((tp[stage] for _, tp in self._probes), default=0.0)
            if not ratios or best <= _EPS:
                return None  # a silent stage: the model would divide by faith
            tpt.append(_median(ratios))
            cap.append(best * self.headroom)
        return ThroughputModel(tpt=(tpt[0], tpt[1], tpt[2]), cap=(cap[0], cap[1], cap[2]))

    def score(self, model: ThroughputModel, threads: tuple[int, int, int]) -> float:
        """Modelled utility of a thread triple (paper's U, k = 1.02)."""
        return self.utility(model.predict(threads), threads)

    def evaluate(
        self,
        incumbent: tuple[int, int, int],
        candidate: tuple[int, int, int],
    ) -> ShadowVerdict:
        """Shadow-compare a candidate triple against the incumbent."""
        self.evaluations += 1
        model = self.fit()
        if model is None:
            return ShadowVerdict(False, 0.0, 0.0, "model_not_ready")
        incumbent_score = self.score(model, incumbent)
        candidate_score = self.score(model, candidate)
        promoted = promote_if_better(incumbent_score, candidate_score, margin=self.margin)
        reason = "promoted" if promoted else "rejected"
        return ShadowVerdict(promoted, incumbent_score, candidate_score, reason)

    def reset(self) -> None:
        """Drop the probe window (regime change: old probes describe old physics)."""
        self._probes.clear()


@dataclass(frozen=True)
class ShadowVerdict:
    """Outcome of one shadow evaluation."""

    promoted: bool
    incumbent_score: float
    candidate_score: float
    reason: str
