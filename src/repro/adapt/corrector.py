"""Bounded residual corrector: small thread-count deltas on a frozen policy.

The hybrid-RL literature this issue draws on (offline policy + online
correction) keeps the online part deliberately tiny: the frozen policy
stays the driver and the corrector only adds a *residual* — a per-stage
thread delta — bounded by the :class:`~repro.adapt.envelope.SafetyEnvelope`
and vetted by shadow evaluation before it is ever applied.

The search is a deterministic coordinate hill-climb over the residual cube
``[-max_residual, +max_residual]³``, scored against the shadow model's
utility (:meth:`repro.adapt.shadow.ShadowEvaluator.score`).  No RNG: the
same window and base triple always produce the same residual, which is what
makes same-seed soak fingerprints reproducible.
"""

from __future__ import annotations

from repro.utils.config import require_positive

__all__ = ["ResidualCorrector"]


class ResidualCorrector:
    """Deterministic bounded residual search over thread triples."""

    def __init__(self, *, max_residual: int = 8, max_rounds: int = 12) -> None:
        require_positive(max_residual, "max_residual")
        require_positive(max_rounds, "max_rounds")
        self.max_residual = int(max_residual)
        self.max_rounds = int(max_rounds)
        self.residual: tuple[int, int, int] = (0, 0, 0)
        self.armed = False

    def search(
        self,
        evaluator,
        model,
        base: tuple[int, int, int],
        envelope,
    ) -> tuple[tuple[int, int, int], float, float]:
        """Best residual for ``base`` under ``model``; returns (residual, base_score, best_score).

        Coordinate hill-climb: repeatedly try ±1 on each stage's residual,
        keep any strictly-better move, stop when a full round improves
        nothing.  Candidates outside the envelope's hard rails are skipped
        (the per-interval delta cap is enforced later at apply time —
        promotion walks there over a few intervals).
        """
        base_score = evaluator.score(model, base)
        best = (0, 0, 0)
        best_score = base_score

        def triple_for(residual: tuple[int, int, int]) -> tuple[int, int, int] | None:
            triple = tuple(base[i] + residual[i] for i in range(3))
            for i in range(3):
                if not envelope.min_threads[i] <= triple[i] <= envelope.max_threads[i]:
                    return None
            return (triple[0], triple[1], triple[2])

        for _ in range(self.max_rounds):
            improved = False
            for stage in range(3):
                for step in (1, -1):
                    candidate = list(best)
                    candidate[stage] += step
                    if abs(candidate[stage]) > self.max_residual:
                        continue
                    residual = (candidate[0], candidate[1], candidate[2])
                    triple = triple_for(residual)
                    if triple is None:
                        continue
                    score = evaluator.score(model, triple)
                    if score > best_score:
                        best, best_score, improved = residual, score, True
            if not improved:
                break
        return best, base_score, best_score

    def arm(self, residual: tuple[int, int, int]) -> None:
        """Start applying ``residual`` (after shadow promotion)."""
        self.residual = (int(residual[0]), int(residual[1]), int(residual[2]))
        self.armed = True

    def disarm(self) -> None:
        """Zero the residual immediately (rollback or regime re-baseline)."""
        self.residual = (0, 0, 0)
        self.armed = False

    def apply(self, base: tuple[int, int, int]) -> tuple[int, int, int]:
        """Base proposal plus the armed residual (identity when disarmed)."""
        if not self.armed:
            return base
        return (
            base[0] + self.residual[0],
            base[1] + self.residual[1],
            base[2] + self.residual[2],
        )
