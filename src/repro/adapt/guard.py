"""Audited rollback state machine for online adaptation.

The adaptation loop must never be able to hurt a transfer silently: every
state hop is validated against a legal-transition set (the fleet
:class:`~repro.fleet.breaker.CircuitBreaker` pattern) and appended to an
audit log the soak harness re-validates independently.  States::

    NOMINAL --(drift detector fires)--> DRIFT_SUSPECTED
    DRIFT_SUSPECTED --(shadow eval promotes the corrector)--> CORRECTING
    DRIFT_SUSPECTED --(suspicion expires / shadow rejects)--> NOMINAL
    CORRECTING --(correction holds, regime re-baselined)--> NOMINAL
    CORRECTING --(regression vs pre-correction baseline)--> ROLLED_BACK
    ROLLED_BACK --(guarded control recovers clean progress)--> NOMINAL

Attempting an illegal hop raises
:class:`~repro.utils.errors.GuardTransitionError` immediately — an
adaptation bug fails loudly instead of corrupting a production transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.utils.errors import GuardTransitionError

__all__ = [
    "RollbackGuard",
    "GuardTransition",
    "NOMINAL",
    "DRIFT_SUSPECTED",
    "CORRECTING",
    "ROLLED_BACK",
    "LEGAL_TRANSITIONS",
    "transitions_legal",
]

NOMINAL = "nominal"
DRIFT_SUSPECTED = "drift_suspected"
CORRECTING = "correcting"
ROLLED_BACK = "rolled_back"

#: The complete set of legal state hops.
LEGAL_TRANSITIONS: frozenset[tuple[str, str]] = frozenset(
    {
        (NOMINAL, DRIFT_SUSPECTED),
        (DRIFT_SUSPECTED, CORRECTING),
        (DRIFT_SUSPECTED, NOMINAL),
        (CORRECTING, NOMINAL),
        (CORRECTING, ROLLED_BACK),
        (ROLLED_BACK, NOMINAL),
    }
)

#: Numeric encoding for the guard-state gauge (monitoring-friendly).
STATE_CODES = {NOMINAL: 0, DRIFT_SUSPECTED: 1, CORRECTING: 2, ROLLED_BACK: 3}


@dataclass(frozen=True)
class GuardTransition:
    """One audited state hop."""

    t: float
    src: str
    dst: str
    reason: str

    kind: ClassVar[str] = "guard_transition"

    def to_dict(self) -> dict:
        """JSON-friendly form for soak and fleet reports."""
        return {"t": round(self.t, 3), "src": self.src, "dst": self.dst, "reason": self.reason}


def transitions_legal(transitions) -> bool:
    """Independently validate a transition log (the drift-soak invariant).

    Every hop must be in :data:`LEGAL_TRANSITIONS`, the chain must be
    contiguous (each hop starts where the previous one ended) and must
    start from NOMINAL — the only birth state.
    """
    previous = NOMINAL
    for tr in transitions:
        src, dst = (tr.src, tr.dst) if isinstance(tr, GuardTransition) else (tr[0], tr[1])
        if src != previous or (src, dst) not in LEGAL_TRANSITIONS:
            return False
        previous = dst
    return True


class RollbackGuard:
    """Legal-transition state machine driving one adaptive controller."""

    def __init__(self, *, name: str = "") -> None:
        self.name = name
        self.state = NOMINAL
        self.rollbacks = 0
        self.promotions = 0
        self.transitions: list[GuardTransition] = []

    def _transition(self, dst: str, t: float, reason: str) -> None:
        if (self.state, dst) not in LEGAL_TRANSITIONS:
            raise GuardTransitionError(
                f"rollback guard {self.name!r}: illegal transition {self.state} -> {dst} "
                f"at t={t:.1f} ({reason})"
            )
        self.transitions.append(GuardTransition(t, self.state, dst, reason))
        self.state = dst

    # ------------------------------------------------------------ the driver
    def suspect(self, t: float, reason: str) -> None:
        """Drift detector fired: NOMINAL → DRIFT_SUSPECTED."""
        self._transition(DRIFT_SUSPECTED, t, reason)

    def promote(self, t: float, reason: str) -> None:
        """Shadow evaluation promoted the corrector: → CORRECTING."""
        self._transition(CORRECTING, t, reason)
        self.promotions += 1

    def clear(self, t: float, reason: str) -> None:
        """Suspicion expired or correction held: → NOMINAL."""
        self._transition(NOMINAL, t, reason)

    def rollback(self, t: float, reason: str) -> None:
        """Correction regressed: CORRECTING → ROLLED_BACK."""
        self._transition(ROLLED_BACK, t, reason)
        self.rollbacks += 1

    def recover(self, t: float, reason: str) -> None:
        """Guarded control recovered: ROLLED_BACK → NOMINAL."""
        self._transition(NOMINAL, t, reason)

    @property
    def state_code(self) -> int:
        """Numeric gauge encoding (0 nominal … 3 rolled back)."""
        return STATE_CODES[self.state]
