"""Per-worker telemetry logs and their merge back into the main event log.

A parallel sweep cannot share one ``events.jsonl`` between processes —
interleaved buffered writes would tear each other's lines.  Instead each
pool worker opens its own ``events-worker<k>.jsonl`` in the same run
directory (see :func:`repro.parallel.pool._worker_main`), and after the
sweep the parent folds every worker file back into ``events.jsonl`` with
:func:`merge_worker_logs`.  ``automdt obs summary`` then sees one log, as
it would for a serial run; worker records carry their own ``meta`` lines
(label ``worker<k>``) but the parent's closing meta still lands last, so
the run-level label and self-measured overhead remain the parent's.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import obs
from repro.obs.events import read_events
from repro.obs.session import EVENTS_FILENAME

__all__ = ["merge_worker_logs", "worker_log_name"]

_WORKER_GLOB = "events-worker*.jsonl"


def worker_log_name(worker_id: int) -> str:
    """Event-log filename for pool worker ``worker_id``."""
    return f"events-worker{int(worker_id)}.jsonl"


def merge_worker_logs(run_dir: str | Path, *, remove: bool = True) -> int:
    """Append every worker log's records into the run's ``events.jsonl``.

    Worker files are read with the torn-tail-tolerant reader (a killed
    worker leaves at most one truncated line), merged in worker order, and
    removed by default so a resumed run cannot double-merge.  If the
    parent currently holds an open session on this run directory it is
    flushed first, keeping the merged file's record order close to wall
    order.  Returns the number of records merged.
    """
    run_dir = Path(run_dir)
    sess = obs.active()
    if sess is not None and sess.run_dir is not None and Path(sess.run_dir) == run_dir:
        sess.flush()
    lines: list[str] = []
    merged = 0
    for path in sorted(run_dir.glob(_WORKER_GLOB)):
        records = read_events(path)
        lines.extend(json.dumps(r, separators=(",", ":")) for r in records)
        merged += len(records)
        if remove:
            path.unlink()
    if lines:
        # O_APPEND keeps this safe alongside the parent session's own
        # (flushed) append handle on the same file.
        with (run_dir / EVENTS_FILENAME).open("a") as fh:
            fh.write("\n".join(lines) + "\n")
    return merged
