"""``ParallelMap``: a zero-dependency process-pool execution layer.

The experiment harness fans out embarrassingly parallel work — seed
sweeps, experiment grids, population training — that the rest of the repo
runs strictly serially.  ``ParallelMap`` turns those fan-outs into warm
worker processes with the properties scientific sweeps actually need:

* **determinism** — per-task seeds come from
  :func:`repro.parallel.seeds.derive_seed` (a pure function of root seed
  and task index), and results are reassembled in task order, so a
  parallel run is bit-identical to the serial one regardless of pool
  size, scheduling, or retries;
* **warm worker reuse** — ``workers`` processes are forked once per
  :meth:`map` call and pull task chunks from per-worker pipes until the
  sweep drains (no per-task process spawn, no cold numpy import per
  task);
* **chunked dispatch** — ``chunk_size`` tasks travel per pipe message to
  amortise IPC for very light tasks (heavy experiment tasks keep the
  default of 1 for dynamic load balance);
* **crash isolation** — a worker dying (segfault, ``os._exit``, OOM
  kill) fails only the task it was running; unstarted tasks from its
  chunk are re-queued untouched and a replacement worker is forked;
* **timeout / bounded retry** — a task silent for ``timeout`` seconds
  has its worker terminated; failed attempts (exception, crash, timeout)
  are retried up to ``retries`` times after an exponential backoff with
  seeded jitter (:func:`repro.utils.backoff.backoff_delay` — the same
  arithmetic the transfer supervisor uses);
* **per-worker telemetry** — with ``obs_dir`` set, each worker logs to
  its own ``events-worker<k>.jsonl`` in the run directory;
  :func:`repro.parallel.obslog.merge_worker_logs` folds them back into
  the main ``events.jsonl`` so ``automdt obs summary`` works unchanged
  on parallel runs.

The pool requires the ``fork`` start method (Linux/macOS-with-fork): the
mapped callable is captured at worker creation and inherited by the child,
so closures over experiment callables work without pickling.  Task items
and return values do cross process boundaries and must pickle.  Where
``fork`` is unavailable — or ``workers <= 1`` — the pool degrades to an
in-process serial loop with identical seeding and retry semantics.

IPC deliberately avoids ``multiprocessing.Queue``: its writers share one
cross-process lock taken by a background feeder thread, and a worker dying
mid-``os._exit`` while its feeder holds that lock poisons the queue for
every surviving worker (observed reliably on a 1-CPU box).  Instead, task
chunks travel over a per-worker ``Pipe`` (single writer — the parent, no
feeder thread, nothing shared to poison) and results come back over one
shared ``os.pipe`` where each worker writes a length-prefixed frame with a
single ``os.write`` of at most ``PIPE_BUF`` bytes.  POSIX guarantees such
writes are atomic, so frames from concurrent workers never interleave and
a crashing worker either delivered a whole frame or nothing.  Values whose
pickle exceeds the atomic limit are spilled to a temp file and the frame
carries only the path.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import select
import shutil
import tempfile
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.parallel.seeds import derive_seed
from repro.utils.backoff import backoff_delay
from repro.utils.config import require_non_negative, require_positive

__all__ = ["ParallelMap", "ParallelMapError", "TaskOutcome", "available_workers"]

#: Status strings a task moves through in the parent's bookkeeping.
_QUEUED, _ASSIGNED, _STARTED, _RESOLVED = "queued", "assigned", "started", "resolved"

#: Largest result frame (4-byte length prefix included) written in one
#: ``os.write``.  POSIX guarantees pipe writes of at most ``PIPE_BUF``
#: (>= 512, 4096 on Linux) bytes are atomic; staying under that keeps the
#: shared result pipe corruption-free without any cross-process lock.
_FRAME_MAX = min(4096, getattr(select, "PIPE_BUF", 4096))
_INLINE_MAX = _FRAME_MAX - 4

#: First element of a frame whose payload was spilled to a file.
_SPILL = "__parallelmap_spill__"


def available_workers() -> int:
    """Usable CPU count (affinity-aware where the platform exposes it)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


class ParallelMapError(RuntimeError):
    """Raised by :meth:`ParallelMap.map_values` when any task failed."""

    def __init__(self, failures: list["TaskOutcome"]) -> None:
        self.failures = failures
        detail = "; ".join(
            f"task {o.index}: {o.error}" for o in failures[:5]
        )
        more = f" (+{len(failures) - 5} more)" if len(failures) > 5 else ""
        super().__init__(f"{len(failures)} task(s) failed: {detail}{more}")


@dataclass
class TaskOutcome:
    """Result envelope for one mapped task (in input order)."""

    index: int
    ok: bool
    value: Any = None
    error: str | None = None
    attempts: int = 1
    worker: int = -1
    seed: int | None = None
    duration: float = 0.0


class _TaskState:
    """Parent-side bookkeeping for one task across retries."""

    __slots__ = ("index", "item", "seed", "attempts", "status", "worker", "started_at")

    def __init__(self, index: int, item: Any, seed: int | None) -> None:
        self.index = index
        self.item = item
        self.seed = seed
        self.attempts = 0
        self.status = _QUEUED
        self.worker = -1
        self.started_at = 0.0


def _call(fn: Callable, item: Any, seed: int | None) -> Any:
    return fn(item) if seed is None else fn(item, seed)


def _send_result(result_fd: int, spill_dir: str, msg: tuple) -> None:
    """Write one done-message as a single atomic pipe frame.

    Oversized payloads go to a spill file so the frame itself always fits
    the ``PIPE_BUF`` atomicity limit; unpicklable return values degrade to
    a task failure instead of a lost message.
    """
    try:
        payload = pickle.dumps(msg, pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # unpicklable return value
        wid, index, _ok, _value, _error, duration = msg
        payload = pickle.dumps(
            (wid, index, False, None, f"unpicklable result: {exc}", duration),
            pickle.HIGHEST_PROTOCOL,
        )
    if len(payload) > _INLINE_MAX:
        fd, path = tempfile.mkstemp(dir=spill_dir, suffix=".pkl")
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
        payload = pickle.dumps((_SPILL, path), pickle.HIGHEST_PROTOCOL)
    os.write(result_fd, len(payload).to_bytes(4, "little") + payload)


class _ResultChannel:
    """Parent-side reader of the shared framed result pipe."""

    def __init__(self) -> None:
        self.read_fd, self.write_fd = os.pipe()
        self._buffer = bytearray()

    def drain(self, timeout: float) -> list[tuple]:
        """Messages that arrived within ``timeout`` seconds (maybe none)."""
        readable, _, _ = select.select([self.read_fd], [], [], timeout)
        if readable:
            self._buffer.extend(os.read(self.read_fd, 1 << 16))
        messages = []
        while len(self._buffer) >= 4:
            size = int.from_bytes(self._buffer[:4], "little")
            if len(self._buffer) < 4 + size:
                break  # partial read of an (atomic) frame: more bytes coming
            msg = pickle.loads(bytes(self._buffer[4:4 + size]))
            del self._buffer[:4 + size]
            if isinstance(msg, tuple) and len(msg) == 2 and msg[0] == _SPILL:
                path = Path(msg[1])
                msg = pickle.loads(path.read_bytes())
                path.unlink(missing_ok=True)
            messages.append(msg)
        return messages

    def close(self) -> None:
        os.close(self.read_fd)
        os.close(self.write_fd)


def _worker_main(worker_id: int, fn: Callable, conn, result_fd: int,
                 spill_dir: str, obs_dir) -> None:
    """Warm worker: pull chunks until the ``None`` sentinel arrives.

    Runs in the forked child.  ``fn`` was inherited through fork; only the
    task tuples and return values cross process boundaries.  The parent
    never relies on a message a crashing worker might fail to deliver —
    chunk assignment is recorded parent-side at dispatch time, and a lost
    ``done`` merely re-runs one deterministic task.
    """
    from repro import obs

    if obs_dir is not None:
        from repro.parallel.obslog import worker_log_name

        # Drop the session inherited from the parent *without* flushing it
        # (its buffered records belong to the parent), then open this
        # worker's own log file in the same run directory.
        obs.discard()
        # ingest_on_close=False: the sweep's parent session is the one run
        # the results store should see, not one row per pool worker.
        obs.configure(obs_dir, label=f"worker{worker_id}",
                      events_filename=worker_log_name(worker_id),
                      ingest_on_close=False)
    else:
        obs.discard()
    try:
        while True:
            try:
                chunk = conn.recv()
            except EOFError:  # parent went away
                break
            if chunk is None:
                break
            for index, item, seed in chunk:
                t0 = time.perf_counter()
                try:
                    value = _call(fn, item, seed)
                except BaseException as exc:  # noqa: BLE001 - isolation boundary
                    msg = (worker_id, index, False, None,
                           f"{type(exc).__name__}: {exc}",
                           time.perf_counter() - t0)
                else:
                    msg = (worker_id, index, True, value, None,
                           time.perf_counter() - t0)
                _send_result(result_fd, spill_dir, msg)
    finally:
        if obs_dir is not None:
            obs.shutdown()


class ParallelMap:
    """Map a callable over items across warm worker processes.

    Parameters
    ----------
    fn:
        ``fn(item)`` — or ``fn(item, seed)`` when ``root_seed`` is set.
        Captured at worker fork, so closures are fine; it is never pickled.
    workers:
        Process count; ``None`` / ``0`` means all available cores.
        ``1`` runs serially in-process (the degenerate pool).
    root_seed:
        When not ``None``, task ``i`` receives ``derive_seed(root_seed, i)``
        as its second argument — stable across pool sizes and orderings.
    timeout:
        Per-task wall-clock budget (seconds).  A worker silent past it is
        terminated and the attempt counts as failed.  ``None`` disables.
    retries:
        Extra attempts per task after the first (exceptions, crashes and
        timeouts all consume attempts).
    backoff_base, backoff_factor, backoff_max, jitter:
        Retry delay shape, see :func:`repro.utils.backoff.backoff_delay`.
        Defaults are snappy (50 ms base) because pool retries gate local
        compute, not remote endpoints.
    chunk_size:
        Tasks per dispatch message (1 = best load balance).
    obs_dir:
        Run directory for per-worker event logs (see module docstring).
    """

    def __init__(
        self,
        fn: Callable,
        *,
        workers: int | None = None,
        root_seed: int | None = None,
        timeout: float | None = None,
        retries: int = 0,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max: float = 2.0,
        jitter: float = 0.25,
        chunk_size: int = 1,
        obs_dir: str | Path | None = None,
        poll_interval: float = 0.02,
    ) -> None:
        require_non_negative(retries, "retries")
        require_positive(chunk_size, "chunk_size")
        if timeout is not None:
            require_positive(timeout, "timeout")
        self.fn = fn
        self.workers = available_workers() if not workers else max(1, int(workers))
        self.root_seed = root_seed
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.jitter = jitter
        self.chunk_size = int(chunk_size)
        self.obs_dir = str(obs_dir) if obs_dir is not None else None
        self.poll_interval = poll_interval
        self._rng = np.random.default_rng(
            derive_seed(root_seed, 0) if root_seed is not None else 0
        )
        try:
            self._ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platform
            self._ctx = None

    # ------------------------------------------------------------------ public
    def map(self, items: Sequence[Any]) -> list[TaskOutcome]:
        """Run ``fn`` over ``items``; outcomes come back in input order."""
        items = list(items)
        if not items:
            return []
        tasks = [
            _TaskState(
                i, item,
                derive_seed(self.root_seed, i) if self.root_seed is not None else None,
            )
            for i, item in enumerate(items)
        ]
        # Even a single item goes through the pool when workers > 1: the
        # serial path runs in-process and therefore cannot honour crash
        # isolation or timeouts.
        if self.workers <= 1 or self._ctx is None:
            return self._map_serial(tasks)
        return self._map_parallel(tasks)

    def map_values(self, items: Sequence[Any]) -> list[Any]:
        """Like :meth:`map` but returns bare values; raises if any task failed."""
        outcomes = self.map(items)
        failures = [o for o in outcomes if not o.ok]
        if failures:
            raise ParallelMapError(failures)
        return [o.value for o in outcomes]

    # ------------------------------------------------------------------ serial
    def _map_serial(self, tasks: list[_TaskState]) -> list[TaskOutcome]:
        """In-process fallback: same seeds, same retry policy, no timeouts."""
        outcomes = []
        for task in tasks:
            while True:
                task.attempts += 1
                t0 = time.perf_counter()
                try:
                    value = _call(self.fn, task.item, task.seed)
                except Exception as exc:  # noqa: BLE001 - mirrors worker boundary
                    if task.attempts <= self.retries:
                        time.sleep(self._retry_delay(task.attempts))
                        continue
                    outcomes.append(TaskOutcome(
                        task.index, False, error=f"{type(exc).__name__}: {exc}",
                        attempts=task.attempts, seed=task.seed,
                        duration=time.perf_counter() - t0,
                    ))
                else:
                    outcomes.append(TaskOutcome(
                        task.index, True, value=value, attempts=task.attempts,
                        seed=task.seed, duration=time.perf_counter() - t0,
                    ))
                break
        return outcomes

    def _retry_delay(self, failed_attempts: int) -> float:
        return backoff_delay(
            failed_attempts,
            base=self.backoff_base, factor=self.backoff_factor,
            max_delay=self.backoff_max, jitter=self.jitter, rng=self._rng,
        )

    # ---------------------------------------------------------------- parallel
    def _map_parallel(self, tasks: list[_TaskState]) -> list[TaskOutcome]:
        """Parent-side scheduler: dispatch → drain → police → retry.

        Crash-safety invariant: chunk assignment is recorded *here*, at
        dispatch time, on the parent's side.  Nothing a dying worker fails
        to send can strand a task — on death or timeout the first undone
        task of its chunk is charged an attempt (workers execute chunks in
        order, so that is the task that was running) and the rest go back
        to the ready queue untouched.
        """
        ctx = self._ctx
        results = _ResultChannel()
        spill_dir = tempfile.mkdtemp(prefix="parallelmap-")
        n_workers = min(self.workers, len(tasks))
        outcomes: dict[int, TaskOutcome] = {}
        by_index = {t.index: t for t in tasks}
        #: wid -> {"proc", "conn", "chunk": [undone indices], "t": last activity}
        workers: dict[int, dict] = {}
        ready: list[_TaskState] = list(tasks)
        retry_later: list[tuple[float, _TaskState]] = []  # (ready_at, task)

        def spawn(wid: int) -> None:
            worker_end, parent_end = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_main,
                args=(wid, self.fn, worker_end, results.write_fd,
                      spill_dir, self.obs_dir),
                daemon=True,
            )
            proc.start()
            worker_end.close()  # child holds its own copy after fork
            workers[wid] = {"proc": proc, "conn": parent_end, "chunk": [], "t": 0.0}

        def dispatch(now: float) -> None:
            """Hand one chunk to every idle worker while tasks are ready."""
            for state in workers.values():
                if not ready:
                    return
                if state["chunk"]:
                    continue
                chunk, rest = ready[:self.chunk_size], ready[self.chunk_size:]
                ready[:] = rest
                for t in chunk:
                    t.status = _ASSIGNED
                state["chunk"] = [t.index for t in chunk]
                state["t"] = now
                try:
                    state["conn"].send([(t.index, t.item, t.seed) for t in chunk])
                except (BrokenPipeError, OSError):
                    pass  # worker just died; the liveness check reaps + requeues

        def resolve(task: _TaskState, outcome: TaskOutcome) -> None:
            task.status = _RESOLVED
            outcomes[task.index] = outcome

        def fail_attempt(task: _TaskState, error: str, worker: int, now: float) -> None:
            """One attempt burned (exception / crash / timeout): retry or fail."""
            task.attempts += 1
            if task.attempts <= self.retries:
                retry_later.append((now + self._retry_delay(task.attempts), task))
            else:
                resolve(task, TaskOutcome(
                    task.index, False, error=error, attempts=task.attempts,
                    worker=worker, seed=task.seed,
                ))

        def reap(wid: int, error: str, now: float, *, kill: bool) -> None:
            """Tear down worker ``wid``; requeue the rest of its chunk."""
            state = workers.pop(wid)
            proc = state["proc"]
            if kill and proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
            state["conn"].close()
            undone = [i for i in state["chunk"] if by_index[i].status != _RESOLVED]
            if undone:
                # Workers run chunks in order: the first undone task is the
                # one that was executing when the worker went down.
                fail_attempt(by_index[undone[0]], error, wid, now)
                for i in undone[1:]:
                    by_index[i].status = _QUEUED
                ready[:0] = [by_index[i] for i in undone[1:]]  # never ran
            if len(outcomes) < len(tasks):
                spawn(wid)

        for wid in range(n_workers):
            spawn(wid)
        dispatch(time.perf_counter())

        try:
            while len(outcomes) < len(tasks):
                # 1. Drain finished-task messages.
                for msg in results.drain(self.poll_interval):
                    wid, index, ok, value, error, duration = msg
                    task = by_index[index]
                    state = workers.get(wid)
                    now = time.perf_counter()
                    if state is not None and index in state["chunk"]:
                        state["chunk"].remove(index)
                        state["t"] = now
                    if task.status == _RESOLVED:
                        pass  # late result after a timeout verdict: drop
                    elif ok:
                        task.attempts += 1
                        task.worker = wid
                        resolve(task, TaskOutcome(
                            index, True, value=value, attempts=task.attempts,
                            worker=wid, seed=task.seed, duration=duration,
                        ))
                    else:
                        task.worker = wid
                        fail_attempt(task, error, wid, now)

                now = time.perf_counter()
                # 2. Enforce per-task timeouts (silence while holding work).
                if self.timeout is not None:
                    for wid in list(workers):
                        state = workers[wid]
                        if state["chunk"] and now - state["t"] > self.timeout:
                            reap(wid, f"timeout after {self.timeout:.1f}s", now,
                                 kill=True)
                # 3. Detect crashed workers.
                for wid in list(workers):
                    state = workers[wid]
                    if not state["proc"].is_alive():
                        code = state["proc"].exitcode
                        reap(wid, f"worker died (exitcode {code})", now, kill=False)
                # 4. Release retries whose backoff has elapsed, then refill
                #    idle workers.
                if retry_later:
                    due = [t for ready_at, t in retry_later if ready_at <= now]
                    retry_later = [(r, t) for r, t in retry_later if r > now]
                    for t in due:
                        t.status = _QUEUED
                    ready.extend(due)
                dispatch(now)
        finally:
            for state in workers.values():
                try:
                    state["conn"].send(None)
                except (BrokenPipeError, OSError):  # pragma: no cover - dead worker
                    pass
            deadline = time.monotonic() + 5.0
            for state in workers.values():
                state["proc"].join(timeout=max(0.1, deadline - time.monotonic()))
                if state["proc"].is_alive():  # pragma: no cover - stuck worker
                    state["proc"].terminate()
                    state["proc"].join(timeout=1.0)
                state["conn"].close()
            results.close()
            shutil.rmtree(spill_dir, ignore_errors=True)

        return [outcomes[i] for i in range(len(tasks))]


def parallel_map(
    fn: Callable,
    items: Sequence[Any],
    *,
    workers: int | None = None,
    **kwargs,
) -> list[Any]:
    """One-shot convenience wrapper: values in order, raising on failure."""
    return ParallelMap(fn, workers=workers, **kwargs).map_values(items)
