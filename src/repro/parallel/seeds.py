"""Deterministic per-task seed derivation (SplitMix64).

Parallel sweeps must be bit-identical to their serial equivalents, which
rules out any seeding scheme that depends on *how* tasks are executed.
:func:`derive_seed` is a pure function of ``(root_seed, index)`` — the
same task always gets the same seed no matter the pool size, the dispatch
order, how many times it is retried, or whether it runs in a worker
process at all.

The mixer is SplitMix64 (Steele, Lea & Flood, "Fast Splittable
Pseudorandom Number Generators", OOPSLA 2014): the root seed is advanced
``index + 1`` times by the golden-ratio increment and finalised with the
standard 64-bit avalanche.  Consecutive indices therefore yield
statistically independent 64-bit seeds even for adversarial roots
(0, 1, 2, …), which plain ``root + index`` would not.
"""

from __future__ import annotations

from collections.abc import Sequence

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _mix(z: int) -> int:
    """SplitMix64 finaliser: full-avalanche 64-bit mixing."""
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def derive_seed(root_seed: int, index: int) -> int:
    """The seed for task ``index`` of a sweep rooted at ``root_seed``.

    Pure function of its arguments — stable across pool sizes, task
    orderings and retries.  Returns an unsigned 64-bit integer suitable
    for ``numpy.random.default_rng``.
    """
    if index < 0:
        raise ValueError(f"task index must be >= 0, got {index}")
    state = (int(root_seed) + (int(index) + 1) * _GOLDEN) & _MASK64
    return _mix(state)


def derive_seeds(root_seed: int, count: int) -> tuple[int, ...]:
    """Seeds for tasks ``0..count-1`` (convenience vector form)."""
    return tuple(derive_seed(root_seed, i) for i in range(count))


def spawn_key(root_seed: int, path: Sequence[int]) -> int:
    """Hierarchical derivation: a seed for a nested task coordinate.

    ``spawn_key(root, (i,))`` equals ``derive_seed(root, i)``; deeper
    paths re-root at each level, so a population member ``i`` can derive
    independent sub-streams ``(i, 0)``, ``(i, 1)``, … (training RNG,
    evaluation RNG) without collisions across members.
    """
    seed = int(root_seed)
    for index in path:
        seed = derive_seed(seed, index)
    return seed
