"""Process-parallel execution layer for sweeps, grids and populations.

The repo's wall-clock story (offline PPO instead of ~5 days online) is
multiplied by the harness: seed sweeps, experiment grids and population
training are embarrassingly parallel but ran serially.  This package adds
the missing orchestration with zero dependencies beyond the stdlib:

* :class:`~repro.parallel.pool.ParallelMap` — warm worker processes,
  chunked dispatch, per-task timeout/retry with seeded backoff, crash
  isolation, deterministic reassembly;
* :func:`~repro.parallel.seeds.derive_seed` — SplitMix64 per-task seeds,
  a pure function of ``(root_seed, index)`` so parallel results are
  bit-identical to serial ones;
* :func:`~repro.parallel.obslog.merge_worker_logs` — folds per-worker
  ``events-worker<k>.jsonl`` telemetry back into the run's main log.

Consumers: ``repro.harness.multirun.run_seeded(workers=N)``,
``repro.harness.grid.run_grid`` (the ``automdt sweep`` verb) and
``repro.core.population.train_population``.
"""

from repro.parallel.obslog import merge_worker_logs, worker_log_name
from repro.parallel.pool import (
    ParallelMap,
    ParallelMapError,
    TaskOutcome,
    available_workers,
    parallel_map,
)
from repro.parallel.seeds import derive_seed, derive_seeds, spawn_key

__all__ = [
    "ParallelMap",
    "ParallelMapError",
    "TaskOutcome",
    "available_workers",
    "derive_seed",
    "derive_seeds",
    "merge_worker_logs",
    "parallel_map",
    "spawn_key",
    "worker_log_name",
]
