"""Convergence analysis for training curves and throughput series."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def rolling_mean(values: Sequence[float], window: int) -> np.ndarray:
    """Simple moving average; output length ``len(values) - window + 1``."""
    data = np.asarray(values, dtype=float)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if data.size < window:
        return np.empty(0)
    return np.convolve(data, np.ones(window) / window, mode="valid")


def rolling_convergence_episode(
    rewards: Sequence[float],
    target: float,
    *,
    window: int = 100,
) -> int | None:
    """First episode index where the rolling-mean reward reaches ``target``.

    The sustained-level notion of convergence used for Fig. 4: single
    episode maxima are a noisy max statistic, the rolling mean is not.
    Returns the index of the *last* episode in the qualifying window.
    """
    roll = rolling_mean(rewards, window)
    hits = np.nonzero(roll >= target)[0]
    if len(hits) == 0:
        return None
    return int(hits[0]) + window - 1


def time_to_sustained(
    times: Sequence[float],
    values: Sequence[float],
    threshold: float,
    *,
    sustain: int = 5,
) -> float | None:
    """First time ``values`` reaches ``threshold`` for ``sustain`` samples."""
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    ok = v >= threshold
    run = 0
    for i, flag in enumerate(ok):
        run = run + 1 if flag else 0
        if run >= sustain:
            return float(t[i - sustain + 1])
    return None


def detect_plateau(
    values: Sequence[float],
    *,
    window: int = 100,
    tolerance: float = 0.02,
) -> int | None:
    """Earliest index after which the rolling mean changes < ``tolerance``
    (relative) to the final level.  ``None`` if the curve never settles."""
    roll = rolling_mean(values, window)
    if roll.size == 0:
        return None
    final = roll[-1]
    scale = max(abs(final), 1e-12)
    within = np.abs(roll - final) / scale <= tolerance
    outside = np.nonzero(~within)[0]
    if len(outside) == 0:
        return window - 1
    idx = outside[-1] + 1
    if idx >= roll.size:
        return None
    return int(idx) + window - 1
