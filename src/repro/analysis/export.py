"""Exporters: get experiment data out of this repo for external plotting."""

from __future__ import annotations

import csv
from pathlib import Path

from repro.harness.result import ExperimentResult
from repro.utils.timeseries import TimeSeries


def series_to_csv(series: dict[str, TimeSeries], path: str | Path) -> Path:
    """Write a dict of time series to one CSV (outer-joined on time).

    Columns: ``time`` plus one column per series; rows are the union of all
    sample times, zero-order-hold interpolated per series.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not series:
        path.write_text("time\n")
        return path

    import numpy as np

    all_times = np.unique(np.concatenate([s.times for s in series.values() if len(s)]))
    names = list(series)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time", *names])
        for t in all_times:
            row: list[object] = [t]
            for name in names:
                s = series[name]
                if len(s) == 0 or t < s.times[0]:
                    row.append("")
                    continue
                idx = int(np.searchsorted(s.times, t, side="right")) - 1
                row.append(s.values[max(0, idx)])
            writer.writerow(row)
    return path


def summary_to_markdown(result: ExperimentResult) -> str:
    """Render an experiment summary as a markdown section."""
    lines = [f"## {result.name}", ""]
    if result.summary:
        lines.append("| metric | value |")
        lines.append("|---|---|")
        lines.extend(f"| {k} | {v} |" for k, v in result.summary.items())
        lines.append("")
    lines.extend(result.tables)
    if result.notes:
        lines.append("")
        lines.extend(f"> {note}" for note in result.notes)
    return "\n".join(lines)


def export_experiment(result: ExperimentResult, directory: str | Path) -> list[Path]:
    """Write JSON + CSV + markdown for one experiment; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = [result.save(directory)]
    if result.series:
        paths.append(series_to_csv(result.series, directory / f"{result.name}.csv"))
    md = directory / f"{result.name}.md"
    md.write_text(summary_to_markdown(result))
    paths.append(md)
    return paths
