"""Statistical analysis helpers for experiment results.

* :mod:`repro.analysis.stats` — bootstrap confidence intervals, ratio CIs
  (for "AutoMDT is 1.33× Marlin"-style claims), summary statistics.
* :mod:`repro.analysis.convergence` — rolling means, sustained-threshold
  detection, plateau detection for training curves.
* :mod:`repro.analysis.export` — CSV / markdown exporters so figures can be
  re-plotted outside this repo.
"""

from repro.analysis.convergence import (
    detect_plateau,
    rolling_convergence_episode,
    rolling_mean,
    time_to_sustained,
)
from repro.analysis.export import export_experiment, series_to_csv, summary_to_markdown
from repro.analysis.stats import bootstrap_ci, ratio_ci, summarize

__all__ = [
    "rolling_mean",
    "rolling_convergence_episode",
    "time_to_sustained",
    "detect_plateau",
    "bootstrap_ci",
    "ratio_ci",
    "summarize",
    "series_to_csv",
    "summary_to_markdown",
    "export_experiment",
]
