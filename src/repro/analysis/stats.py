"""Bootstrap statistics for multi-seed experiment results.

The paper's Table I averages runs "repeated several times each day for a
week"; with a handful of seeded replicates, bootstrap confidence intervals
are the honest way to report the measured ratios.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator


@dataclass(frozen=True)
class ConfidenceInterval:
    """Point estimate with a bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.estimate:.3g} [{self.low:.3g}, {self.high:.3g}] @{self.confidence:.0%}"


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    *,
    n_boot: int = 2000,
    confidence: float = 0.95,
    rng: int | np.random.Generator | None = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI of ``statistic`` over ``values``."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("bootstrap over empty sample")
    generator = as_generator(rng)
    estimate = float(statistic(data))
    if data.size == 1:
        return ConfidenceInterval(estimate, estimate, estimate, confidence)
    idx = generator.integers(0, data.size, size=(n_boot, data.size))
    replicates = np.apply_along_axis(statistic, 1, data[idx])
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(replicates, [alpha, 1.0 - alpha])
    return ConfidenceInterval(estimate, float(low), float(high), confidence)


def ratio_ci(
    numerator: Sequence[float],
    denominator: Sequence[float],
    *,
    n_boot: int = 2000,
    confidence: float = 0.95,
    rng: int | np.random.Generator | None = 0,
) -> ConfidenceInterval:
    """Bootstrap CI of ``mean(numerator) / mean(denominator)``.

    Samples are resampled independently (unpaired runs).
    """
    num = np.asarray(numerator, dtype=float)
    den = np.asarray(denominator, dtype=float)
    if num.size == 0 or den.size == 0:
        raise ValueError("ratio over empty sample")
    if den.mean() == 0:
        raise ValueError("denominator mean is zero")
    generator = as_generator(rng)
    estimate = float(num.mean() / den.mean())
    if num.size == 1 and den.size == 1:
        return ConfidenceInterval(estimate, estimate, estimate, confidence)
    num_idx = generator.integers(0, num.size, size=(n_boot, num.size))
    den_idx = generator.integers(0, den.size, size=(n_boot, den.size))
    replicates = num[num_idx].mean(axis=1) / den[den_idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(replicates, [alpha, 1.0 - alpha])
    return ConfidenceInterval(estimate, float(low), float(high), confidence)


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Mean/std/min/max/median of a sample (nan-safe)."""
    data = np.asarray(values, dtype=float)
    data = data[np.isfinite(data)]
    if data.size == 0:
        return {k: float("nan") for k in ("mean", "std", "min", "max", "median", "n")}
    return {
        "mean": float(data.mean()),
        "std": float(data.std()),
        "min": float(data.min()),
        "max": float(data.max()),
        "median": float(np.median(data)),
        "n": float(data.size),
    }
