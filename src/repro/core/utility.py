"""The AutoMDT utility (reward) function, §IV-B.

``U(n, t) = t_r / k^{n_r} + t_n / k^{n_n} + t_w / k^{n_w}``

Throughput raises utility; every extra thread divides it by ``k``.  The
penalty base ``k`` trades throughput against resource usage: the paper's
sweep over 1–25 Gbps links found the sweet spot "just above 1" and fixes
``k = 1.02`` for all results.  The theoretical maximum reward used by the
convergence criterion (§IV-E) is

``R_max = b (k^{-n_r*} + k^{-n_n*} + k^{-n_w*})``

with ``b`` the measured bottleneck and ``n_i*`` the ideal thread counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.config import require_positive
from repro.utils.errors import ConfigError

DEFAULT_K = 1.02


@dataclass(frozen=True)
class UtilityFunction:
    """Callable implementing the paper's utility with penalty base ``k``."""

    k: float = DEFAULT_K

    def __post_init__(self) -> None:
        require_positive(self.k, "k")
        if self.k < 1.0:
            raise ConfigError(
                f"penalty base k must be >= 1 (k < 1 would *reward* extra threads), got {self.k}"
            )

    def stage_utility(self, throughput: float, threads: float) -> float:
        """Utility contributed by one stage: ``t / k^n``."""
        return throughput / self.k**threads

    def __call__(self, throughputs, threads) -> float:
        """Total utility ``U = Σ_i t_i / k^{n_i}``.

        ``throughputs`` in Mbps, ``threads`` as the ``(n_r, n_n, n_w)``
        triple.
        """
        t = np.asarray(throughputs, dtype=float)
        n = np.asarray(threads, dtype=float)
        if t.shape != (3,) or n.shape != (3,):
            raise ConfigError(
                f"expected 3 throughputs and 3 thread counts, got {t.shape} and {n.shape}"
            )
        return float((t / self.k**n).sum())

    def batch(self, throughputs, threads) -> np.ndarray:
        """Vectorized utility for ``(N, 3)`` stacks of stage columns.

        One array expression replacing N scalar ``__call__`` invocations;
        each row is bit-identical to ``self(throughputs[i], threads[i])``
        (same elementwise power/divide, and a row-contiguous ``sum(axis=1)``
        performs the same pairwise accumulation as the per-row sum).
        """
        t = np.asarray(throughputs, dtype=float)
        n = np.asarray(threads, dtype=float)
        if t.ndim != 2 or t.shape[1] != 3 or t.shape != n.shape:
            raise ConfigError(
                f"expected matching (N, 3) throughputs and threads, got {t.shape} and {n.shape}"
            )
        return (t / self.k**n).sum(axis=1)

    def max_reward(self, bottleneck: float, optimal_threads) -> float:
        """Theoretical per-step maximum ``R_max`` (§IV-E).

        At the optimum every stage moves ``b`` Mbps using its ideal thread
        count, so ``R_max = b Σ_i k^{-n_i*}``.
        """
        n = np.asarray(optimal_threads, dtype=float)
        if n.shape != (3,):
            raise ConfigError(f"expected 3 optimal thread counts, got {n.shape}")
        return float(bottleneck * (self.k**-n).sum())
