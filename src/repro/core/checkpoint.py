"""Agent checkpointing: parameters + the metadata needed to redeploy them.

A checkpoint bundles the policy/value parameters with the exploration
profile quantities (``n_max``, throughput scale, action mode) that the
production controller must reuse to reconstruct states identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.ppo import PPOAgent, PPOConfig


@dataclass(frozen=True)
class CheckpointMeta:
    """Deployment metadata stored alongside the weights."""

    max_threads: int
    throughput_scale: float
    action_mode: str
    utility_k: float
    state_dim: int = 8
    action_dim: int = 3


def save_checkpoint(path: str | Path, agent: PPOAgent, meta: CheckpointMeta) -> None:
    """Write ``<path>.npz`` (weights) and ``<path>.json`` (meta + PPO config)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = agent.state_dict()
    flat: dict[str, np.ndarray] = {}
    for net_name, net_state in state.items():
        for key, value in net_state.items():
            flat[f"{net_name}/{key}"] = value
    np.savez(path.with_suffix(".npz"), **flat)
    meta_blob = {
        "meta": meta.__dict__,
        "ppo_config": {
            k: (list(v) if isinstance(v, tuple) else v)
            for k, v in agent.config.__dict__.items()
        },
    }
    path.with_suffix(".json").write_text(json.dumps(meta_blob, indent=2))


def load_checkpoint(path: str | Path, rng=None) -> tuple[PPOAgent, CheckpointMeta]:
    """Rebuild an agent (and its metadata) from :func:`save_checkpoint` files."""
    path = Path(path)
    blob = json.loads(path.with_suffix(".json").read_text())
    raw_cfg = dict(blob["ppo_config"])
    raw_cfg.pop("seed", None)
    if "log_std_range" in raw_cfg:
        raw_cfg["log_std_range"] = tuple(raw_cfg["log_std_range"])
    meta = CheckpointMeta(**blob["meta"])
    agent = PPOAgent(meta.state_dim, meta.action_dim, PPOConfig(**raw_cfg), rng=rng)
    with np.load(path.with_suffix(".npz")) as archive:
        nets: dict[str, dict[str, np.ndarray]] = {"policy": {}, "value": {}}
        for key in archive.files:
            net_name, param_name = key.split("/", 1)
            nets[net_name][param_name] = archive[key]
    agent.load_state_dict(nets)
    return agent, meta
