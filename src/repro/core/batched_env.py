"""Population-batched training environment over :class:`BatchedSimulator`.

:class:`BatchedEnv` holds N member environments as columns of one
fleet-vectorized simulator: one :meth:`step_all` call advances the whole
population's simulated second in-process instead of N scalar event loops
(or N pool processes).  Column ``i`` reproduces
:class:`repro.core.env.SimulatorEnv` *bit-identically* — same per-column
RNG draw order on reset (sender fill, receiver fill, initial threads),
same action mapping, same state assembly and reward arithmetic — so a
population trained through the batched path matches the scalar path
exactly (see ``tests/core/test_population_batched.py``).

Unlike :class:`SimulatorEnv`, scenario resampling is not supported: the
population's variants are fixed at construction (that is what the
population hedges over), and all columns share one episode clock — the
``done`` flag is synchronized by construction since every column counts
the same ``episode_steps``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.env import ACTION_DIM, STATE_DIM
from repro.core.utility import UtilityFunction
from repro.simulator.batch import BatchedSimulator, BatchStageMetrics
from repro.simulator.config import SimulatorConfig
from repro.utils.config import require_positive
from repro.utils.errors import ConfigError
from repro.utils.rng import as_generator

__all__ = ["BatchedEnv"]


class BatchedEnv:
    """N member environments stepped as columns of one batched simulator.

    Parameters
    ----------
    configs:
        One :class:`SimulatorConfig` per member.
    rngs:
        Per-member RNG seeds/generators.  Column ``i`` draws exactly what a
        ``SimulatorEnv(configs[i], rng=rngs[i])`` would — the key to
        bit-identity with the per-member scalar path.
    """

    state_dim = STATE_DIM
    action_dim = ACTION_DIM

    def __init__(
        self,
        configs: Sequence[SimulatorConfig],
        rngs: Sequence | None = None,
        *,
        utility: UtilityFunction | None = None,
        episode_steps: int = 10,
        action_mode: str = "normalized",
        normalize_reward: bool = True,
        randomize_initial_buffers: bool = True,
    ) -> None:
        configs = list(configs)
        if not configs:
            raise ConfigError("BatchedEnv needs at least one member config")
        if action_mode not in ("normalized", "direct"):
            raise ConfigError(f"unknown action_mode {action_mode!r}")
        require_positive(episode_steps, "episode_steps")
        if rngs is None:
            rngs = [None] * len(configs)
        if len(rngs) != len(configs):
            raise ConfigError(
                f"{len(configs)} configs but {len(rngs)} rng streams"
            )
        self.batch = len(configs)
        self.configs = configs
        self.utility = utility or UtilityFunction()
        self.rngs = [as_generator(r) for r in rngs]
        self.episode_steps = int(episode_steps)
        self.action_mode = action_mode
        self.normalize_reward = normalize_reward
        self.randomize_initial_buffers = randomize_initial_buffers

        self.max_threads = np.array([c.max_threads for c in configs], dtype=np.int64)
        self.throughput_scale = np.array([c.bottleneck for c in configs])
        self.sender_capacity = np.array([c.sender_buffer_capacity for c in configs])
        self.receiver_capacity = np.array([c.receiver_buffer_capacity for c in configs])
        self.max_reward = np.array(
            [
                self.utility.max_reward(c.bottleneck, c.optimal_threads())
                for c in configs
            ]
        )
        self.simulator = BatchedSimulator(configs)
        self._step_count = 0

    # ----------------------------------------------------------- conversions
    def action_to_threads(self, actions) -> np.ndarray:
        """``(N, 3)`` continuous actions to integer concurrency triples."""
        a = np.asarray(actions, dtype=float)
        if a.shape != (self.batch, 3):
            raise ConfigError(
                f"expected ({self.batch}, 3) actions, got shape {a.shape}"
            )
        if self.action_mode == "normalized":
            raw = 1.0 + a * (self.max_threads[:, None] - 1)
        else:
            raw = a
        return np.clip(np.round(raw), 1, self.max_threads[:, None]).astype(int)

    def _states(self, metrics: BatchStageMetrics) -> np.ndarray:
        """The 8-dim normalized state per column, as one ``(N, 8)`` array."""
        n = metrics.threads / self.max_threads[:, None]
        t = metrics.throughputs / self.throughput_scale[:, None]
        buffers = np.stack(
            [
                metrics.sender_free / self.sender_capacity,
                metrics.receiver_free / self.receiver_capacity,
            ],
            axis=1,
        )
        return np.concatenate([n, t, buffers], axis=1)

    # --------------------------------------------------------------- protocol
    def reset_all(self, mask=None) -> np.ndarray:
        """Start a new episode for every column in ``mask`` (default: all).

        Per selected column the RNG draw order matches ``SimulatorEnv``:
        sender fill, receiver fill (when ``randomize_initial_buffers``),
        then the random initial thread triple.  Unselected columns draw
        nothing — their streams stay aligned with members that already
        finished — but are still stepped (their results are ignored).
        """
        self._step_count = 0
        n_members = self.batch
        snd = np.zeros(n_members)
        rcv = np.zeros(n_members)
        threads = np.ones((n_members, 3), dtype=np.int64)
        selected = (
            range(n_members) if mask is None else np.flatnonzero(np.asarray(mask))
        )
        for i in selected:
            rng = self.rngs[i]
            if self.randomize_initial_buffers:
                snd[i] = float(rng.uniform(0.0, 0.5)) * self.sender_capacity[i]
                rcv[i] = float(rng.uniform(0.0, 0.5)) * self.receiver_capacity[i]
            threads[i] = rng.integers(1, self.max_threads[i] + 1, size=3)
        self.simulator.reset(sender_usage=snd, receiver_usage=rcv, mask=mask)
        metrics = self.simulator.step_second(threads)
        return self._states(metrics)

    def step_all(self, actions) -> tuple[np.ndarray, np.ndarray, bool, BatchStageMetrics]:
        """One simulated second for every column; returns per-column rewards.

        The ``done`` flag is a single bool — columns share the episode
        clock.  The raw :class:`BatchStageMetrics` rides along as the info
        channel.
        """
        threads = self.action_to_threads(actions)
        metrics = self.simulator.step_second(threads)
        self._step_count += 1
        done = self._step_count >= self.episode_steps
        # One vectorized utility evaluation for all columns, bit-identical
        # to the per-column scalar calls (see UtilityFunction.batch).
        utilities = self.utility.batch(metrics.throughputs, metrics.threads)
        rewards = utilities / self.max_reward if self.normalize_reward else utilities
        return self._states(metrics), rewards, done, metrics
