"""RL environments for the concurrency-optimization task.

Both environments present the paper's state space (§IV-D1): current thread
counts, per-stage throughputs, and unused buffer space at the sender and
receiver — 8 dimensions, normalized to O(1) ranges.  Actions are
3-dimensional continuous vectors mapped to integer thread counts.

* :class:`SimulatorEnv` wraps the Algorithm-1 training simulator — this is
  where offline PPO training happens.
* :class:`TestbedEnv` wraps the evaluation emulator with an endless data
  source — used for online-training comparisons and fine-tuning (§V-C).

Action conventions (``action_mode``):

* ``"normalized"`` (default) — action component ``a`` maps to
  ``round(1 + a (n_max - 1))``; the policy works in [0, 1] per dimension,
  which keeps the Gaussian's scale sane.
* ``"direct"`` — the paper-literal convention: the action *is* the thread
  count, rounded and clamped to ``[1, n_max]``.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.exploration import ExplorationProfile
from repro.core.utility import UtilityFunction
from repro.emulator.testbed import Testbed
from repro.simulator.config import SimulatorConfig
from repro.simulator.core import IONetworkSimulator
from repro.simulator.scenarios import scenario_from_profile
from repro.utils.config import require_positive
from repro.utils.errors import ConfigError
from repro.utils.rng import as_generator

STATE_DIM = 8
ACTION_DIM = 3


class _EnvBase:
    """Shared state/action plumbing for both environments."""

    state_dim = STATE_DIM
    action_dim = ACTION_DIM

    def __init__(
        self,
        *,
        utility: UtilityFunction,
        max_threads: int,
        throughput_scale: float,
        sender_capacity: float,
        receiver_capacity: float,
        max_reward: float,
        episode_steps: int = 10,
        action_mode: str = "normalized",
        normalize_reward: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if action_mode not in ("normalized", "direct"):
            raise ConfigError(f"unknown action_mode {action_mode!r}")
        require_positive(episode_steps, "episode_steps")
        require_positive(throughput_scale, "throughput_scale")
        self.utility = utility
        self.max_threads = int(max_threads)
        self.throughput_scale = float(throughput_scale)
        self.sender_capacity = float(sender_capacity)
        self.receiver_capacity = float(receiver_capacity)
        self.max_reward = float(max_reward)
        self.episode_steps = int(episode_steps)
        self.action_mode = action_mode
        self.normalize_reward = normalize_reward
        self.rng = as_generator(rng)
        self._step_count = 0

    # ----------------------------------------------------------- conversions
    def action_to_threads(self, action) -> tuple[int, int, int]:
        """Map a continuous action to an integer concurrency triple."""
        a = np.asarray(action, dtype=float).reshape(-1)
        if a.shape != (3,):
            raise ConfigError(f"expected 3-dim action, got shape {a.shape}")
        if self.action_mode == "normalized":
            raw = 1.0 + a * (self.max_threads - 1)
        else:
            raw = a
        threads = np.clip(np.round(raw), 1, self.max_threads).astype(int)
        return (int(threads[0]), int(threads[1]), int(threads[2]))

    def threads_to_action(self, threads) -> np.ndarray:
        """Inverse map (exact at integer thread counts)."""
        n = np.asarray(threads, dtype=float)
        if self.action_mode == "normalized":
            return (n - 1.0) / max(1, self.max_threads - 1)
        return n

    def make_state(
        self,
        threads,
        throughputs,
        sender_free: float,
        receiver_free: float,
    ) -> np.ndarray:
        """Assemble the 8-dim normalized state vector."""
        n = np.asarray(threads, dtype=float) / self.max_threads
        t = np.asarray(throughputs, dtype=float) / self.throughput_scale
        buffers = np.array(
            [sender_free / self.sender_capacity, receiver_free / self.receiver_capacity]
        )
        return np.concatenate([n, t, buffers])

    def _reward(self, throughputs, threads) -> float:
        value = self.utility(throughputs, threads)
        if self.normalize_reward:
            return value / self.max_reward
        return value

    def random_threads(self) -> tuple[int, int, int]:
        """Uniform random concurrency triple (episode initialization)."""
        n = self.rng.integers(1, self.max_threads + 1, size=3)
        return (int(n[0]), int(n[1]), int(n[2]))

    # --------------------------------------------------------------- protocol
    def reset(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self, action) -> tuple[np.ndarray, float, bool, dict]:  # pragma: no cover
        raise NotImplementedError


class SimulatorEnv(_EnvBase):
    """Offline-training environment over :class:`IONetworkSimulator`.

    ``scenario_sampler`` (optional) is called at every reset to produce a
    fresh :class:`SimulatorConfig` — domain randomization for robustness
    studies.  Without it, the single configured scenario is reused and only
    the initial thread counts / buffer fills vary.
    """

    def __init__(
        self,
        config: SimulatorConfig,
        *,
        utility: UtilityFunction | None = None,
        episode_steps: int = 10,
        action_mode: str = "normalized",
        normalize_reward: bool = True,
        randomize_initial_buffers: bool = True,
        scenario_sampler: Callable[[np.random.Generator], SimulatorConfig] | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        utility = utility or UtilityFunction()
        super().__init__(
            utility=utility,
            max_threads=config.max_threads,
            throughput_scale=config.bottleneck,
            sender_capacity=config.sender_buffer_capacity,
            receiver_capacity=config.receiver_buffer_capacity,
            max_reward=utility.max_reward(config.bottleneck, config.optimal_threads()),
            episode_steps=episode_steps,
            action_mode=action_mode,
            normalize_reward=normalize_reward,
            rng=rng,
        )
        self.config = config
        self.scenario_sampler = scenario_sampler
        self.randomize_initial_buffers = randomize_initial_buffers
        self.simulator = IONetworkSimulator(config)
        self._threads: tuple[int, int, int] = (1, 1, 1)

    @classmethod
    def from_profile(
        cls,
        profile: ExplorationProfile,
        **kwargs,
    ) -> "SimulatorEnv":
        """Build the training environment straight from an exploration profile."""
        config = scenario_from_profile(
            profile.tpt,
            profile.bandwidth,
            sender_buffer_capacity=profile.sender_buffer_capacity,
            receiver_buffer_capacity=profile.receiver_buffer_capacity,
            max_threads=profile.max_threads,
            label="exploration-profile",
        )
        return cls(config, **kwargs)

    def _apply_scenario(self) -> None:
        if self.scenario_sampler is not None:
            self.config = self.scenario_sampler(self.rng)
            self.max_threads = self.config.max_threads
            self.throughput_scale = self.config.bottleneck
            self.sender_capacity = self.config.sender_buffer_capacity
            self.receiver_capacity = self.config.receiver_buffer_capacity
            self.max_reward = self.utility.max_reward(
                self.config.bottleneck, self.config.optimal_threads()
            )
        self.simulator = IONetworkSimulator(self.config)

    def reset(self) -> np.ndarray:
        """Start a new episode with random threads (Algorithm 2, line 5)."""
        self._apply_scenario()
        self._step_count = 0
        if self.randomize_initial_buffers:
            self.simulator.reset(
                sender_usage=float(self.rng.uniform(0.0, 0.5)) * self.sender_capacity,
                receiver_usage=float(self.rng.uniform(0.0, 0.5)) * self.receiver_capacity,
            )
        self._threads = self.random_threads()
        metrics = self.simulator.step_second(self._threads)
        return self.make_state(
            metrics.threads, metrics.throughputs, metrics.sender_free, metrics.receiver_free
        )

    def step(self, action) -> tuple[np.ndarray, float, bool, dict]:
        """Apply ``action`` for one simulated second (GET_UTILITY, Algorithm 1)."""
        threads = self.action_to_threads(action)
        metrics = self.simulator.step_second(threads)
        self._threads = metrics.threads
        reward = self._reward(metrics.throughputs, metrics.threads)
        self._step_count += 1
        done = self._step_count >= self.episode_steps
        state = self.make_state(
            metrics.threads, metrics.throughputs, metrics.sender_free, metrics.receiver_free
        )
        info = {
            "threads": metrics.threads,
            "throughputs": metrics.throughputs,
            "utility": self.utility(metrics.throughputs, metrics.threads),
            "sender_usage": metrics.sender_usage,
            "receiver_usage": metrics.receiver_usage,
        }
        return state, reward, done, info


class TestbedEnv(_EnvBase):
    """Online environment over the evaluation emulator (endless data source).

    Each step advances the testbed by ``probe_interval`` virtual seconds.
    Used for the online-training cost comparison and for fine-tuning a
    pretrained policy against the richer dynamics.
    """

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        testbed: Testbed,
        *,
        utility: UtilityFunction | None = None,
        episode_steps: int = 10,
        probe_interval: float = 1.0,
        action_mode: str = "normalized",
        normalize_reward: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        utility = utility or UtilityFunction()
        cfg = testbed.config
        super().__init__(
            utility=utility,
            max_threads=cfg.max_threads,
            throughput_scale=cfg.bottleneck_bandwidth,
            sender_capacity=cfg.sender_buffer_capacity,
            receiver_capacity=cfg.receiver_buffer_capacity,
            max_reward=utility.max_reward(cfg.bottleneck_bandwidth, cfg.optimal_threads()),
            episode_steps=episode_steps,
            action_mode=action_mode,
            normalize_reward=normalize_reward,
            rng=rng,
        )
        require_positive(probe_interval, "probe_interval")
        self.testbed = testbed
        self.probe_interval = probe_interval
        self._threads: tuple[int, int, int] = (1, 1, 1)

    def reset(self) -> np.ndarray:
        """Start a new episode with random threads; buffers persist realistically."""
        self._step_count = 0
        self._threads = self.random_threads()
        flows = self.testbed.advance(self._threads, self.probe_interval)
        return self.make_state(
            flows.threads, flows.throughputs, flows.sender_free, flows.receiver_free
        )

    def step(self, action) -> tuple[np.ndarray, float, bool, dict]:
        """Apply ``action`` for one probe interval on the live testbed."""
        threads = self.action_to_threads(action)
        flows = self.testbed.advance(threads, self.probe_interval)
        self._threads = flows.threads
        reward = self._reward(flows.throughputs, flows.threads)
        self._step_count += 1
        done = self._step_count >= self.episode_steps
        state = self.make_state(
            flows.threads, flows.throughputs, flows.sender_free, flows.receiver_free
        )
        info = {
            "threads": flows.threads,
            "throughputs": flows.throughputs,
            "utility": self.utility(flows.throughputs, flows.threads),
            "sender_usage": flows.sender_usage,
            "receiver_usage": flows.receiver_usage,
        }
        return state, reward, done, info
