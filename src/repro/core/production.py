"""The production thread-update loop, §IV-F.

During a real transfer AutoMDT loads the best offline checkpoint and keeps
interacting: the policy produces ``⟨μ, σ⟩``, an action is sampled from the
diagonal Gaussian, rounded to integers, clamped to ``[1, n_max]``, and the
triple is applied to the live transfer.  :class:`AutoMDTController`
implements exactly that against the
:class:`repro.transfer.engine.ModularTransferEngine` controller protocol.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import no_grad
from repro.core.networks import PolicyNetwork
from repro.core.utility import UtilityFunction
from repro.nn.plan import PlanUnsupported, PolicyPlan
from repro.transfer.engine import Observation
from repro.utils.config import require_positive
from repro.utils.rng import as_generator


class AutoMDTController:
    """Trained policy driving a production transfer.

    Parameters
    ----------
    policy:
        The (trained) policy network.
    max_threads:
        Clamp bound ``n_max``.
    throughput_scale:
        Normalization constant for the throughput components of the state —
        use the bottleneck ``b`` from the exploration profile, exactly as
        during training.
    action_mode:
        Must match the environment convention the policy was trained with.
    deterministic:
        Use the Gaussian mean instead of sampling.  The paper samples, but
        only after full-scale training has annealed σ to near zero; at
        scaled-down budgets the checkpoint's σ is still large and sampling
        injects thread-count noise the paper's traces don't show.  The
        default (True) is therefore the budget-equivalent of the paper's
        converged-σ sampling; pass False to reproduce the literal §IV-F
        behaviour.
    """

    def __init__(
        self,
        policy: PolicyNetwork,
        *,
        max_threads: int,
        throughput_scale: float,
        action_mode: str = "normalized",
        deterministic: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        require_positive(max_threads, "max_threads")
        require_positive(throughput_scale, "throughput_scale")
        self.policy = policy
        self.max_threads = int(max_threads)
        self.throughput_scale = float(throughput_scale)
        self.action_mode = action_mode
        self.deterministic = deterministic
        self.rng = as_generator(rng)
        self.utility = UtilityFunction()
        # Compiled zero-Tensor inference plan (repro.nn.plan): production
        # proposals, GuardedController wrapping, and fleet co-simulation all
        # query through here, so the plan speeds every deployment surface.
        # Non-standard policy objects (e.g. test doubles) fall back to the
        # Tensor path.
        self._plan: PolicyPlan | None
        try:
            self._plan = PolicyPlan(policy)
        except PlanUnsupported:
            self._plan = None

    def _state_from_observation(self, obs: Observation) -> np.ndarray:
        n = np.asarray(obs.threads, dtype=float) / self.max_threads
        t = np.asarray(obs.throughputs, dtype=float) / self.throughput_scale
        # Probe dropouts (NaN throughputs) and degenerate buffer reports
        # (zero/NaN capacities) must not reach the policy net: NaN propagates
        # through every layer and the Gaussian head turns it into NaN thread
        # counts.  Free space defaults to "buffer empty" when unreported.
        sender_capacity = obs.sender_capacity if obs.sender_capacity > 0 else 1.0
        receiver_capacity = obs.receiver_capacity if obs.receiver_capacity > 0 else 1.0
        sender_free = obs.sender_free if np.isfinite(obs.sender_free) else sender_capacity
        receiver_free = obs.receiver_free if np.isfinite(obs.receiver_free) else receiver_capacity
        buffers = np.array(
            [sender_free / sender_capacity, receiver_free / receiver_capacity]
        )
        state = np.concatenate([n, t, buffers])
        return np.nan_to_num(state, nan=0.0, posinf=1.0, neginf=0.0)

    def _action_to_threads(self, action: np.ndarray) -> tuple[int, int, int]:
        if self.action_mode == "normalized":
            raw = 1.0 + action * (self.max_threads - 1)
        else:
            raw = action
        threads = np.clip(np.round(raw), 1, self.max_threads).astype(int)
        return (int(threads[0]), int(threads[1]), int(threads[2]))

    def propose(self, observation: Observation) -> tuple[int, int, int]:
        """One §IV-F step: state → sample → round → clamp."""
        state = self._state_from_observation(observation)
        if self._plan is not None:
            action, _ = self._plan.act(
                state, self.rng, deterministic=self.deterministic, want_log_prob=False
            )
        else:
            with no_grad():
                dist = self.policy(state)
                action = dist.mode() if self.deterministic else dist.sample(self.rng)
        return self._action_to_threads(action)

    def reset(self) -> None:
        """The controller is stateless between transfers."""
