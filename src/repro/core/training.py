"""Offline PPO training, Algorithm 2.

Runs episodes of ``M`` steps against an environment (normally
:class:`repro.core.env.SimulatorEnv`), performing one PPO update per episode
and tracking the best episode reward.  Training stops when

* the best reward has reached ``convergence_threshold × R_max`` **and**
* no improvement has been seen for ``stagnation_episodes`` episodes

(the paper's 0.9·R_max + 1000-episode criterion), or when ``max_episodes``
is exhausted.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.ppo import PPOAgent
from repro.utils.config import require_in_range, require_positive


@dataclass(frozen=True)
class TrainingConfig:
    """Budget and convergence knobs for Algorithm 2.

    The paper uses ``max_episodes = 30000``, ``steps_per_episode = 10``,
    ``stagnation_episodes = 1000``.  Scaled-down defaults here keep a
    single-core run fast; paper-scale values are a constructor call away.
    """

    max_episodes: int = 5000
    steps_per_episode: int = 10
    episodes_per_update: int = 4
    convergence_threshold: float = 0.9
    stagnation_episodes: int = 300
    log_every: int = 0  # 0 disables progress callbacks
    seed: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        require_positive(self.max_episodes, "max_episodes")
        require_positive(self.steps_per_episode, "steps_per_episode")
        require_positive(self.episodes_per_update, "episodes_per_update")
        require_in_range(self.convergence_threshold, 0.0, 1.0, "convergence_threshold")
        require_positive(self.stagnation_episodes, "stagnation_episodes")


@dataclass
class TrainingResult:
    """Outcome of one training run."""

    episode_rewards: np.ndarray
    best_reward: float
    best_episode: int
    converged: bool
    convergence_episode: int | None
    episodes_run: int
    wall_seconds: float
    best_state: dict
    max_episode_reward: float
    steps_per_episode: int = 10
    #: environment steps actually taken; 0 in results from older checkpoints,
    #: in which case the legacy ``episodes × M`` estimate is used.
    total_steps: int = 0

    @property
    def simulated_seconds(self) -> float:
        """Virtual seconds of transfer the training consumed (1 s per step).

        Counts the steps the loop actually took — episodes ending early on
        ``done`` used to be billed for their full ``steps_per_episode``,
        overstating the simulated budget (and the online-cost estimate
        derived from it).
        """
        if self.total_steps:
            return float(self.total_steps)
        return float(self.episodes_run * self.steps_per_episode)

    def online_training_estimate(self, seconds_per_step: float = 3.0) -> float:
        """What the same training would cost *online*, in seconds (§IV).

        The paper estimates 3 s per online iteration: an online run of the
        same step budget would take ``steps × 3`` seconds (their 450,000 s
        ≈ 5 days for 15,000 × 10-step episodes).
        """
        return self.simulated_seconds * seconds_per_step


def train(
    agent: PPOAgent,
    env,
    config: TrainingConfig | None = None,
    *,
    max_episode_reward: float | None = None,
    progress: Callable[[int, float, float], None] | None = None,
) -> TrainingResult:
    """Run Algorithm 2: train ``agent`` on ``env`` until convergence.

    Parameters
    ----------
    max_episode_reward:
        The theoretical episode reward ``R_max`` for the convergence check.
        Defaults to ``steps_per_episode × 1.0``, correct for environments
        that normalize per-step rewards by the per-step ``R_max``.
    progress:
        Optional callback ``(episode, episode_reward, best_reward)`` invoked
        every ``config.log_every`` episodes.
    """
    cfg = config or TrainingConfig()
    r_max = (
        float(max_episode_reward)
        if max_episode_reward is not None
        else float(cfg.steps_per_episode)
    )
    with obs.span(
        "train/offline",
        max_episodes=cfg.max_episodes,
        steps_per_episode=cfg.steps_per_episode,
        r_max=r_max,
    ):
        return _train_loop(agent, env, cfg, r_max, progress)


def _train_loop(
    agent: PPOAgent,
    env,
    cfg: TrainingConfig,
    r_max: float,
    progress: Callable[[int, float, float], None] | None,
) -> TrainingResult:
    target = cfg.convergence_threshold * r_max
    sess = obs.active()

    rewards: list[float] = []
    best_reward = -np.inf
    best_episode = -1
    best_state = agent.state_dict()
    stagnant = 0
    converged = False
    convergence_episode: int | None = None
    started = time.perf_counter()

    episode = 0
    total_steps = 0
    agent.memory.clear()
    while episode < cfg.max_episodes:
        state = env.reset()
        episode_reward = 0.0
        for _ in range(cfg.steps_per_episode):
            action, log_prob = agent.act(state)
            next_state, reward, done, _info = env.step(action)
            agent.memory.store(state, action, log_prob, reward)
            state = next_state
            episode_reward += reward
            total_steps += 1
            if done:
                break
        agent.memory.end_episode(agent.config.gamma)
        # One PPO update per `episodes_per_update` collected episodes (=1
        # reproduces Algorithm 2 literally; the batched default trades a
        # slightly staler policy for far less gradient noise per update).
        if (episode + 1) % cfg.episodes_per_update == 0:
            agent.set_lr_progress(episode / cfg.max_episodes)
            agent.update()
            agent.memory.clear()

        rewards.append(episode_reward)
        if sess is not None:
            # Reward vs R_max per episode — the convergence curve (§IV-E).
            sess.sample(
                "train/episode",
                t=float(episode),
                reward=episode_reward,
                reward_fraction=episode_reward / r_max if r_max else 0.0,
                best_reward=max(best_reward, episode_reward),
            )
            sess.count("train/episodes")
        if episode_reward > best_reward:
            best_reward = episode_reward
            best_episode = episode
            best_state = agent.state_dict()
            stagnant = 0
        else:
            stagnant += 1

        if convergence_episode is None and best_reward >= target:
            convergence_episode = episode
        if progress is not None and cfg.log_every and episode % cfg.log_every == 0:
            progress(episode, episode_reward, best_reward)

        # Paper criterion: converged *and* 1000 stagnant episodes of
        # refinement without improvement.
        if best_reward >= target and stagnant >= cfg.stagnation_episodes:
            converged = True
            episode += 1
            break
        episode += 1

    if best_reward >= target and not converged:
        # Budget exhausted after reaching the target but before the full
        # stagnation wait: the model is usable; flag convergence anyway.
        converged = True

    return TrainingResult(
        episode_rewards=np.asarray(rewards),
        best_reward=float(best_reward),
        best_episode=best_episode,
        converged=converged,
        convergence_episode=convergence_episode,
        episodes_run=episode,
        wall_seconds=time.perf_counter() - started,
        best_state=best_state,
        max_episode_reward=r_max,
        steps_per_episode=cfg.steps_per_episode,
        total_steps=total_steps,
    )
