"""Population training: K agents on K scenario variants, best-by-eval.

The paper trains one agent on one exploration-derived scenario.  A
population run hedges that choice: each member trains on its own
:class:`~repro.simulator.config.SimulatorConfig` variant (e.g. perturbed
throttle estimates, different buffer provisioning) with fully independent
RNG streams, every trained member is evaluated with a deterministic policy
on its own scenario, and the best evaluation reward wins.

Members are independent, so the population fans out over
:class:`repro.parallel.ParallelMap` — member seeds come from
:func:`repro.parallel.seeds.derive_seed`, a pure function of the root seed
and the member index, which makes ``workers=K`` bit-identical to
``workers=1``.

``batched=True`` selects a third, in-process execution mode: all members
step one :class:`repro.core.batched_env.BatchedEnv` together, so the
population's simulated seconds cost one fleet-vectorized
``step_second`` call per step instead of K scalar event loops.  The
batched path derives the same per-member seed streams and replays the
same per-member call sequence as ``_train_member``, so its results are
bit-identical to ``workers=1`` (and therefore to any worker count).
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.env import SimulatorEnv
from repro.core.ppo import PPOAgent, PPOConfig
from repro.core.training import TrainingConfig, TrainingResult, train
from repro.parallel import ParallelMap, derive_seed
from repro.simulator.config import SimulatorConfig

__all__ = ["PopulationMember", "PopulationResult", "train_population"]


@dataclass
class PopulationMember:
    """One trained member of the population."""

    index: int
    config: SimulatorConfig
    seed: int
    training: TrainingResult
    eval_reward: float


@dataclass
class PopulationResult:
    """All members plus the evaluation winner."""

    members: list[PopulationMember]
    best_index: int

    @property
    def best(self) -> PopulationMember:
        return self.members[self.best_index]

    def eval_rewards(self) -> list[float]:
        return [m.eval_reward for m in self.members]


def _evaluate(
    agent: PPOAgent, env: SimulatorEnv, episodes: int
) -> float:
    """Mean deterministic episode reward of the *best* training checkpoint."""
    total = 0.0
    for _ in range(episodes):
        state = env.reset()
        for _ in range(env.episode_steps):
            action, _lp = agent.act(state, deterministic=True)
            state, reward, done, _info = env.step(action)
            total += reward
            if done:
                break
    return total / episodes


def _train_member(payload, seed: int) -> tuple[TrainingResult, float]:
    """Train + evaluate one member; runs inside a pool worker.

    ``seed`` is the pool-derived member seed; the env / agent / eval RNG
    streams are split from it with :func:`derive_seed` so they stay
    decorrelated yet reproducible from (root_seed, index) alone.
    """
    index, config, training_config, ppo_config, eval_episodes = payload
    del index  # identification only; determinism comes from ``seed``
    env = SimulatorEnv(config, rng=derive_seed(seed, 0))
    agent = PPOAgent(
        env.state_dim, env.action_dim, ppo_config, rng=derive_seed(seed, 1)
    )
    result = train(agent, env, training_config)

    agent.load_state_dict(result.best_state)
    eval_env = SimulatorEnv(config, rng=derive_seed(seed, 2))
    eval_reward = _evaluate(agent, eval_env, eval_episodes)
    return result, eval_reward


def _train_population_batched(
    variants: Sequence[SimulatorConfig],
    *,
    root_seed: int,
    training_config: TrainingConfig,
    ppo_config: PPOConfig,
    eval_episodes: int,
) -> PopulationResult:
    """All members training in lockstep on one fleet-vectorized simulator.

    Replays ``_train_member``'s exact call sequence per member — same
    derived seed streams, same per-episode act/store/update cadence, same
    convergence bookkeeping — with the K scalar ``step_second`` loops
    fused into one :class:`BatchedEnv` call per step and the K per-member
    networks fused into one :class:`~repro.nn.stacked.StackedPPOAgent`
    (one ``np.matmul`` per layer for the whole population's acting *and*
    updating, bit-identical per member — see DESIGN §17).  Members that
    stop early (converged + stagnant) keep their column idle: no further
    RNG draws, no stored transitions.
    """
    from repro.core.batched_env import BatchedEnv
    from repro.nn.stacked import StackedPPOAgent

    n = len(variants)
    cfg = training_config
    seeds = [derive_seed(root_seed, i) for i in range(n)]
    env = BatchedEnv(variants, rngs=[derive_seed(s, 0) for s in seeds])
    stacked = StackedPPOAgent(
        env.state_dim, env.action_dim, ppo_config,
        rngs=[derive_seed(s, 1) for s in seeds],
    )
    agents = stacked.members
    r_max = float(cfg.steps_per_episode)
    target = cfg.convergence_threshold * r_max

    rewards: list[list[float]] = [[] for _ in range(n)]
    best_reward = [-np.inf] * n
    best_episode = [-1] * n
    best_state = [agent.state_dict() for agent in agents]
    stagnant = [0] * n
    converged = [False] * n
    convergence_episode: list[int | None] = [None] * n
    episodes_run = [0] * n
    total_steps = [0] * n
    active = np.ones(n, dtype=bool)
    started = time.perf_counter()

    for agent in agents:
        agent.memory.clear()
    episode = 0
    steps = min(cfg.steps_per_episode, env.episode_steps)
    actions = np.zeros((n, 3))
    while episode < cfg.max_episodes and active.any():
        states = env.reset_all(mask=active)
        episode_rewards = np.zeros(n)
        member_actions: list = [None] * n
        log_probs = [0.0] * n
        for _ in range(steps):
            # One stacked forward for the whole population; inactive rows
            # are discarded (no RNG draws happen for them).
            acts, lps = stacked.act_all(states, active=active)
            for i in np.flatnonzero(active):
                member_actions[i] = acts[i].copy()
                log_probs[i] = float(lps[i])
                actions[i] = member_actions[i]
            next_states, step_rewards, _done, _info = env.step_all(actions)
            for i in np.flatnonzero(active):
                agents[i].memory.store(
                    states[i], member_actions[i], log_probs[i], float(step_rewards[i])
                )
                total_steps[i] += 1
            states = next_states
            episode_rewards += step_rewards
        for i in np.flatnonzero(active):
            agents[i].memory.end_episode(agents[i].config.gamma)
        if (episode + 1) % cfg.episodes_per_update == 0:
            stacked.set_lr_progress(episode / cfg.max_episodes)
            idx = np.flatnonzero(active)
            stacked.update_all(idx)
            for i in idx:
                agents[i].memory.clear()
        for i in np.flatnonzero(active):
            episode_reward = float(episode_rewards[i])
            rewards[i].append(episode_reward)
            if episode_reward > best_reward[i]:
                best_reward[i] = episode_reward
                best_episode[i] = episode
                best_state[i] = agents[i].state_dict()
                stagnant[i] = 0
            else:
                stagnant[i] += 1
            if convergence_episode[i] is None and best_reward[i] >= target:
                convergence_episode[i] = episode
            if best_reward[i] >= target and stagnant[i] >= cfg.stagnation_episodes:
                converged[i] = True
                episodes_run[i] = episode + 1
                active[i] = False
        episode += 1
    wall = time.perf_counter() - started
    for i in np.flatnonzero(active):
        episodes_run[i] = episode
        if best_reward[i] >= target:
            converged[i] = True
    env.simulator.export_telemetry()

    results = [
        TrainingResult(
            episode_rewards=np.asarray(rewards[i]),
            best_reward=float(best_reward[i]),
            best_episode=best_episode[i],
            converged=converged[i],
            convergence_episode=convergence_episode[i],
            episodes_run=episodes_run[i],
            wall_seconds=wall,
            best_state=best_state[i],
            max_episode_reward=r_max,
            steps_per_episode=cfg.steps_per_episode,
            total_steps=total_steps[i],
        )
        for i in range(n)
    ]

    # Evaluation: best checkpoints, deterministic policy, batched columns.
    eval_env = BatchedEnv(variants, rngs=[derive_seed(s, 2) for s in seeds])
    for i, agent in enumerate(agents):
        agent.load_state_dict(results[i].best_state)
    totals = np.zeros(n)
    for _ in range(int(eval_episodes)):
        states = eval_env.reset_all()
        for _ in range(eval_env.episode_steps):
            acts, _lps = stacked.act_all(states, deterministic=True)
            actions[:] = acts
            states, step_rewards, done, _info = eval_env.step_all(actions)
            totals += step_rewards
            if done:
                break
    eval_rewards = totals / int(eval_episodes)
    eval_env.simulator.export_telemetry()

    members = [
        PopulationMember(
            index=i,
            config=variants[i],
            seed=seeds[i],
            training=results[i],
            eval_reward=float(eval_rewards[i]),
        )
        for i in range(n)
    ]
    best_index = int(np.asarray(eval_rewards).argmax())
    return PopulationResult(members=members, best_index=best_index)


def train_population(
    variants: Sequence[SimulatorConfig],
    *,
    root_seed: int = 0,
    training_config: TrainingConfig | None = None,
    ppo_config: PPOConfig | None = None,
    eval_episodes: int = 8,
    workers: int = 1,
    timeout: float | None = None,
    retries: int = 0,
    batched: bool = False,
) -> PopulationResult:
    """Train one agent per scenario variant and pick the best by evaluation.

    ``workers`` follows :class:`ParallelMap` semantics (``0`` = all cores,
    ``1`` = serial).  Any member failing (crash, timeout) raises
    :class:`repro.parallel.ParallelMapError` — a population with silently
    missing members would bias the "best" selection.

    ``batched=True`` runs the whole population in-process on one
    fleet-vectorized simulator (``workers``/``timeout``/``retries`` do not
    apply) — bit-identical results, one ``step_second`` call per
    population step.
    """
    if not variants:
        raise ValueError("need at least one scenario variant")
    training_config = training_config or TrainingConfig()
    ppo_config = ppo_config or PPOConfig()
    if batched:
        return _train_population_batched(
            list(variants),
            root_seed=root_seed,
            training_config=training_config,
            ppo_config=ppo_config,
            eval_episodes=eval_episodes,
        )

    payloads = [
        (i, config, training_config, ppo_config, int(eval_episodes))
        for i, config in enumerate(variants)
    ]
    pool = ParallelMap(
        _train_member,
        workers=workers,
        root_seed=root_seed,
        timeout=timeout,
        retries=retries,
    )
    outcomes = pool.map(payloads)
    failures = [o for o in outcomes if not o.ok]
    if failures:
        from repro.parallel import ParallelMapError

        raise ParallelMapError(failures)

    members = [
        PopulationMember(
            index=i,
            config=variants[i],
            seed=outcome.seed,
            training=outcome.value[0],
            eval_reward=float(outcome.value[1]),
        )
        for i, outcome in enumerate(outcomes)
    ]
    rewards = np.asarray([m.eval_reward for m in members])
    best_index = int(rewards.argmax())  # ties resolve to the lowest index
    return PopulationResult(members=members, best_index=best_index)
