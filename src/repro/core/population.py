"""Population training: K agents on K scenario variants, best-by-eval.

The paper trains one agent on one exploration-derived scenario.  A
population run hedges that choice: each member trains on its own
:class:`~repro.simulator.config.SimulatorConfig` variant (e.g. perturbed
throttle estimates, different buffer provisioning) with fully independent
RNG streams, every trained member is evaluated with a deterministic policy
on its own scenario, and the best evaluation reward wins.

Members are independent, so the population fans out over
:class:`repro.parallel.ParallelMap` — member seeds come from
:func:`repro.parallel.seeds.derive_seed`, a pure function of the root seed
and the member index, which makes ``workers=K`` bit-identical to
``workers=1``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.env import SimulatorEnv
from repro.core.ppo import PPOAgent, PPOConfig
from repro.core.training import TrainingConfig, TrainingResult, train
from repro.parallel import ParallelMap, derive_seed
from repro.simulator.config import SimulatorConfig

__all__ = ["PopulationMember", "PopulationResult", "train_population"]


@dataclass
class PopulationMember:
    """One trained member of the population."""

    index: int
    config: SimulatorConfig
    seed: int
    training: TrainingResult
    eval_reward: float


@dataclass
class PopulationResult:
    """All members plus the evaluation winner."""

    members: list[PopulationMember]
    best_index: int

    @property
    def best(self) -> PopulationMember:
        return self.members[self.best_index]

    def eval_rewards(self) -> list[float]:
        return [m.eval_reward for m in self.members]


def _evaluate(
    agent: PPOAgent, env: SimulatorEnv, episodes: int
) -> float:
    """Mean deterministic episode reward of the *best* training checkpoint."""
    total = 0.0
    for _ in range(episodes):
        state = env.reset()
        for _ in range(env.episode_steps):
            action, _lp = agent.act(state, deterministic=True)
            state, reward, done, _info = env.step(action)
            total += reward
            if done:
                break
    return total / episodes


def _train_member(payload, seed: int) -> tuple[TrainingResult, float]:
    """Train + evaluate one member; runs inside a pool worker.

    ``seed`` is the pool-derived member seed; the env / agent / eval RNG
    streams are split from it with :func:`derive_seed` so they stay
    decorrelated yet reproducible from (root_seed, index) alone.
    """
    index, config, training_config, ppo_config, eval_episodes = payload
    del index  # identification only; determinism comes from ``seed``
    env = SimulatorEnv(config, rng=derive_seed(seed, 0))
    agent = PPOAgent(
        env.state_dim, env.action_dim, ppo_config, rng=derive_seed(seed, 1)
    )
    result = train(agent, env, training_config)

    agent.load_state_dict(result.best_state)
    eval_env = SimulatorEnv(config, rng=derive_seed(seed, 2))
    eval_reward = _evaluate(agent, eval_env, eval_episodes)
    return result, eval_reward


def train_population(
    variants: Sequence[SimulatorConfig],
    *,
    root_seed: int = 0,
    training_config: TrainingConfig | None = None,
    ppo_config: PPOConfig | None = None,
    eval_episodes: int = 8,
    workers: int = 1,
    timeout: float | None = None,
    retries: int = 0,
) -> PopulationResult:
    """Train one agent per scenario variant and pick the best by evaluation.

    ``workers`` follows :class:`ParallelMap` semantics (``0`` = all cores,
    ``1`` = serial).  Any member failing (crash, timeout) raises
    :class:`repro.parallel.ParallelMapError` — a population with silently
    missing members would bias the "best" selection.
    """
    if not variants:
        raise ValueError("need at least one scenario variant")
    training_config = training_config or TrainingConfig()
    ppo_config = ppo_config or PPOConfig()

    payloads = [
        (i, config, training_config, ppo_config, int(eval_episodes))
        for i, config in enumerate(variants)
    ]
    pool = ParallelMap(
        _train_member,
        workers=workers,
        root_seed=root_seed,
        timeout=timeout,
        retries=retries,
    )
    outcomes = pool.map(payloads)
    failures = [o for o in outcomes if not o.ok]
    if failures:
        from repro.parallel import ParallelMapError

        raise ParallelMapError(failures)

    members = [
        PopulationMember(
            index=i,
            config=variants[i],
            seed=outcome.seed,
            training=outcome.value[0],
            eval_reward=float(outcome.value[1]),
        )
        for i, outcome in enumerate(outcomes)
    ]
    rewards = np.asarray([m.eval_reward for m in members])
    best_index = int(rewards.argmax())  # ties resolve to the lowest index
    return PopulationResult(members=members, best_index=best_index)
