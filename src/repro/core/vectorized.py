"""Batched training: N simulator environments per policy forward.

Serial Algorithm-2 training spends most of its wall-clock in per-step
single-state policy forwards.  Batching ``B`` environments turns ``B``
small matmuls into one ``(B, 8) @ (8, 256)`` — the vectorization lever the
hpc-parallel guides point at — and collects ``B`` episodes per PPO update
(the batched-update configuration the serial trainer uses anyway).

Outputs are statistically equivalent to serial training with
``episodes_per_update = B``; see ``benchmarks/bench_vectorized.py`` for the
measured speedup and the training-quality check.
"""

from __future__ import annotations

import time

import numpy as np

from repro.autograd.tensor import no_grad
from repro.core.ppo import PPOAgent
from repro.core.training import TrainingConfig, TrainingResult
from repro.core.utility import UtilityFunction
from repro.simulator.config import SimulatorConfig
from repro.simulator.fluid import FluidBatchSimulator
from repro.utils.config import require_positive
from repro.utils.rng import as_generator


class VectorizedSimulatorEnv:
    """``B`` synchronized copies of the offline-training environment.

    All environments share one scenario (like :class:`SimulatorEnv` without
    a sampler) and reset together — episodes are naturally aligned, which
    keeps return computation a reshape instead of bookkeeping.
    """

    state_dim = 8
    action_dim = 3

    def __init__(
        self,
        config: SimulatorConfig,
        batch_size: int = 8,
        *,
        utility: UtilityFunction | None = None,
        episode_steps: int = 10,
        randomize_initial_buffers: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        require_positive(batch_size, "batch_size")
        self.config = config
        self.batch_size = int(batch_size)
        self.utility = utility or UtilityFunction()
        self.episode_steps = int(episode_steps)
        self.randomize_initial_buffers = randomize_initial_buffers
        self.rng = as_generator(rng)
        self.max_threads = config.max_threads
        self.throughput_scale = config.bottleneck
        self.max_reward = self.utility.max_reward(config.bottleneck, config.optimal_threads())
        self.simulator = FluidBatchSimulator(config, self.batch_size)
        self._step_count = 0
        self._k_pow = None  # cached k**-n table for the reward

    # ------------------------------------------------------------ mechanics
    def _make_states(self, out: dict[str, np.ndarray]) -> np.ndarray:
        n = out["threads"] / self.max_threads
        t = out["throughputs"] / self.throughput_scale
        buffers = np.stack(
            [
                out["sender_free"] / self.config.sender_buffer_capacity,
                out["receiver_free"] / self.config.receiver_buffer_capacity,
            ],
            axis=-1,
        )
        return np.concatenate([n, t, buffers], axis=-1)

    def _rewards(self, out: dict[str, np.ndarray]) -> np.ndarray:
        penal = self.utility.k ** -out["threads"].astype(float)
        utilities = (out["throughputs"] * penal).sum(axis=-1)
        return utilities / self.max_reward

    def actions_to_threads(self, actions: np.ndarray) -> np.ndarray:
        """Normalized (B, 3) actions → integer thread counts."""
        raw = 1.0 + np.asarray(actions, dtype=float) * (self.max_threads - 1)
        return np.clip(np.round(raw), 1, self.max_threads)

    def reset(self) -> np.ndarray:
        """Start a batch of fresh episodes; returns (B, 8) states."""
        self._step_count = 0
        if self.randomize_initial_buffers:
            self.simulator.reset(
                sender_usage=self.rng.uniform(
                    0.0, 0.5 * self.config.sender_buffer_capacity, self.batch_size
                ),
                receiver_usage=self.rng.uniform(
                    0.0, 0.5 * self.config.receiver_buffer_capacity, self.batch_size
                ),
            )
        else:
            self.simulator.reset()
        threads = self.rng.integers(1, self.max_threads + 1, size=(self.batch_size, 3))
        out = self.simulator.step_second(threads.astype(float))
        return self._make_states(out)

    def step(self, actions: np.ndarray) -> tuple[np.ndarray, np.ndarray, bool, dict]:
        """Apply (B, 3) actions for one simulated second everywhere."""
        threads = self.actions_to_threads(actions)
        out = self.simulator.step_second(threads)
        rewards = self._rewards(out)
        self._step_count += 1
        done = self._step_count >= self.episode_steps
        return self._make_states(out), rewards, done, out


def train_vectorized(
    agent: PPOAgent,
    env: VectorizedSimulatorEnv,
    config: TrainingConfig | None = None,
    *,
    max_episode_reward: float | None = None,
) -> TrainingResult:
    """Algorithm 2 with batched rollouts: one update per ``B`` episodes.

    Convergence bookkeeping matches :func:`repro.core.training.train`
    (best-episode tracking, 90%·R_max + stagnation early stop); episode
    counts include every environment in the batch.
    """
    cfg = config or TrainingConfig()
    r_max = (
        float(max_episode_reward)
        if max_episode_reward is not None
        else float(cfg.steps_per_episode)
    )
    target = cfg.convergence_threshold * r_max
    B = env.batch_size

    rewards_log: list[float] = []
    best_reward = -np.inf
    best_episode = -1
    best_state = agent.state_dict()
    stagnant = 0
    converged = False
    convergence_episode: int | None = None
    started = time.perf_counter()

    episode = 0
    total_steps = 0
    while episode < cfg.max_episodes:
        states = env.reset()
        batch_states: list[np.ndarray] = []
        batch_actions: list[np.ndarray] = []
        batch_log_probs: list[np.ndarray] = []
        batch_rewards: list[np.ndarray] = []
        for _ in range(cfg.steps_per_episode):
            with no_grad():
                dist = agent.policy(states)
                actions = dist.sample(agent.rng)
                log_probs = dist.log_prob(actions).data
            next_states, step_rewards, done, _ = env.step(actions)
            batch_states.append(states)
            batch_actions.append(actions)
            batch_log_probs.append(np.asarray(log_probs))
            batch_rewards.append(step_rewards)
            states = next_states
            if done:
                break

        # Store as B consecutive episodes (time-major -> env-major).
        steps = len(batch_rewards)
        total_steps += steps * B
        states_arr = np.stack(batch_states)  # (T, B, 8)
        actions_arr = np.stack(batch_actions)
        lps_arr = np.stack(batch_log_probs)
        rewards_arr = np.stack(batch_rewards)  # (T, B)
        agent.memory.clear()
        for b in range(B):
            for t_i in range(steps):
                agent.memory.store(
                    states_arr[t_i, b], actions_arr[t_i, b],
                    float(lps_arr[t_i, b]), float(rewards_arr[t_i, b]),
                )
            agent.memory.end_episode(agent.config.gamma)
        agent.set_lr_progress(episode / cfg.max_episodes)
        agent.update()
        agent.memory.clear()

        episode_rewards = rewards_arr.sum(axis=0)  # (B,)
        for value in episode_rewards:
            rewards_log.append(float(value))
        batch_best = float(episode_rewards.max())
        if batch_best > best_reward:
            best_reward = batch_best
            best_episode = episode + int(episode_rewards.argmax())
            best_state = agent.state_dict()
            stagnant = 0
        else:
            stagnant += B
        if convergence_episode is None and best_reward >= target:
            convergence_episode = episode
        if best_reward >= target and stagnant >= cfg.stagnation_episodes:
            converged = True
            episode += B
            break
        episode += B

    if best_reward >= target and not converged:
        converged = True

    return TrainingResult(
        episode_rewards=np.asarray(rewards_log),
        best_reward=float(best_reward),
        best_episode=best_episode,
        converged=converged,
        convergence_episode=convergence_episode,
        episodes_run=episode,
        wall_seconds=time.perf_counter() - started,
        best_state=best_state,
        max_episode_reward=r_max,
        steps_per_episode=cfg.steps_per_episode,
        total_steps=total_steps,
    )
