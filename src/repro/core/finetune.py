"""Online fine-tuning of an offline-trained agent (§V-C).

The paper continued training an offline checkpoint *online* for 120
episodes (~2 hours of wall time at 3–5 s per step on a real link) and found
the fine-tuned model used ~1% less concurrency at the same transfer speed —
a negligible gain that justified shipping the offline-only pipeline.  This
module reproduces that experiment against :class:`repro.core.env.TestbedEnv`
on the virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.env import TestbedEnv
from repro.core.ppo import PPOAgent
from repro.core.training import TrainingConfig, TrainingResult, train


@dataclass(frozen=True)
class FinetuneComparison:
    """Before/after statistics of the fine-tuning experiment."""

    base_mean_reward: float
    tuned_mean_reward: float
    base_mean_concurrency: float
    tuned_mean_concurrency: float
    training: TrainingResult

    @property
    def concurrency_reduction(self) -> float:
        """Fractional concurrency saved by fine-tuning (paper: ≈ 0.01)."""
        if self.base_mean_concurrency == 0:
            return 0.0
        return 1.0 - self.tuned_mean_concurrency / self.base_mean_concurrency

    @property
    def reward_change(self) -> float:
        """Relative reward change (paper: ≈ 0, "the same transfer speed")."""
        if self.base_mean_reward == 0:
            return 0.0
        return self.tuned_mean_reward / self.base_mean_reward - 1.0


def promote_if_better(
    incumbent_score: float, candidate_score: float, *, margin: float = 0.0
) -> bool:
    """§V-C deployment gate: promote the candidate only if it beats the incumbent.

    ``margin`` is a fractional hurdle on the incumbent's score magnitude — a
    candidate must win by more than ``|incumbent| · margin`` to displace a
    proven policy (0.0 reproduces the paper's plain comparison).  Shared by
    offline fine-tuning below and the online shadow evaluator
    (:class:`repro.adapt.shadow.ShadowEvaluator`).
    """
    if margin < 0.0:
        raise ValueError(f"margin must be non-negative, got {margin}")
    return candidate_score >= incumbent_score + abs(incumbent_score) * margin


def evaluate_policy(
    agent: PPOAgent, env: TestbedEnv, *, episodes: int = 10, deterministic: bool = True
) -> tuple[float, float]:
    """Mean per-step reward and mean total concurrency over ``episodes``.

    The testbed is reset first: evaluations before and after fine-tuning
    must start from identical buffer state, or the comparison measures the
    junk the training exploration left in the staging buffers instead of
    the policy change.
    """
    env.testbed.reset()
    rewards: list[float] = []
    concurrency: list[float] = []
    for _ in range(episodes):
        state = env.reset()
        for _ in range(env.episode_steps):
            action, _ = agent.act(state, deterministic=deterministic)
            state, reward, done, info = env.step(action)
            rewards.append(reward)
            concurrency.append(float(sum(info["threads"])))
            if done:
                break
    return float(np.mean(rewards)), float(np.mean(concurrency))


def finetune_online(
    agent: PPOAgent,
    env: TestbedEnv,
    *,
    episodes: int = 120,
    eval_episodes: int = 10,
    learning_rate: float = 3e-5,
) -> FinetuneComparison:
    """Fine-tune ``agent`` online for ``episodes`` episodes and compare.

    The paper's protocol: 120 online episodes, then compare concurrency
    usage and speed against the purely offline model.  Two production
    realities are applied:

    * fine-tuning runs at a reduced ``learning_rate`` — resuming a
      converged policy at the full training rate tears it apart long
      before 120 episodes of online data could rebuild it;
    * the candidate is evaluated against the incumbent before deployment
      (the utility-based reward already folds in the concurrency penalty),
      so a fine-tune that drifted on 1,200 noisy online samples never
      replaces a better offline model.
    """
    with obs.span("pipeline/fine-tune", episodes=episodes, learning_rate=learning_rate):
        return _finetune(agent, env, episodes, eval_episodes, learning_rate)


def _finetune(
    agent: PPOAgent,
    env: TestbedEnv,
    episodes: int,
    eval_episodes: int,
    learning_rate: float,
) -> FinetuneComparison:
    base_snapshot = agent.state_dict()
    base_reward, base_concurrency = evaluate_policy(agent, env, episodes=eval_episodes)
    cfg = TrainingConfig(
        max_episodes=episodes,
        steps_per_episode=env.episode_steps,
        stagnation_episodes=max(episodes, 1),  # never early-stop a short fine-tune
    )
    import dataclasses

    agent.config = dataclasses.replace(
        agent.config, learning_rate=learning_rate, final_learning_rate=learning_rate
    )
    agent.set_lr_progress(0.0)
    result = train(agent, env, cfg)
    # Candidate = best state seen online; deploy only if it evaluates at
    # least as well as the incumbent offline model.
    agent.load_state_dict(result.best_state)
    tuned_reward, tuned_concurrency = evaluate_policy(agent, env, episodes=eval_episodes)
    if not promote_if_better(base_reward, tuned_reward):
        agent.load_state_dict(base_snapshot)
        tuned_reward, tuned_concurrency = evaluate_policy(agent, env, episodes=eval_episodes)
    return FinetuneComparison(
        base_mean_reward=base_reward,
        tuned_mean_reward=tuned_reward,
        base_mean_concurrency=base_concurrency,
        tuned_mean_concurrency=tuned_concurrency,
        training=result,
    )
