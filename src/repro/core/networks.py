"""The AutoMDT policy and value networks, §IV-D3/4.

Policy (actor): input → Linear(→256) → tanh → 3 × residual blocks
(Linear/LayerNorm/ReLU ×2 + skip) → tanh → Linear(→3) for the action mean;
a learnable log-standard-deviation vector, clamped to a sane range, is
exponentiated to give the Gaussian's σ.

Value (critic): input → Linear(→256) → tanh → 2 × Tanh residual blocks
(plain linear, no LayerNorm) → Linear(→1).
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, clip, tanh
from repro.nn.distributions import DiagonalGaussian
from repro.nn.layers import Linear, Sequential, Tanh
from repro.nn.module import Module, Parameter
from repro.nn.residual import ResidualBlock
from repro.utils.rng import as_generator


class PolicyNetwork(Module):
    """Gaussian policy with residual trunk (the actor)."""

    def __init__(
        self,
        state_dim: int = 8,
        action_dim: int = 3,
        hidden_dim: int = 256,
        num_blocks: int = 3,
        *,
        log_std_init: float = -1.0,
        log_std_range: tuple[float, float] = (-4.0, 0.5),
        mean_center: float = 0.5,
        mean_span: float = 0.75,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = as_generator(rng)
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.log_std_range = log_std_range
        self.mean_center = mean_center
        self.mean_span = mean_span
        self.embed = Linear(state_dim, hidden_dim, rng=rng)
        self.blocks = Sequential(
            *(ResidualBlock(hidden_dim, activation="relu", layer_norm=True, rng=rng)
              for _ in range(num_blocks))
        )
        self.mean_head = Linear(hidden_dim, action_dim, rng=rng, gain=0.01)
        self.log_std = Parameter(np.full(action_dim, float(log_std_init)), name="log_std")

    def forward(self, states) -> DiagonalGaussian:
        """Map (batched or single) states to an action distribution.

        The mean is squashed to ``center ± span`` with a tanh: an unbounded
        linear mean combined with action clamping lets the mean random-walk
        far past the boundary where the reward surface is flat (the policy
        then takes thousands of episodes to walk back).  Bounding it to just
        beyond the valid normalized action range removes that failure mode
        while keeping the paper's architecture otherwise intact.
        """
        x = states if isinstance(states, Tensor) else Tensor(np.asarray(states, dtype=float))
        x = tanh(self.embed(x))
        x = self.blocks(x)
        x = tanh(x)
        mean = tanh(self.mean_head(x)) * self.mean_span + self.mean_center
        log_std = clip(self.log_std, *self.log_std_range)
        return DiagonalGaussian(mean, log_std)


class ValueNetwork(Module):
    """State-value estimator with Tanh residual trunk (the critic)."""

    def __init__(
        self,
        state_dim: int = 8,
        hidden_dim: int = 256,
        num_blocks: int = 2,
        *,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = as_generator(rng)
        self.state_dim = state_dim
        self.embed = Linear(state_dim, hidden_dim, rng=rng)
        self.trunk = Sequential(
            Tanh(),
            *(ResidualBlock(hidden_dim, activation="tanh", layer_norm=False, rng=rng)
              for _ in range(num_blocks)),
        )
        self.head = Linear(hidden_dim, 1, rng=rng, gain=1.0)

    def forward(self, states) -> Tensor:
        """Estimated return per state; shape ``(batch,)`` (or scalar)."""
        x = states if isinstance(states, Tensor) else Tensor(np.asarray(states, dtype=float))
        x = self.trunk(self.embed(x))
        out = self.head(x)
        if out.ndim >= 1 and out.shape[-1] == 1:
            squeezed_shape = out.shape[:-1] if out.ndim > 1 else ()
            out = out.reshape(*squeezed_shape) if squeezed_shape else out.reshape(1)[0]
        return out
