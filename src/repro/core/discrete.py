"""Discrete-action PPO variants (§V-A, Fig. 4).

The paper experimented with a discrete action space and reports that it
"failed miserably" — "each additional parameter increases the search space
exponentially" (§IV).  Two designs are implemented:

* :class:`JointDiscretePPOAgent` — one Categorical over all ``n_max³``
  thread triples: the naive exponential action space the paper's remark
  describes.  This is the variant that fails (see
  ``benchmarks/bench_figure4.py``): a flat softmax over tens of thousands
  of unordered actions cannot exploit the ordinal structure of thread
  counts, so exploration stalls.
* :class:`DiscretePPOAgent` — three *factorized* Categorical heads (one per
  stage).  Interestingly, this smarter discretization **does** converge
  under our training loop — a reproduction finding recorded in
  EXPERIMENTS.md: the failure is a property of the joint design, not of
  discreteness per se.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, no_grad, tanh
from repro.core.ppo import PPOConfig, RolloutMemory
from repro.nn.distributions import Categorical
from repro.nn.layers import Linear, Sequential
from repro.nn.module import Module
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.residual import ResidualBlock
from repro.core.networks import ValueNetwork
from repro.utils.rng import as_generator


class DiscretePolicyNetwork(Module):
    """Shared residual trunk with three Categorical heads (read/net/write)."""

    def __init__(
        self,
        state_dim: int = 8,
        max_threads: int = 30,
        hidden_dim: int = 256,
        num_blocks: int = 3,
        *,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = as_generator(rng)
        self.state_dim = state_dim
        self.max_threads = int(max_threads)
        self.embed = Linear(state_dim, hidden_dim, rng=rng)
        self.blocks = Sequential(
            *(ResidualBlock(hidden_dim, activation="relu", layer_norm=True, rng=rng)
              for _ in range(num_blocks))
        )
        self.head_read = Linear(hidden_dim, self.max_threads, rng=rng, gain=0.01)
        self.head_network = Linear(hidden_dim, self.max_threads, rng=rng, gain=0.01)
        self.head_write = Linear(hidden_dim, self.max_threads, rng=rng, gain=0.01)

    def forward(self, states) -> tuple[Categorical, Categorical, Categorical]:
        """Three independent categorical distributions over ``1..n_max``.

        Category index ``i`` means ``i + 1`` threads.
        """
        x = states if isinstance(states, Tensor) else Tensor(np.asarray(states, dtype=float))
        x = tanh(self.embed(x))
        x = self.blocks(x)
        x = tanh(x)
        return (
            Categorical(self.head_read(x)),
            Categorical(self.head_network(x)),
            Categorical(self.head_write(x)),
        )


class DiscretePPOAgent:
    """PPO over the categorical action space; drop-in for training loops.

    Actions are integer triples of *category indices* (0-based); the
    environment adapter must add 1 to get thread counts — use
    :class:`DiscreteActionAdapter`.
    """

    def __init__(
        self,
        state_dim: int = 8,
        max_threads: int = 30,
        config: PPOConfig | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.config = config or PPOConfig()
        self.rng = as_generator(rng)
        cfg = self.config
        self.max_threads = int(max_threads)
        self.policy = DiscretePolicyNetwork(
            state_dim, max_threads, cfg.hidden_dim, cfg.policy_blocks, rng=self.rng
        )
        self.value = ValueNetwork(state_dim, cfg.hidden_dim, cfg.value_blocks, rng=self.rng)
        self.optimizer = Adam(
            self.policy.parameters() + self.value.parameters(), lr=cfg.learning_rate
        )
        self.memory = RolloutMemory()

    def set_lr_progress(self, fraction: float) -> None:
        """Linearly anneal the learning rate; ``fraction`` in [0, 1]."""
        fraction = min(1.0, max(0.0, fraction))
        cfg = self.config
        self.optimizer.lr = cfg.learning_rate + fraction * (
            cfg.final_learning_rate - cfg.learning_rate
        )

    def state_dict(self) -> dict:
        """All learnable state (policy + value)."""
        return {"policy": self.policy.state_dict(), "value": self.value.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        """Restore from :meth:`state_dict` output."""
        self.policy.load_state_dict(state["policy"])
        self.value.load_state_dict(state["value"])

    def act(self, state: np.ndarray, *, deterministic: bool = False) -> tuple[np.ndarray, float]:
        """Sample a category triple; returns ``(indices, joint log_prob)``."""
        with no_grad():
            dists = self.policy(np.asarray(state, dtype=float))
            if deterministic:
                idx = np.array([int(d.mode()) for d in dists])
            else:
                idx = np.array([int(d.sample(self.rng)) for d in dists])
            log_prob = sum(float(d.log_prob(i).data) for d, i in zip(dists, idx))
        return idx, float(log_prob)

    def update(self) -> dict[str, float]:
        """PPO update with joint (summed) categorical log-probs."""
        cfg = self.config
        states, actions, old_log_probs, returns = self.memory.arrays()
        returns_t = Tensor(returns)
        actions = actions.astype(int)

        stats: dict[str, float] = {}
        for _ in range(cfg.update_epochs):
            dists = self.policy(states)
            log_probs = (
                dists[0].log_prob(actions[:, 0])
                + dists[1].log_prob(actions[:, 1])
                + dists[2].log_prob(actions[:, 2])
            )
            entropy = (dists[0].entropy() + dists[1].entropy() + dists[2].entropy()).mean()

            values = self.value(states)
            advantages = returns - values.data
            if cfg.normalize_advantages and len(advantages) > 1:
                advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
            advantages_t = Tensor(advantages)

            from repro.autograd.tensor import clip as _clip
            from repro.autograd.tensor import exp as _exp
            from repro.autograd.tensor import minimum as _minimum

            ratio = _exp(log_probs - Tensor(old_log_probs))
            surr1 = ratio * advantages_t
            surr2 = _clip(ratio, 1.0 - cfg.clip_epsilon, 1.0 + cfg.clip_epsilon) * advantages_t
            actor_loss = -_minimum(surr1, surr2).mean()
            diff = values - returns_t
            critic_loss = (diff * diff).mean() * 0.5
            loss = actor_loss + critic_loss * cfg.critic_coef - entropy * cfg.entropy_coef

            self.optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(self.optimizer.parameters, cfg.max_grad_norm)
            self.optimizer.step()
            stats = {
                "loss": loss.item(),
                "actor_loss": actor_loss.item(),
                "critic_loss": critic_loss.item(),
                "entropy": entropy.item(),
                "mean_return": float(returns.mean()),
            }
        return stats


class JointDiscretePolicyNetwork(Module):
    """Single Categorical head over every ``n_max³`` thread triple."""

    def __init__(
        self,
        state_dim: int = 8,
        max_threads: int = 30,
        hidden_dim: int = 256,
        num_blocks: int = 3,
        *,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = as_generator(rng)
        self.state_dim = state_dim
        self.max_threads = int(max_threads)
        self.num_actions = self.max_threads**3
        if self.num_actions > 2**19:
            raise ValueError(
                f"joint discrete space of {self.num_actions} actions is too large; "
                "use the factorized DiscretePolicyNetwork"
            )
        self.embed = Linear(state_dim, hidden_dim, rng=rng)
        self.blocks = Sequential(
            *(ResidualBlock(hidden_dim, activation="relu", layer_norm=True, rng=rng)
              for _ in range(num_blocks))
        )
        self.head = Linear(hidden_dim, self.num_actions, rng=rng, gain=0.01)

    def forward(self, states) -> Categorical:
        """One categorical over all triples; index ``i`` decodes via divmod."""
        x = states if isinstance(states, Tensor) else Tensor(np.asarray(states, dtype=float))
        x = tanh(self.embed(x))
        x = self.blocks(x)
        x = tanh(x)
        return Categorical(self.head(x))

    def decode(self, index) -> np.ndarray:
        """Flat action index → (n_r, n_n, n_w) thread triple (1-based)."""
        index = np.asarray(index, dtype=int)
        n = self.max_threads
        return np.stack([index // (n * n) + 1, (index // n) % n + 1, index % n + 1], axis=-1)


class JointDiscretePPOAgent:
    """PPO over the joint (exponential) discrete action space."""

    def __init__(
        self,
        state_dim: int = 8,
        max_threads: int = 30,
        config: PPOConfig | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.config = config or PPOConfig()
        self.rng = as_generator(rng)
        cfg = self.config
        self.max_threads = int(max_threads)
        self.policy = JointDiscretePolicyNetwork(
            state_dim, max_threads, cfg.hidden_dim, cfg.policy_blocks, rng=self.rng
        )
        self.value = ValueNetwork(state_dim, cfg.hidden_dim, cfg.value_blocks, rng=self.rng)
        self.optimizer = Adam(
            self.policy.parameters() + self.value.parameters(), lr=cfg.learning_rate
        )
        self.memory = RolloutMemory()

    def set_lr_progress(self, fraction: float) -> None:
        """Linearly anneal the learning rate; ``fraction`` in [0, 1]."""
        fraction = min(1.0, max(0.0, fraction))
        cfg = self.config
        self.optimizer.lr = cfg.learning_rate + fraction * (
            cfg.final_learning_rate - cfg.learning_rate
        )

    def act(self, state: np.ndarray, *, deterministic: bool = False) -> tuple[np.ndarray, float]:
        """Sample a flat action index; returns ``([index], log_prob)``."""
        with no_grad():
            dist = self.policy(np.asarray(state, dtype=float))
            idx = int(dist.mode()) if deterministic else int(dist.sample(self.rng))
            log_prob = float(dist.log_prob(idx).data)
        return np.array([idx]), log_prob

    def update(self) -> dict[str, float]:
        """PPO update over the flat categorical."""
        cfg = self.config
        states, actions, old_log_probs, returns = self.memory.arrays()
        returns_t = Tensor(returns)
        indices = actions.astype(int).reshape(-1)

        stats: dict[str, float] = {}
        for _ in range(cfg.update_epochs):
            dist = self.policy(states)
            log_probs = dist.log_prob(indices)
            entropy = dist.entropy().mean()
            values = self.value(states)
            advantages = returns - values.data
            if cfg.normalize_advantages and len(advantages) > 1:
                advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
            advantages_t = Tensor(advantages)

            from repro.autograd.tensor import clip as _clip
            from repro.autograd.tensor import exp as _exp
            from repro.autograd.tensor import minimum as _minimum

            ratio = _exp(log_probs - Tensor(old_log_probs))
            surr1 = ratio * advantages_t
            surr2 = _clip(ratio, 1.0 - cfg.clip_epsilon, 1.0 + cfg.clip_epsilon) * advantages_t
            actor_loss = -_minimum(surr1, surr2).mean()
            diff = values - returns_t
            critic_loss = (diff * diff).mean() * 0.5
            loss = actor_loss + critic_loss * cfg.critic_coef - entropy * cfg.entropy_coef

            self.optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(self.optimizer.parameters, cfg.max_grad_norm)
            self.optimizer.step()
            stats = {
                "loss": loss.item(),
                "actor_loss": actor_loss.item(),
                "critic_loss": critic_loss.item(),
                "entropy": entropy.item(),
                "mean_return": float(returns.mean()),
            }
        return stats

    def state_dict(self) -> dict:
        """All learnable state (policy + value)."""
        return {"policy": self.policy.state_dict(), "value": self.value.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        """Restore from :meth:`state_dict` output."""
        self.policy.load_state_dict(state["policy"])
        self.value.load_state_dict(state["value"])


class JointDiscreteActionAdapter:
    """Env wrapper: flat joint indices become thread triples."""

    def __init__(self, env, max_threads: int) -> None:
        self.env = env
        self.max_threads = int(max_threads)
        self.state_dim = env.state_dim
        self.action_dim = 1

    def _decode(self, action) -> np.ndarray:
        idx = int(np.asarray(action).reshape(-1)[0])
        n = self.max_threads
        return np.array([idx // (n * n) + 1, (idx // n) % n + 1, idx % n + 1], dtype=float)

    def reset(self) -> np.ndarray:
        """Delegate to the wrapped environment."""
        return self.env.reset()

    def step(self, action):
        """Interpret ``action`` as a flat joint index."""
        threads = self._decode(action)
        previous_mode = self.env.action_mode
        self.env.action_mode = "direct"
        try:
            return self.env.step(threads)
        finally:
            self.env.action_mode = previous_mode


class DiscreteActionAdapter:
    """Wraps an env so category indices (0-based) become thread counts.

    Lets :func:`repro.core.training.train` drive a :class:`DiscretePPOAgent`
    unchanged: the adapter forces ``action_mode`` semantics of
    ``threads = index + 1``.
    """

    def __init__(self, env) -> None:
        self.env = env
        self.state_dim = env.state_dim
        self.action_dim = env.action_dim

    def reset(self) -> np.ndarray:
        """Delegate to the wrapped environment."""
        return self.env.reset()

    def step(self, action) -> tuple[np.ndarray, float, bool, dict]:
        """Interpret ``action`` as 0-based category indices."""
        threads = np.asarray(action, dtype=int) + 1
        previous_mode = self.env.action_mode
        self.env.action_mode = "direct"
        try:
            return self.env.step(threads.astype(float))
        finally:
            self.env.action_mode = previous_mode
