"""The AutoMDT facade: explore → train offline → deploy.

One object wires the full pipeline of Fig. 2 together:

>>> automdt = AutoMDT(seed=7)
>>> profile = automdt.explore(testbed, duration=60)      # §IV-A logging run
>>> result = automdt.train_offline()                     # Algorithm 2 in the
...                                                      # Algorithm-1 simulator
>>> controller = automdt.controller()                    # §IV-F production
>>> ModularTransferEngine(testbed, dataset, controller).run()
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import obs
from repro.core.checkpoint import CheckpointMeta, load_checkpoint, save_checkpoint
from repro.core.env import SimulatorEnv
from repro.core.exploration import ExplorationProfile, run_exploration
from repro.core.ppo import PPOAgent, PPOConfig
from repro.core.production import AutoMDTController
from repro.core.training import TrainingConfig, TrainingResult, train
from repro.core.utility import DEFAULT_K, UtilityFunction
from repro.emulator.testbed import Testbed
from repro.utils.errors import ConfigError
from repro.utils.rng import RngFactory


class AutoMDT:
    """End-to-end AutoMDT pipeline.

    Parameters
    ----------
    k:
        Utility penalty base (paper fixes 1.02).
    ppo_config, training_config:
        Hyper-parameters; defaults are the scaled-down profiles described in
        EXPERIMENTS.md.  ``TrainingConfig(max_episodes=30000,
        stagnation_episodes=1000)`` reproduces the paper-scale budget.
    action_mode:
        ``"normalized"`` (default) or ``"direct"`` — see
        :mod:`repro.core.env`.
    """

    def __init__(
        self,
        *,
        k: float = DEFAULT_K,
        ppo_config: PPOConfig | None = None,
        training_config: TrainingConfig | None = None,
        action_mode: str = "normalized",
        seed: int = 0,
    ) -> None:
        self.utility = UtilityFunction(k)
        self.ppo_config = ppo_config or PPOConfig()
        self.training_config = training_config or TrainingConfig()
        self.action_mode = action_mode
        self._rngs = RngFactory(seed)
        self.profile: ExplorationProfile | None = None
        self.agent: PPOAgent | None = None
        self.training_result: TrainingResult | None = None

    # ------------------------------------------------------------ exploration
    def explore(self, testbed: Testbed, *, duration: float = 600.0) -> ExplorationProfile:
        """Run the §IV-A random-threads logging phase on ``testbed``."""
        with obs.span("pipeline/exploration", duration=duration):
            self.profile = run_exploration(
                testbed, duration=duration, rng=self._rngs.stream("exploration")
            )
        return self.profile

    def set_profile(self, profile: ExplorationProfile) -> None:
        """Install a previously-measured (or synthetic) exploration profile."""
        self.profile = profile

    # --------------------------------------------------------------- training
    def make_training_env(self, **env_kwargs) -> SimulatorEnv:
        """The offline-training environment seeded from the profile."""
        if self.profile is None:
            raise ConfigError("run explore() or set_profile() before training")
        return SimulatorEnv.from_profile(
            self.profile,
            utility=self.utility,
            episode_steps=self.training_config.steps_per_episode,
            action_mode=self.action_mode,
            rng=self._rngs.stream("env"),
            **env_kwargs,
        )

    def train_offline(self, env: SimulatorEnv | None = None) -> TrainingResult:
        """Algorithm 2 in the Algorithm-1 simulator; keeps the best model."""
        with obs.span("pipeline/simulator-training"):
            env = env or self.make_training_env()
            self.agent = PPOAgent(
                env.state_dim, env.action_dim, self.ppo_config, rng=self._rngs.stream("agent")
            )
            self.training_result = train(
                self.agent,
                env,
                self.training_config,
                max_episode_reward=float(self.training_config.steps_per_episode),
            )
            # Production deploys the best checkpoint (§IV-F), not the last state.
            self.agent.load_state_dict(self.training_result.best_state)
        return self.training_result

    # -------------------------------------------------------------- deployment
    def controller(self, *, deterministic: bool = True) -> AutoMDTController:
        """Production controller over the trained policy (§IV-F)."""
        if self.agent is None or self.profile is None:
            raise ConfigError("train_offline() (or load()) must run before deployment")
        obs.event(
            "pipeline/deployment",
            deterministic=deterministic,
            max_threads=self.profile.max_threads,
        )
        return AutoMDTController(
            self.agent.policy,
            max_threads=self.profile.max_threads,
            throughput_scale=self.profile.bottleneck,
            action_mode=self.action_mode,
            deterministic=deterministic,
            rng=self._rngs.stream("production"),
        )

    # ------------------------------------------------------------- persistence
    def save(self, path: str | Path) -> None:
        """Persist weights + deployment metadata + profile."""
        if self.agent is None or self.profile is None:
            raise ConfigError("nothing to save: train_offline() first")
        meta = CheckpointMeta(
            max_threads=self.profile.max_threads,
            throughput_scale=self.profile.bottleneck,
            action_mode=self.action_mode,
            utility_k=self.utility.k,
        )
        save_checkpoint(path, self.agent, meta)
        import json

        Path(path).with_suffix(".profile.json").write_text(
            json.dumps(self.profile.to_dict(), indent=2)
        )

    def load(self, path: str | Path) -> None:
        """Restore a pipeline saved by :meth:`save`."""
        import json

        self.agent, meta = load_checkpoint(path, rng=self._rngs.stream("agent"))
        self.utility = UtilityFunction(meta.utility_k)
        self.action_mode = meta.action_mode
        profile_path = Path(path).with_suffix(".profile.json")
        if profile_path.exists():
            self.profile = ExplorationProfile.from_dict(json.loads(profile_path.read_text()))

    @property
    def max_reward(self) -> float:
        """Per-step ``R_max`` from the current profile."""
        if self.profile is None:
            raise ConfigError("no exploration profile available")
        return self.profile.max_reward(self.utility)


def default_rng_for(seed: int) -> np.random.Generator:  # pragma: no cover - helper
    """Deterministic generator helper used by examples."""
    return np.random.default_rng(seed)
