"""The exploration-and-logging phase, §IV-A.

A 10-minute "random-threads" run: every second the engine applies a random
concurrency triple and logs thread counts and per-stage throughputs.  From
the log we keep the per-stage bandwidth ceilings

``B_i = max T_i``

and per-thread throughputs

``TPT_i = max T_i / n_i``,

define the end-to-end bottleneck ``b = min(B_r, B_n, B_w)``, and — assuming
near-linear scaling up to the bottleneck — derive the thread counts needed
to hit it, ``n_i* = b / TPT_i``.  The resulting
:class:`ExplorationProfile` seeds the offline-training simulator and the
convergence criterion's ``R_max``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.utility import UtilityFunction
from repro.emulator.testbed import Testbed
from repro.utils.config import require_positive
from repro.utils.errors import SimulationError
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class ExplorationProfile:
    """What the logging phase learned about the environment.

    Rates in Mbps; ``samples`` is the number of one-second probes.
    """

    bandwidth: tuple[float, float, float]
    tpt: tuple[float, float, float]
    sender_buffer_capacity: float
    receiver_buffer_capacity: float
    max_threads: int
    samples: int

    @property
    def bottleneck(self) -> float:
        """End-to-end bottleneck ``b = min(B_r, B_n, B_w)``."""
        return min(self.bandwidth)

    def optimal_threads(self) -> tuple[int, int, int]:
        """``n_i* = ceil(b / TPT_i)``, clamped to ``[1, max_threads]``."""
        b = self.bottleneck
        return tuple(
            int(min(self.max_threads, max(1, math.ceil(b / tpt)))) for tpt in self.tpt
        )  # type: ignore[return-value]

    def max_reward(self, utility: UtilityFunction) -> float:
        """``R_max`` for the convergence criterion (§IV-E)."""
        return utility.max_reward(self.bottleneck, self.optimal_threads())

    def to_dict(self) -> dict:
        """JSON-friendly form."""
        return {
            "bandwidth": list(self.bandwidth),
            "tpt": list(self.tpt),
            "sender_buffer_capacity": self.sender_buffer_capacity,
            "receiver_buffer_capacity": self.receiver_buffer_capacity,
            "max_threads": self.max_threads,
            "samples": self.samples,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExplorationProfile":
        """Inverse of :meth:`to_dict`."""
        return cls(
            bandwidth=tuple(data["bandwidth"]),
            tpt=tuple(data["tpt"]),
            sender_buffer_capacity=data["sender_buffer_capacity"],
            receiver_buffer_capacity=data["receiver_buffer_capacity"],
            max_threads=data["max_threads"],
            samples=data["samples"],
        )


def run_exploration(
    testbed: Testbed,
    *,
    duration: float = 600.0,
    rng: int | np.random.Generator | None = None,
    probe_interval: float = 1.0,
) -> ExplorationProfile:
    """Run the random-threads logging phase on ``testbed``.

    The testbed is reset first and left dirty afterwards (callers reset
    before the production transfer, as the real pipeline would restart its
    data plane).  The default ``duration`` of 600 s is the paper's
    10-minute run; tests use much shorter windows.
    """
    require_positive(duration, "duration")
    rng = as_generator(rng)
    testbed.reset()
    n_max = testbed.config.max_threads

    best_bandwidth = np.zeros(3)
    best_tpt = np.zeros(3)
    steps = int(round(duration / probe_interval))
    if steps <= 0:
        raise SimulationError(f"duration {duration} too short for probe interval {probe_interval}")

    for _ in range(steps):
        threads = tuple(int(v) for v in rng.integers(1, n_max + 1, size=3))
        flows = testbed.advance(threads, probe_interval)
        observed = np.asarray(flows.throughputs)
        np.maximum(best_bandwidth, observed, out=best_bandwidth)
        np.maximum(best_tpt, observed / np.asarray(threads, dtype=float), out=best_tpt)

    if (best_bandwidth <= 0).any():
        raise SimulationError(
            "exploration observed zero throughput on some stage; "
            "run longer or check the testbed configuration"
        )

    return ExplorationProfile(
        bandwidth=tuple(float(v) for v in best_bandwidth),
        tpt=tuple(float(v) for v in best_tpt),
        sender_buffer_capacity=testbed.sender_buffer.capacity,
        receiver_buffer_capacity=testbed.receiver_buffer.capacity,
        max_threads=n_max,
        samples=steps,
    )
