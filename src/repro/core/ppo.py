"""The PPO agent (Algorithm 2's actor-critic update).

Faithful to the paper's loss:

* discounted returns ``G_t = r_t + γ G_{t+1}``;
* advantages ``A_t = G_t − V_φ(s_t)`` (no GAE);
* clipped surrogate ``−min(r_t A_t, clip(r_t, 1−ε, 1+ε) A_t)``;
* critic term ``0.5 · MSE(G_t, V_φ(s_t))``;
* entropy bonus ``−0.1 · entropy``;
* a single Adam optimizer over both networks; old policy synced after the
  update.

Deviations exposed as configuration (see EXPERIMENTS.md for the study):

* ``update_epochs`` (default 4): the paper does one gradient pass per
  episode, where the ratio against the just-synced old policy starts at 1
  and the clip is inert; re-walking the batch makes the clip active and
  converges in fewer episodes.  Set 1 for the literal behaviour.
* ``entropy_coef`` (default 1e-3): the paper's 0.1 applies to *raw-utility*
  rewards in the thousands of Mbps; our environments normalize rewards by
  ``R_max`` to O(1), so the equivalent relative weight is ~1e-3.  Using 0.1
  at normalized scale freezes σ near its init and stalls convergence.
* ``gamma`` (default 0.5): Algorithm 2 leaves γ unspecified.  The 8-dim
  state carries no time-to-go, so with γ near 1 the finite-horizon returns
  alias states and swamp advantages with time-structured noise; moderate
  discounting matches the mostly-immediate reward structure of the task.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.autograd.tensor import Tensor, clip, exp, minimum, no_grad
from repro.core.networks import PolicyNetwork, ValueNetwork
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.plan import PolicyPlan, ValuePlan
from repro.utils.config import require_in_range, require_positive
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class PPOConfig:
    """Hyper-parameters of Algorithm 2."""

    learning_rate: float = 2e-3
    final_learning_rate: float = 1e-4  # linear decay target; set equal to learning_rate to disable
    gamma: float = 0.5
    clip_epsilon: float = 0.2
    entropy_coef: float = 1e-3
    critic_coef: float = 1.0  # multiplies the 0.5·MSE critic term
    update_epochs: int = 4
    max_grad_norm: float = 0.5
    hidden_dim: int = 256
    policy_blocks: int = 3
    value_blocks: int = 2
    log_std_init: float = -1.0
    log_std_range: tuple[float, float] = (-4.0, 0.5)
    normalize_advantages: bool = True

    def __post_init__(self) -> None:
        require_positive(self.learning_rate, "learning_rate")
        require_in_range(self.gamma, 0.0, 1.0, "gamma")
        require_in_range(self.clip_epsilon, 0.0, 1.0, "clip_epsilon")
        require_positive(self.update_epochs, "update_epochs")
        require_positive(self.hidden_dim, "hidden_dim")


class RolloutMemory:
    """Episode storage ``M`` of (state, action, log-prob, reward).

    Holds one *or more* complete episodes between updates; call
    :meth:`end_episode` at each episode boundary so discounted returns never
    bleed across episodes.
    """

    def __init__(self) -> None:
        self.states: list[np.ndarray] = []
        self.actions: list[np.ndarray] = []
        self.log_probs: list[float] = []
        self.rewards: list[float] = []
        self.returns: list[float] = []
        self._episode_start = 0

    def store(self, state: np.ndarray, action: np.ndarray, log_prob: float, reward: float) -> None:
        """Append one transition."""
        self.states.append(np.asarray(state, dtype=float))
        self.actions.append(np.asarray(action, dtype=float))
        self.log_probs.append(float(log_prob))
        self.rewards.append(float(reward))

    def end_episode(self, gamma: float) -> None:
        """Convert the rewards of the just-finished episode into returns."""
        segment = np.asarray(self.rewards[self._episode_start:])
        self.returns.extend(discounted_returns(segment, gamma).tolist())
        self._episode_start = len(self.rewards)

    def clear(self) -> None:
        """Drop all stored transitions (after an update)."""
        self.states.clear()
        self.actions.clear()
        self.log_probs.clear()
        self.rewards.clear()
        self.returns.clear()
        self._episode_start = 0

    def __len__(self) -> int:
        return len(self.states)

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Batched ``(states, actions, old_log_probs, returns)``.

        Any trailing episode without an :meth:`end_episode` call is closed
        implicitly with ``gamma`` unavailable — callers must end episodes
        first; a mismatch raises.
        """
        if len(self.returns) != len(self.rewards):
            raise RuntimeError(
                "end_episode() must be called after every episode before update()"
            )
        return (
            np.stack(self.states),
            np.stack(self.actions),
            np.asarray(self.log_probs),
            np.asarray(self.returns),
        )


#: Smallest positive normal float64 — the vectorized-returns exactness guard.
_MIN_NORMAL = float(np.finfo(np.float64).tiny)


def discounted_returns(rewards: np.ndarray, gamma: float) -> np.ndarray:
    """``G_t = r_t + γ G_{t+1}`` computed right-to-left (vectorized tail).

    For a power-of-two ``gamma`` (the default 0.5 included) the recursion
    vectorizes *exactly*: with ``γ = 2^k``, scaling by ``γ^j`` is a pure
    exponent shift, so ``G_t = γ^{-t} · cumsum-from-right(γ^j r_j)`` is
    bit-identical to the Horner loop as long as every scaled value stays
    in the normal float range (rounding commutes with power-of-two
    scaling there).  Guards check exactly that — pre-scale round-trip,
    normal-or-zero partial sums, finite results — and fall back to the
    loop oracle otherwise (non-power-of-two γ, extreme magnitudes).
    """
    rewards = np.asarray(rewards, dtype=float)
    n = len(rewards)
    g = float(gamma)
    if n > 1 and g > 0.0:
        mantissa, exponent = math.frexp(g)
        k = exponent - 1
        if mantissa == 0.5 and (n - 1) * abs(k) <= 960:
            j = np.arange(n)
            scale = np.ldexp(1.0, j * k)
            inv_scale = np.ldexp(1.0, -j * k)
            scaled = rewards * scale
            if np.array_equal(scaled * inv_scale, rewards):
                tails = np.cumsum(scaled[::-1])[::-1]
                if np.all((tails == 0.0) | (np.abs(tails) >= _MIN_NORMAL)):
                    returns = tails * inv_scale
                    if np.all(np.isfinite(returns)):
                        return returns
    returns = np.empty_like(rewards, dtype=float)
    running = 0.0
    for t in range(n - 1, -1, -1):
        running = rewards[t] + gamma * running
        returns[t] = running
    return returns


class PPOAgent:
    """Actor-critic PPO over the 8-dim concurrency state space."""

    def __init__(
        self,
        state_dim: int = 8,
        action_dim: int = 3,
        config: PPOConfig | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.config = config or PPOConfig()
        self.rng = as_generator(rng)
        cfg = self.config
        self.policy = PolicyNetwork(
            state_dim,
            action_dim,
            cfg.hidden_dim,
            cfg.policy_blocks,
            log_std_init=cfg.log_std_init,
            log_std_range=cfg.log_std_range,
            rng=self.rng,
        )
        self.policy_old = PolicyNetwork(
            state_dim,
            action_dim,
            cfg.hidden_dim,
            cfg.policy_blocks,
            log_std_init=cfg.log_std_init,
            log_std_range=cfg.log_std_range,
            rng=self.rng,
        )
        self.policy_old.copy_from(self.policy)
        self.value = ValueNetwork(state_dim, cfg.hidden_dim, cfg.value_blocks, rng=self.rng)
        self.optimizer = Adam(
            self.policy.parameters() + self.value.parameters(), lr=cfg.learning_rate
        )
        self.memory = RolloutMemory()
        #: Completed :meth:`update` calls — the x-axis of loss curves.
        self.updates = 0
        # Compiled zero-Tensor inference plans, built lazily on first use.
        # They dereference ``param.data`` at call time, so in-place updates,
        # load_state_dict, and stacked-engine row-view rebinds all stay
        # visible without invalidation.
        self._policy_plan: PolicyPlan | None = None
        self._value_plan: ValuePlan | None = None

    def set_lr_progress(self, fraction: float) -> None:
        """Linearly anneal the learning rate; ``fraction`` in [0, 1]."""
        fraction = min(1.0, max(0.0, fraction))
        cfg = self.config
        self.optimizer.lr = cfg.learning_rate + fraction * (
            cfg.final_learning_rate - cfg.learning_rate
        )

    # ----------------------------------------------------------------- acting
    def act(self, state: np.ndarray, *, deterministic: bool = False) -> tuple[np.ndarray, float]:
        """Sample an action (Algorithm 2 lines 8–9); returns ``(action, log_prob)``.

        Single states run through the compiled zero-Tensor inference plan
        (bit-identical to the Tensor forward, see :mod:`repro.nn.plan`);
        batched states keep the Tensor path.
        """
        state = np.asarray(state, dtype=float)
        if state.ndim == 1:
            if self._policy_plan is None:
                self._policy_plan = PolicyPlan(self.policy)
            return self._policy_plan.act(state, self.rng, deterministic=deterministic)
        with no_grad():
            dist = self.policy(state)
            if deterministic:
                action = dist.mode()
            else:
                action = dist.sample(self.rng)
            log_prob = float(dist.log_prob(action).data)
        return action, log_prob

    def value_of(self, state: np.ndarray) -> float:
        """Critic estimate for one state."""
        state = np.asarray(state, dtype=float)
        if state.ndim == 1:
            if self._value_plan is None:
                self._value_plan = ValuePlan(self.value)
            return self._value_plan(state)
        with no_grad():
            return float(self.value(state).data)

    # ----------------------------------------------------------------- update
    def update(self) -> dict[str, float]:
        """One Algorithm-2 update over the episode stored in ``self.memory``.

        Returns diagnostics — losses, entropy, mean ratio, plus the PPO
        health signals ``approx_kl`` (mean old−new log-prob gap) and
        ``clip_fraction`` (share of ratios outside the clip band).  The
        memory is left intact; callers clear it when starting the next
        episode.  Under an active observability session the update runs in a
        ``ppo/update`` span and every diagnostic is emitted as a metric
        series keyed by update index.
        """
        with obs.span("ppo/update", transitions=len(self.memory)):
            stats = self._update()
        self.updates += 1
        sess = obs.active()
        if sess is not None:
            for key, value in stats.items():
                sess.metric(f"ppo/{key}", value, t=float(self.updates))
        return stats

    def _update(self) -> dict[str, float]:
        cfg = self.config
        states, actions, old_log_probs, returns = self.memory.arrays()
        returns_t = Tensor(returns)

        stats: dict[str, float] = {}
        for _ in range(cfg.update_epochs):
            dist = self.policy(states)
            log_probs = dist.log_prob(actions)
            entropy = dist.entropy()  # scalar (state-independent std)

            values = self.value(states)
            advantages = returns - values.data  # A_t = G_t - V(s_t), no grad into actor
            if cfg.normalize_advantages and len(advantages) > 1:
                advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
            advantages_t = Tensor(advantages)

            ratio = exp(log_probs - Tensor(old_log_probs))
            surr1 = ratio * advantages_t
            surr2 = clip(ratio, 1.0 - cfg.clip_epsilon, 1.0 + cfg.clip_epsilon) * advantages_t
            actor_loss = -minimum(surr1, surr2).mean()

            diff = values - returns_t
            critic_loss = (diff * diff).mean() * 0.5

            loss = actor_loss + critic_loss * cfg.critic_coef - entropy * cfg.entropy_coef

            self.optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(self.optimizer.parameters, cfg.max_grad_norm)
            self.optimizer.step()

            ratio_data = np.asarray(ratio.data)
            stats = {
                "loss": loss.item(),
                "actor_loss": actor_loss.item(),
                "critic_loss": critic_loss.item(),
                "entropy": float(entropy.data),
                "mean_ratio": float(ratio_data.mean()),
                "mean_return": float(returns.mean()),
                # Mean(log π_old − log π): the standard cheap KL(π_old ‖ π)
                # estimate; grows as the update walks away from π_old.
                "approx_kl": float(np.mean(old_log_probs - np.asarray(log_probs.data))),
                "clip_fraction": float(
                    np.mean(np.abs(ratio_data - 1.0) > cfg.clip_epsilon)
                ),
            }

        # π_old ← π (Algorithm 2, line 28).
        self.policy_old.copy_from(self.policy)
        return stats

    # ------------------------------------------------------------- persistence
    def state_dict(self) -> dict:
        """All learnable state (policy + value)."""
        return {
            "policy": self.policy.state_dict(),
            "value": self.value.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore from :meth:`state_dict` output."""
        self.policy.load_state_dict(state["policy"])
        self.policy_old.copy_from(self.policy)
        self.value.load_state_dict(state["value"])
