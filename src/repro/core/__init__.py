"""AutoMDT core: utility, exploration, PPO agent, training, production loop.

The public entry point is :class:`repro.core.agent.AutoMDT`, which wires the
paper's pipeline together:

1. :func:`repro.core.exploration.run_exploration` — the 10-minute
   random-threads run that measures ``B_i``, ``TPT_i`` and the bottleneck;
2. :func:`repro.core.training.train` — offline PPO training (Algorithm 2)
   inside the Algorithm-1 simulator;
3. :class:`repro.core.production.AutoMDTController` — the trained policy
   driving a real transfer through
   :class:`repro.transfer.engine.ModularTransferEngine`.
"""

from repro.core.agent import AutoMDT
from repro.core.env import SimulatorEnv, TestbedEnv
from repro.core.exploration import ExplorationProfile, run_exploration
from repro.core.networks import PolicyNetwork, ValueNetwork
from repro.core.population import (
    PopulationMember,
    PopulationResult,
    train_population,
)
from repro.core.ppo import PPOAgent, PPOConfig, RolloutMemory
from repro.core.production import AutoMDTController
from repro.core.training import TrainingConfig, TrainingResult, train
from repro.core.utility import UtilityFunction
from repro.core.vectorized import VectorizedSimulatorEnv, train_vectorized

__all__ = [
    "AutoMDT",
    "SimulatorEnv",
    "TestbedEnv",
    "ExplorationProfile",
    "run_exploration",
    "PolicyNetwork",
    "ValueNetwork",
    "PPOAgent",
    "PPOConfig",
    "RolloutMemory",
    "AutoMDTController",
    "TrainingConfig",
    "TrainingResult",
    "train",
    "UtilityFunction",
    "VectorizedSimulatorEnv",
    "train_vectorized",
    "PopulationMember",
    "PopulationResult",
    "train_population",
]
