"""Network path model: per-connection throttle, capacity, slow-start ramp,
congestion collapse and background traffic.

Captures the behaviours the paper's motivation section attributes to
production networks:

* sysadmins throttle per-connection speed for fairness → per-stream cap;
* the path has finite capacity shared with background traffic;
* pushing far more streams than the capacity supports causes losses and
  retransmissions — aggregate goodput *degrades* past the knee;
* new TCP connections ramp up (slow start), so concurrency changes take a
  couple of seconds to take full effect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.emulator.noise import BackgroundTraffic
from repro.utils.config import require_non_negative, require_positive


@dataclass(frozen=True)
class NetworkConfig:
    """Static description of the path between the two DTNs.

    Attributes
    ----------
    tpt:
        Per-connection throughput cap in Mbps (throttle / fair-share).
    capacity:
        Path capacity in Mbps.
    degradation_alpha:
        Congestion penalty strength past the knee.
    degradation_knee:
        Streams where goodput starts to degrade (``None`` → saturation + 4).
    ramp_time:
        Seconds a fresh connection needs to reach full rate (slow start).
        0 disables ramping.
    per_file_cost:
        Per-file handshake cost in seconds, applied via dataset efficiency.
    """

    tpt: float = 100.0
    capacity: float = 1000.0
    degradation_alpha: float = 0.002
    degradation_knee: int | None = None
    ramp_time: float = 2.0
    per_file_cost: float = 0.001
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        require_positive(self.tpt, "tpt")
        require_positive(self.capacity, "capacity")
        require_non_negative(self.degradation_alpha, "degradation_alpha")
        require_non_negative(self.ramp_time, "ramp_time")
        require_non_negative(self.per_file_cost, "per_file_cost")

    @property
    def knee(self) -> int:
        """Stream count where congestion degradation starts."""
        if self.degradation_knee is not None:
            return self.degradation_knee
        return int(math.ceil(self.capacity / self.tpt)) + 4

    @property
    def saturation_streams(self) -> int:
        """Smallest stream count that fills the path (without background)."""
        return int(math.ceil(self.capacity / self.tpt))


class NetworkPath:
    """Fluid-rate model of the wide-area path, with connection ramp state.

    The ramp is tracked as an exponential moving "established concurrency":
    when the requested stream count jumps from 5 to 20, the effective count
    rises toward 20 with time constant ``ramp_time``.
    """

    def __init__(self, config: NetworkConfig, background: BackgroundTraffic | None = None) -> None:
        self.config = config
        self.background = background or BackgroundTraffic(0.0)
        self._effective_streams = 0.0

    @property
    def effective_streams(self) -> float:
        """Current ramped-up stream count (may lag the requested count)."""
        return self._effective_streams

    def reset(self) -> None:
        """Drop all connection state."""
        self._effective_streams = 0.0
        self.background.reset()

    def advance_ramp(self, requested: int, dt: float) -> float:
        """Move the established stream count toward ``requested`` over ``dt``."""
        if self.config.ramp_time <= 0.0:
            self._effective_streams = float(requested)
            return self._effective_streams
        # Closing connections is immediate; opening ramps exponentially.
        if requested <= self._effective_streams:
            self._effective_streams = float(requested)
        else:
            rate = dt / self.config.ramp_time
            gap = requested - self._effective_streams
            self._effective_streams = min(
                float(requested), self._effective_streams + gap * min(1.0, rate) + 0.5 * dt
            )
        return self._effective_streams

    def congestion_efficiency(self, streams: float) -> float:
        """Goodput efficiency in ``(0, 1]`` for ``streams`` concurrent flows."""
        excess = max(0.0, streams - self.config.knee)
        if excess == 0.0 or self.config.degradation_alpha == 0.0:
            return 1.0
        return 1.0 / (1.0 + self.config.degradation_alpha * excess**1.5)

    def aggregate_rate(
        self, streams: float, t: float, *, file_efficiency: float = 1.0, tpt_scale: float = 1.0
    ) -> float:
        """Aggregate goodput (Mbps) of ``streams`` flows at virtual time ``t``.

        ``tpt_scale`` is the per-stream drift multiplier
        (:meth:`repro.emulator.faults.FaultSchedule.tpt_scale`) — it reduces
        per-stream speed before the capacity cap, so adding streams can win
        back goodput.  The congestion knee stays a config property: drift
        changes per-stream speed, not the path's fair-share breakdown point
        (a deliberate simplification).
        """
        if streams <= 0.0:
            return 0.0
        available = max(0.0, self.config.capacity - self.background.level_at(t))
        raw = min(streams * self.config.tpt * tpt_scale, available)
        return raw * self.congestion_efficiency(streams) * file_efficiency
