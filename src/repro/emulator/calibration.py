"""Scenario calibration: build testbeds from the quantities papers report.

Evaluation sections describe scenarios by their *solution* — "optimal
stream counts of (13, 7, 5) on a 1 Gbps path" — not by device parameters.
:func:`testbed_for_optimal` inverts our models: given the desired optimal
concurrency triple and the bottleneck bandwidth, it derives the per-thread
throttles and ceilings that make that triple optimal, which is exactly how
the ``fig5_*`` presets were constructed.
"""

from __future__ import annotations

from repro.emulator.network import NetworkConfig
from repro.emulator.storage import StorageConfig
from repro.emulator.testbed import TestbedConfig
from repro.utils.config import require_positive
from repro.utils.errors import ConfigError
from repro.utils.units import GiB


def testbed_for_optimal(
    optimal_threads: tuple[int, int, int],
    bottleneck_mbps: float,
    *,
    headroom: float = 1.0,
    buffer_capacity: float = 2.0 * GiB,
    max_threads: int | None = None,
    label: str = "calibrated",
) -> TestbedConfig:
    """Build a testbed whose utility-optimal triple is ``optimal_threads``.

    Each stage's per-thread throughput is set to ``bottleneck / n_i*`` so
    that exactly ``n_i*`` threads saturate the bottleneck; stage ceilings
    are ``bottleneck × headroom`` (``headroom > 1`` leaves the network the
    sole end-to-end limit).

    >>> cfg = testbed_for_optimal((13, 7, 5), 1000.0)
    >>> cfg.optimal_threads()
    (13, 7, 5)
    """
    require_positive(bottleneck_mbps, "bottleneck_mbps")
    if len(optimal_threads) != 3 or any(int(n) < 1 for n in optimal_threads):
        raise ConfigError(f"optimal_threads must be three positive ints, got {optimal_threads!r}")
    n_r, n_n, n_w = (int(n) for n in optimal_threads)
    n_max = max_threads or max(30, 2 * max(n_r, n_n, n_w))
    ceiling = bottleneck_mbps * max(1.0, headroom)
    return TestbedConfig(
        source=StorageConfig(
            tpt=bottleneck_mbps / n_r, bandwidth=ceiling, label=f"{label}-src"
        ),
        destination=StorageConfig(
            tpt=bottleneck_mbps / n_w, bandwidth=ceiling, label=f"{label}-dst"
        ),
        network=NetworkConfig(
            tpt=bottleneck_mbps / n_n, capacity=bottleneck_mbps, label=f"{label}-net"
        ),
        sender_buffer_capacity=buffer_capacity,
        receiver_buffer_capacity=buffer_capacity,
        max_threads=n_max,
        label=label,
    )
