"""Testbed presets mirroring the paper's evaluation environments.

Numbers are chosen so each preset's *optimization problem* matches what the
paper reports (optimal thread triples, bottleneck location, achievable
end-to-end rate), not to model the physical hardware byte-for-byte:

* :func:`cloudlab_1g` — CloudLab Wisconsin c240g5 pair, 1 Gbps NIC, 8 GiB
  RAM (small staging buffers).
* :func:`fabric_brist_indi` — FABRIC BRIST↔INDI, ConnectX-5, P4510 NVMe.
* :func:`fabric_ncsa_tacc` — FABRIC NCSA↔TACC, ConnectX-6: the Table I /
  Fig. 3 environment.  Optimal network concurrency = 20 (Fig. 3), end-to-end
  ceiling 25 Gbps, AutoMDT ≈ 24 Gbps achievable.
* :func:`fig5_*_bottleneck` — the three §V-B throttle scenarios on a 1 Gbps
  path: per-stream (read, net, write) throttles of (80, 160, 200),
  (205, 75, 195) and (200, 150, 70) Mbps, yielding optimal triples
  ≈ (13, 7, 5), (5, 14, 6) and (5, 7, 15).
"""

from __future__ import annotations

from repro.emulator.network import NetworkConfig
from repro.emulator.storage import StorageConfig
from repro.emulator.testbed import TestbedConfig
from repro.utils.units import GiB


def cloudlab_1g(*, noise_sigma: float = 0.0) -> TestbedConfig:
    """CloudLab c240g5 pair: 1 Gbps NIC, 8 GiB RAM, SATA-class storage."""
    return TestbedConfig(
        source=StorageConfig(tpt=150.0, bandwidth=1200.0, label="c240g5-src"),
        destination=StorageConfig(tpt=120.0, bandwidth=1100.0, label="c240g5-dst"),
        network=NetworkConfig(tpt=250.0, capacity=1000.0, label="cloudlab-1g"),
        sender_buffer_capacity=2.0 * GiB,
        receiver_buffer_capacity=2.0 * GiB,
        max_threads=30,
        noise_sigma=noise_sigma,
        label="cloudlab-1g",
    )


def fabric_brist_indi(*, noise_sigma: float = 0.0) -> TestbedConfig:
    """FABRIC BRIST↔INDI: ConnectX-5 (25 Gbps), P4510 NVMe, 64 GB RAM."""
    return TestbedConfig(
        source=StorageConfig(tpt=2200.0, bandwidth=22000.0, label="p4510-read"),
        destination=StorageConfig(tpt=1400.0, bandwidth=9000.0, label="p4510-write"),
        network=NetworkConfig(tpt=1800.0, capacity=20000.0, label="brist-indi"),
        sender_buffer_capacity=16.0 * GiB,
        receiver_buffer_capacity=16.0 * GiB,
        max_threads=40,
        noise_sigma=noise_sigma,
        label="fabric-brist-indi",
    )


def fabric_ncsa_tacc(*, noise_sigma: float = 0.0, background_peak: float = 0.0) -> TestbedConfig:
    """FABRIC NCSA↔TACC with ConnectX-6: the Table I / Fig. 3 environment.

    Optimal triple ≈ (25, 20, 23); end-to-end ceiling 25 Gbps.  Per-file
    costs are calibrated so the Mixed dataset lands at ~0.7–0.85x of the
    Large one (Table I measures 0.71x): the dominant term is the per-file
    pipeline stall on the WAN (a few round trips of control traffic at
    ~40 ms RTT before a stream is saturated again), with small open/close
    costs on the filesystems.
    """
    return TestbedConfig(
        source=StorageConfig(
            tpt=1000.0, bandwidth=26000.0, per_file_cost=0.02, label="ncsa-nvme"
        ),
        destination=StorageConfig(
            tpt=1100.0, bandwidth=25500.0, per_file_cost=0.02, label="tacc-nvme"
        ),
        network=NetworkConfig(
            tpt=1250.0, capacity=25000.0, per_file_cost=0.18, label="ncsa-tacc-cx6"
        ),
        sender_buffer_capacity=16.0 * GiB,
        receiver_buffer_capacity=16.0 * GiB,
        max_threads=40,
        noise_sigma=noise_sigma,
        background_peak=background_peak,
        label="fabric-ncsa-tacc",
    )


def fig3_scenario(*, noise_sigma: float = 0.02) -> TestbedConfig:
    """The Fig. 3 comparison scenario (NCSA→TACC, 100×1GB)."""
    return fabric_ncsa_tacc(noise_sigma=noise_sigma)


def _one_gbps_throttled(
    read_tpt: float, net_tpt: float, write_tpt: float, label: str
) -> TestbedConfig:
    """A 1 Gbps FABRIC pair with per-stream throttles on every stage."""
    return TestbedConfig(
        source=StorageConfig(tpt=read_tpt, bandwidth=1000.0, label=f"{label}-src"),
        destination=StorageConfig(tpt=write_tpt, bandwidth=1000.0, label=f"{label}-dst"),
        network=NetworkConfig(tpt=net_tpt, capacity=1000.0, label=f"{label}-net"),
        sender_buffer_capacity=1.0 * GiB,
        receiver_buffer_capacity=1.0 * GiB,
        max_threads=30,
        label=label,
    )


def fig5_read_bottleneck() -> TestbedConfig:
    """§V-B1 column 1: throttles (80, 160, 200) Mbps → optimal ≈ (13, 7, 5)."""
    return _one_gbps_throttled(80.0, 160.0, 200.0, "fig5-read-bottleneck")


def fig5_network_bottleneck() -> TestbedConfig:
    """§V-B1 column 2: throttles (205, 75, 195) Mbps → optimal ≈ (5, 14, 6)."""
    return _one_gbps_throttled(205.0, 75.0, 195.0, "fig5-network-bottleneck")


def fig5_write_bottleneck() -> TestbedConfig:
    """§V-B1 column 3: throttles (200, 150, 70) Mbps → optimal ≈ (5, 7, 15)."""
    return _one_gbps_throttled(200.0, 150.0, 70.0, "fig5-write-bottleneck")


#: Name → factory registry used by the CLI (``automdt train --preset ...``).
PRESETS = {
    "cloudlab-1g": cloudlab_1g,
    "fabric-brist-indi": fabric_brist_indi,
    "fabric-ncsa-tacc": fabric_ncsa_tacc,
    "fig5-read": fig5_read_bottleneck,
    "fig5-network": fig5_network_bottleneck,
    "fig5-write": fig5_write_bottleneck,
}
