"""Stochastic processes used by the emulator.

* :class:`MultiplicativeNoise` — mean-reverting (AR(1)/Ornstein–Uhlenbeck
  style) multiplicative jitter applied to stage rates, modelling the
  second-to-second variation of real throughput probes.
* :class:`BackgroundTraffic` — piecewise-constant competing load on the
  network path, modelling the "background network traffic" the paper lists
  among the dynamic factors.
* :class:`LinearDrift` — deterministic multiplicative drift: the factor
  ramps linearly from 1.0 to ``to_scale`` over ``[start, start+duration)``
  and holds.  The time-indexed twin of
  :class:`repro.emulator.faults.BandwidthRamp`, used to synthesise drifting
  signals for the :mod:`repro.adapt` detector property tests.
"""

from __future__ import annotations

import numpy as np

from repro.utils.config import require_in_range, require_non_negative
from repro.utils.rng import as_generator


class MultiplicativeNoise:
    """AR(1) mean-reverting factor around 1.0, clipped to stay positive.

    ``x_{t+1} = 1 + rho (x_t - 1) + sigma * N(0,1)``, clipped to
    ``[1 - 3 sigma_stat, 1 + 3 sigma_stat]``.  ``sigma = 0`` yields the
    constant 1.0 (deterministic runs).
    """

    def __init__(
        self,
        sigma: float = 0.0,
        rho: float = 0.7,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        require_non_negative(sigma, "sigma")
        require_in_range(rho, 0.0, 0.999, "rho")
        self.sigma = sigma
        self.rho = rho
        self._rng = as_generator(rng)
        self._value = 1.0
        # Stationary std of the AR(1) process, for clipping bounds.
        self._stat = sigma / max(np.sqrt(1.0 - rho**2), 1e-9) if sigma > 0 else 0.0

    @property
    def value(self) -> float:
        """Current noise factor."""
        return self._value

    def step(self) -> float:
        """Advance one tick and return the new factor."""
        if self.sigma == 0.0:
            return 1.0
        innovation = self._rng.normal(0.0, self.sigma)
        self._value = 1.0 + self.rho * (self._value - 1.0) + innovation
        lo = max(0.05, 1.0 - 3.0 * self._stat)
        hi = 1.0 + 3.0 * self._stat
        self._value = float(np.clip(self._value, lo, hi))
        return self._value

    def reset(self) -> None:
        """Return the factor to 1.0."""
        self._value = 1.0


class LinearDrift:
    """Deterministic multiplicative drift factor over virtual time.

    ``value_at(t)`` is 1.0 before ``start``, ramps linearly to ``to_scale``
    across ``duration`` seconds, then holds ``to_scale`` forever (set
    ``hold=False`` to revert after the ramp).  Stateless and pure, so the
    same object can be queried in any time order.
    """

    def __init__(
        self,
        to_scale: float,
        *,
        start: float = 0.0,
        duration: float = 1.0,
        hold: bool = True,
    ) -> None:
        require_non_negative(start, "start")
        if to_scale <= 0.0:
            raise ValueError(f"to_scale must be positive, got {to_scale}")
        if duration <= 0.0:
            raise ValueError(f"duration must be positive, got {duration}")
        self.to_scale = float(to_scale)
        self.start = float(start)
        self.duration = float(duration)
        self.hold = bool(hold)

    def value_at(self, t: float) -> float:
        """The drift factor at virtual time ``t``."""
        if t < self.start:
            return 1.0
        if t >= self.start + self.duration:
            return self.to_scale if self.hold else 1.0
        fraction = (t - self.start) / self.duration
        return 1.0 + (self.to_scale - 1.0) * fraction


class BackgroundTraffic:
    """Piecewise-constant competing traffic in Mbps.

    Holds a level for an exponentially-distributed duration, then jumps to
    a new level uniform in ``[0, peak]``.  ``peak = 0`` disables it.
    """

    def __init__(
        self,
        peak: float = 0.0,
        mean_holding_time: float = 30.0,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        require_non_negative(peak, "peak")
        require_non_negative(mean_holding_time, "mean_holding_time")
        self.peak = peak
        self.mean_holding_time = max(mean_holding_time, 1e-6)
        self._rng = as_generator(rng)
        self._level = 0.0
        self._until = 0.0

    def level_at(self, t: float) -> float:
        """Competing traffic level (Mbps) at virtual time ``t``."""
        if self.peak == 0.0:
            return 0.0
        while t >= self._until:
            self._level = float(self._rng.uniform(0.0, self.peak))
            self._until += float(self._rng.exponential(self.mean_holding_time))
        return self._level

    def reset(self) -> None:
        """Restart the process."""
        self._level = 0.0
        self._until = 0.0
