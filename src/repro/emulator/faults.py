"""Fault injection: deterministic, seeded disturbances for the testbed.

The paper's production loop assumes a healthy data plane; the dynamic
factors it lists (background traffic, I/O contention) are exactly what
causes link flaps, storage stalls and lost reports on real DTNs.  This
module makes those failure modes first-class: a :class:`FaultSchedule` is a
composable set of timed fault events that the :class:`repro.emulator.Testbed`
consults on every substep and the transfer engine consults on every probe
interval.

Fault classes
-------------
* :class:`LinkFlap` — the network path drops for a window.  Real flaps kill
  the established TCP connections, so by default the path stays dead *after*
  the window until the transfer restarts (``requires_restart=True``); an
  unsupervised engine therefore hangs on dead sockets exactly like a real
  tool would.
* :class:`StorageStall` — a storage stage's rate collapses to
  ``factor`` of nominal for a window (I/O contention, RAID rebuild).
  Self-recovering: rates return when the window ends.
* :class:`ReceiverRestart` — the receiver daemon restarts at an instant:
  every byte staged in its buffer is lost and must be re-sent.
* :class:`ProbeDropout` — the throughput probe returns NaN for a window
  (counter scrape failures), exercising controller input sanitation.
* :class:`ReportLoss` — the receiver's RPC buffer report is dropped for a
  window; the sender keeps acting on the last report it received.
* :class:`BandwidthRamp` / :class:`StepChange` — *condition drift*: a
  stage's throughput ramps (or jumps) to a new persistent level — rising
  RTT, a re-route, a new throttle.  Not an outage: the data plane keeps
  flowing at the new operating point, which is exactly the regime the
  :mod:`repro.adapt` drift detectors and bounded corrector target.

Data-plane faults (consumed by :mod:`repro.transfer.integrity`, which maps
byte flows onto checksummed chunks) corrupt *content* without changing any
byte count — exactly the failures only end-to-end verification can catch:

* :class:`DataCorruption` — chunks completing during the window are
  bit-flipped with probability ``rate`` (``site="network"``, in flight);
  with ``site="storage"`` the window's start instant instead flips already
  durable chunks at rest.
* :class:`TornWrite` — at instant ``at`` the write stage tears: the chunk
  partially persisted at that moment keeps its byte count but its tail is
  garbage.
* :class:`SilentTruncation` — at instant ``at`` the destination silently
  loses its most recent ``chunks`` durable chunks (no error is surfaced to
  the transfer tool).

All schedules are deterministic: explicit events need no randomness, and
:meth:`FaultSchedule.random` derives every draw from the given seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Union

import numpy as np

from repro.utils.config import require_in_range, require_non_negative, require_positive


@dataclass(frozen=True)
class FaultWindow:
    """A fault active over ``[start, start + duration)`` of virtual time."""

    start: float
    duration: float

    kind: ClassVar[str] = "fault"

    def __post_init__(self) -> None:
        require_non_negative(self.start, "start")
        require_positive(self.duration, "duration")

    @property
    def end(self) -> float:
        """First instant the window no longer covers."""
        return self.start + self.duration

    def active(self, t: float) -> bool:
        """Whether the fault is live at virtual time ``t``."""
        return self.start <= t < self.end


@dataclass(frozen=True)
class LinkFlap(FaultWindow):
    """Network outage: path rate drops by ``severity`` during the window.

    With ``requires_restart`` (the default) the established connections die
    with the link: the path stays down after the window until the testbed is
    restarted (:meth:`repro.emulator.Testbed.reset` at a later virtual time),
    modelling the hung-socket behaviour of tools without supervision.
    """

    severity: float = 1.0
    requires_restart: bool = True

    kind: ClassVar[str] = "link_flap"

    def __post_init__(self) -> None:
        super().__post_init__()
        require_in_range(self.severity, 0.0, 1.0, "severity")


@dataclass(frozen=True)
class StorageStall(FaultWindow):
    """Storage rate collapse on one stage; recovers when the window ends."""

    stage: str = "read"
    factor: float = 0.0

    kind: ClassVar[str] = "storage_stall"

    def __post_init__(self) -> None:
        super().__post_init__()
        require_in_range(self.factor, 0.0, 1.0, "factor")
        if self.stage not in ("read", "write"):
            raise ValueError(f"stage must be 'read' or 'write', got {self.stage!r}")


@dataclass(frozen=True)
class ProbeDropout(FaultWindow):
    """Throughput probe failure: measurements read NaN during the window."""

    kind: ClassVar[str] = "probe_dropout"


@dataclass(frozen=True)
class ReportLoss(FaultWindow):
    """RPC report loss: receiver buffer reports are dropped during the window."""

    kind: ClassVar[str] = "report_loss"


@dataclass(frozen=True)
class DataCorruption(FaultWindow):
    """Seeded bit-flips on chunk content; byte counts are unaffected.

    ``site="network"`` corrupts in flight: each chunk that completes during
    the window is flipped with probability ``rate``.  ``site="storage"``
    corrupts at rest: at the window's *start* instant, each already durable
    chunk is flipped with probability ``rate`` (the window duration is kept
    for schedule uniformity but the damage is instantaneous).
    """

    rate: float = 0.05
    site: str = "network"

    kind: ClassVar[str] = "data_corruption"

    def __post_init__(self) -> None:
        super().__post_init__()
        require_in_range(self.rate, 0.0, 1.0, "rate")
        if self.site not in ("network", "storage"):
            raise ValueError(f"site must be 'network' or 'storage', got {self.site!r}")


@dataclass(frozen=True)
class TornWrite:
    """Write tear at instant ``at``: the in-flight partial chunk goes bad."""

    at: float

    kind: ClassVar[str] = "torn_write"

    def __post_init__(self) -> None:
        require_non_negative(self.at, "at")


@dataclass(frozen=True)
class SilentTruncation:
    """Destination silently drops its last ``chunks`` durable chunks at ``at``."""

    at: float
    chunks: int = 1

    kind: ClassVar[str] = "silent_truncation"

    def __post_init__(self) -> None:
        require_non_negative(self.at, "at")
        require_positive(self.chunks, "chunks")


_DRIFT_STAGES = ("read", "network", "write")


@dataclass(frozen=True)
class BandwidthRamp(FaultWindow):
    """Slow condition drift: a stage's throughput ramps to ``to_scale``.

    Models the WAN drift the adaptation layer (:mod:`repro.adapt`) must
    survive: over ``[start, end)`` the stage's rate multiplier moves
    *linearly* from 1.0 to ``to_scale``; with ``hold`` (the default) the
    drifted level persists after the window — a new operating point, not an
    outage.  ``to_scale`` may also be > 1 (conditions improving).

    ``per_stream=True`` (default) scales the stage's *per-stream* throughput
    before the capacity cap — the shape of a rising RTT on a TCP path
    (per-stream goodput ~ 1/RTT), where opening more streams can win the
    rate back.  ``per_stream=False`` scales the stage's *aggregate* output
    instead (capacity loss), which no amount of extra concurrency recovers.
    """

    to_scale: float = 0.5
    stage: str = "network"
    hold: bool = True
    per_stream: bool = True

    kind: ClassVar[str] = "bandwidth_ramp"

    def __post_init__(self) -> None:
        super().__post_init__()
        require_positive(self.to_scale, "to_scale")
        if self.stage not in _DRIFT_STAGES:
            raise ValueError(f"stage must be one of {_DRIFT_STAGES}, got {self.stage!r}")

    def scale_at(self, t: float) -> float:
        """The stage multiplier at virtual time ``t``."""
        if t < self.start:
            return 1.0
        if t >= self.end:
            return self.to_scale if self.hold else 1.0
        fraction = (t - self.start) / self.duration
        return 1.0 + (self.to_scale - 1.0) * fraction


@dataclass(frozen=True)
class StepChange(FaultWindow):
    """Abrupt persistent drift: the stage multiplier jumps to ``to_scale``.

    The step lands at ``start`` and *stays* — a route change, a new
    sysadmin throttle, a peering shift.  ``duration`` exists only for
    schedule uniformity (the window marks the change as "active" for
    incident attribution); the multiplier never reverts.  Semantics of
    ``per_stream`` match :class:`BandwidthRamp`.
    """

    to_scale: float = 0.5
    stage: str = "network"
    per_stream: bool = True

    kind: ClassVar[str] = "step_change"

    def __post_init__(self) -> None:
        super().__post_init__()
        require_positive(self.to_scale, "to_scale")
        if self.stage not in _DRIFT_STAGES:
            raise ValueError(f"stage must be one of {_DRIFT_STAGES}, got {self.stage!r}")

    def scale_at(self, t: float) -> float:
        """The stage multiplier at virtual time ``t`` (a held step)."""
        return self.to_scale if t >= self.start else 1.0


@dataclass(frozen=True)
class ReceiverRestart:
    """Receiver daemon restart at instant ``at``: staged bytes are lost."""

    at: float

    kind: ClassVar[str] = "receiver_restart"

    def __post_init__(self) -> None:
        require_non_negative(self.at, "at")


FaultEventSpec = Union[FaultWindow, ReceiverRestart, TornWrite, SilentTruncation]


class FaultSchedule:
    """Composable, deterministic set of fault events on the virtual clock.

    The schedule is stateful in exactly two ways, both driven by the testbed:

    * which :class:`ReceiverRestart` events have already fired, and
    * when the transfer last (re)started — a :class:`LinkFlap` with
      ``requires_restart`` keeps the path dead after its window until a
      restart happens at or after the window's end.

    :meth:`notify_restart` re-arms both against the new start time, so the
    same schedule object can drive repeated runs (fresh or resumed) and stay
    deterministic.
    """

    def __init__(self, events: FaultEventSpec | list[FaultEventSpec] = ()) -> None:
        if isinstance(events, (FaultWindow, ReceiverRestart, TornWrite, SilentTruncation)):
            events = [events]
        self.events: tuple[FaultEventSpec, ...] = tuple(events)
        self._restarts = [e for e in self.events if isinstance(e, ReceiverRestart)]
        self._windows = [e for e in self.events if isinstance(e, FaultWindow)]
        #: Condition-drift events (ramps and steps); split per application
        #: point so the testbed pays nothing when a schedule has none.
        drifts = [e for e in self.events if isinstance(e, (BandwidthRamp, StepChange))]
        self._tpt_drifts = [e for e in drifts if e.per_stream]
        self._aggregate_drifts = [e for e in drifts if not e.per_stream]
        #: Fire-once data-plane instants: torn writes, silent truncations, and
        #: at-rest corruption (which strikes at its window's start instant).
        self._data_instants: list[tuple[float, FaultEventSpec]] = sorted(
            [(e.at, e) for e in self.events if isinstance(e, (TornWrite, SilentTruncation))]
            + [
                (e.start, e)
                for e in self._windows
                if isinstance(e, DataCorruption) and e.site == "storage"
            ],
            key=lambda pair: pair[0],
        )
        self._last_restart = 0.0
        self._fired: set[int] = set()
        self._data_fired: set[int] = set()

    # ---------------------------------------------------------------- queries
    def network_scale(self, t: float) -> float:
        """Multiplier on the network path rate at virtual time ``t``."""
        scale = 1.0
        for event in self._windows:
            if not isinstance(event, LinkFlap):
                continue
            down = event.active(t) or (
                event.requires_restart and t >= event.end and self._last_restart < event.end
            )
            if down:
                scale *= 1.0 - event.severity
        for event in self._aggregate_drifts:
            if event.stage == "network":
                scale *= event.scale_at(t)
        return scale

    def storage_scale(self, stage: str, t: float) -> float:
        """Multiplier on the ``stage`` storage rate at virtual time ``t``."""
        scale = 1.0
        for event in self._windows:
            if isinstance(event, StorageStall) and event.stage == stage and event.active(t):
                scale *= event.factor
        for event in self._aggregate_drifts:
            if event.stage == stage:
                scale *= event.scale_at(t)
        return scale

    @property
    def has_tpt_drift(self) -> bool:
        """Whether any per-stream drift event exists (testbed fast-path gate)."""
        return bool(self._tpt_drifts)

    def tpt_scale(self, stage: str, t: float) -> float:
        """Per-stream throughput multiplier for ``stage`` at virtual time ``t``.

        Only per-stream drift events (:class:`BandwidthRamp` /
        :class:`StepChange` with ``per_stream=True``) contribute; the
        multiplier applies *before* the stage's capacity cap, so extra
        concurrency can compensate — the lever the adaptation layer pulls.
        """
        scale = 1.0
        for event in self._tpt_drifts:
            if event.stage == stage:
                scale *= event.scale_at(t)
        return scale

    def probe_dropout(self, t: float) -> bool:
        """Whether the throughput probe is down at virtual time ``t``."""
        return any(
            isinstance(e, ProbeDropout) and e.active(t) for e in self._windows
        )

    def report_lost(self, t: float) -> bool:
        """Whether the receiver's RPC report is dropped at virtual time ``t``."""
        return any(isinstance(e, ReportLoss) and e.active(t) for e in self._windows)

    def take_receiver_restarts(self, t0: float, t1: float) -> int:
        """Fire (once each) the receiver restarts scheduled in ``[t0, t1)``."""
        count = 0
        for i, event in enumerate(self._restarts):
            if i not in self._fired and t0 <= event.at < t1:
                self._fired.add(i)
                count += 1
        return count

    # ------------------------------------------------------- data-plane faults
    def corruption_rate(self, t: float) -> float:
        """Probability a chunk completing at ``t`` is corrupted in flight.

        Overlapping in-flight :class:`DataCorruption` windows compose as
        independent corruption opportunities: ``1 - prod(1 - rate_i)``.
        """
        survival = 1.0
        for event in self._windows:
            if isinstance(event, DataCorruption) and event.site == "network" and event.active(t):
                survival *= 1.0 - event.rate
        return 1.0 - survival

    def take_data_events(self, t0: float, t1: float) -> list[FaultEventSpec]:
        """Fire (once each) the data-plane instants scheduled in ``[t0, t1)``.

        Returns the fired events in time order: :class:`TornWrite`,
        :class:`SilentTruncation` and at-rest :class:`DataCorruption`
        (striking at its window start).  The integrity layer
        (:class:`repro.transfer.integrity.DestinationLedger`) consumes these
        while mapping byte flows onto chunks.
        """
        fired: list[FaultEventSpec] = []
        for i, (at, event) in enumerate(self._data_instants):
            if i not in self._data_fired and t0 <= at < t1:
                self._data_fired.add(i)
                fired.append(event)
        return fired

    def active(self, t: float) -> list[FaultEventSpec]:
        """Window faults live at ``t`` — including dead-link flap aftermath."""
        live: list[FaultEventSpec] = []
        for event in self._windows:
            if event.active(t):
                live.append(event)
            elif (
                isinstance(event, LinkFlap)
                and event.requires_restart
                and t >= event.end
                and self._last_restart < event.end
            ):
                live.append(event)
        return live

    def active_kinds(self, t: float) -> tuple[str, ...]:
        """Kinds of the faults live at ``t`` (sorted, de-duplicated)."""
        return tuple(sorted({e.kind for e in self.active(t)}))

    # ----------------------------------------------------------------- state
    def notify_restart(self, t: float) -> None:
        """The transfer (re)started at virtual time ``t``.

        Connection-killing flaps whose window ended by ``t`` are repaired,
        and receiver restarts strictly before ``t`` are considered already
        fired (they belong to the earlier part of the timeline).
        """
        self._last_restart = float(t)
        self._fired = {i for i, e in enumerate(self._restarts) if e.at < t}
        self._data_fired = {i for i, (at, _) in enumerate(self._data_instants) if at < t}

    # ------------------------------------------------------------- factories
    @classmethod
    def random(
        cls,
        seed: int,
        *,
        horizon: float,
        kinds: tuple[str, ...] = (
            "link_flap",
            "storage_stall",
            "receiver_restart",
            "probe_dropout",
            "report_loss",
        ),
        events_per_kind: int = 1,
        mean_duration: float = 10.0,
    ) -> "FaultSchedule":
        """Seeded random schedule: same seed → identical events, always."""
        require_positive(horizon, "horizon")
        require_positive(mean_duration, "mean_duration")
        rng = np.random.default_rng(seed)
        events: list[FaultEventSpec] = []
        for kind in kinds:
            for _ in range(events_per_kind):
                start = float(rng.uniform(0.05, 0.7) * horizon)
                duration = 1.0 + float(rng.exponential(mean_duration))
                if kind == "link_flap":
                    events.append(LinkFlap(start, duration))
                elif kind == "storage_stall":
                    stage = "read" if rng.random() < 0.5 else "write"
                    events.append(StorageStall(start, duration, stage=stage))
                elif kind == "receiver_restart":
                    events.append(ReceiverRestart(at=start))
                elif kind == "probe_dropout":
                    events.append(ProbeDropout(start, duration))
                elif kind == "report_loss":
                    events.append(ReportLoss(start, duration))
                elif kind == "data_corruption":
                    site = "network" if rng.random() < 0.75 else "storage"
                    rate = float(rng.uniform(0.05, 0.35))
                    events.append(DataCorruption(start, duration, rate=rate, site=site))
                elif kind == "torn_write":
                    events.append(TornWrite(at=start))
                elif kind == "silent_truncation":
                    events.append(SilentTruncation(at=start, chunks=1 + int(rng.integers(3))))
                elif kind == "bandwidth_ramp":
                    stage = ("read", "network", "write")[int(rng.integers(3))]
                    events.append(
                        BandwidthRamp(
                            start, duration,
                            to_scale=float(rng.uniform(0.3, 0.7)), stage=stage,
                        )
                    )
                elif kind == "step_change":
                    stage = ("read", "network", "write")[int(rng.integers(3))]
                    events.append(
                        StepChange(
                            start, duration,
                            to_scale=float(rng.uniform(0.3, 0.7)), stage=stage,
                        )
                    )
                else:
                    raise ValueError(f"unknown fault kind {kind!r}")
        events.sort(key=lambda e: e.start if isinstance(e, FaultWindow) else e.at)
        return cls(events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultSchedule({list(self.events)!r})"
