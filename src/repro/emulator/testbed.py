"""The Testbed: two DTNs and a network path, advanced on a virtual clock.

This is the evaluation-side "real environment" (Fig. 2 of the paper).  A
:class:`Testbed` composes a source storage device, a sender staging buffer,
a network path, a receiver staging buffer and a destination storage device.
:meth:`Testbed.advance` integrates the coupled fluid flows over a window
(default one second, the paper's probe interval) with small substeps so the
buffer coupling of Fig. 1 is resolved faithfully:

* read fills the sender buffer, but only while it has space (and while the
  dataset still has unread bytes);
* the network drains the sender buffer into the receiver buffer, limited by
  path goodput, connection ramp-up and background traffic;
* write drains the receiver buffer to the destination filesystem.

Compared to the Algorithm-1 training simulator, the emulator adds slow-start
ramping, over-concurrency degradation, per-file costs, background traffic
and measurement noise — the sim-to-real gap the trained policy must survive.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.emulator.buffers import StagingBuffer
from repro.emulator.faults import FaultSchedule
from repro.emulator.network import NetworkConfig, NetworkPath
from repro.emulator.noise import BackgroundTraffic, MultiplicativeNoise
from repro.emulator.storage import StorageConfig, StorageDevice
from repro.utils.config import require_non_negative, require_positive
from repro.utils.errors import SimulationError
from repro.utils.rng import as_generator
from repro.utils.units import GiB, bytes_per_sec_to_mbps, mbps_to_bytes_per_sec


@dataclass(frozen=True)
class TestbedConfig:
    """Full description of an emulated testbed pair.

    ``noise_sigma`` controls per-stage AR(1) throughput jitter;
    ``background_peak`` enables competing traffic on the path.  Both default
    to 0 so figure-style experiments are deterministic.
    """

    __test__ = False  # not a pytest test class despite the name

    source: StorageConfig = field(default_factory=StorageConfig)
    destination: StorageConfig = field(default_factory=StorageConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    sender_buffer_capacity: float = 4.0 * GiB
    receiver_buffer_capacity: float = 4.0 * GiB
    max_threads: int = 30
    substep: float = 0.05
    noise_sigma: float = 0.0
    background_peak: float = 0.0
    background_holding: float = 30.0
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        require_positive(self.sender_buffer_capacity, "sender_buffer_capacity")
        require_positive(self.receiver_buffer_capacity, "receiver_buffer_capacity")
        require_positive(self.substep, "substep")
        require_positive(self.max_threads, "max_threads")
        require_non_negative(self.noise_sigma, "noise_sigma")
        require_non_negative(self.background_peak, "background_peak")

    def optimal_threads(self) -> tuple[int, int, int]:
        """Ideal ``(n_r*, n_n*, n_w*)`` for the configured bottleneck."""
        import math

        bottleneck = min(self.source.bandwidth, self.network.capacity, self.destination.bandwidth)
        triple = (
            math.ceil(bottleneck / self.source.tpt),
            math.ceil(bottleneck / self.network.tpt),
            math.ceil(bottleneck / self.destination.tpt),
        )
        return tuple(min(self.max_threads, max(1, n)) for n in triple)  # type: ignore[return-value]

    @property
    def bottleneck_bandwidth(self) -> float:
        """End-to-end ceiling in Mbps."""
        return min(self.source.bandwidth, self.network.capacity, self.destination.bandwidth)


@dataclass(frozen=True)
class StageFlows:
    """What happened on the testbed during one :meth:`Testbed.advance` window."""

    duration: float
    bytes_read: float
    bytes_networked: float
    bytes_written: float
    throughput_read: float
    throughput_network: float
    throughput_write: float
    sender_usage: float
    receiver_usage: float
    sender_free: float
    receiver_free: float
    threads: tuple[int, int, int]
    effective_streams: float

    @property
    def throughputs(self) -> tuple[float, float, float]:
        """``(t_r, t_n, t_w)`` in Mbps."""
        return (self.throughput_read, self.throughput_network, self.throughput_write)


class Testbed:
    """Mutable emulator state over a :class:`TestbedConfig`."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        config: TestbedConfig,
        rng: int | np.random.Generator | None = None,
        faults: FaultSchedule | None = None,
    ) -> None:
        self.config = config
        self.faults = faults
        rng = as_generator(rng)
        self._source = StorageDevice(config.source)
        self._destination = StorageDevice(config.destination)
        background = BackgroundTraffic(
            config.background_peak,
            config.background_holding,
            rng=np.random.default_rng(rng.integers(2**63)),
        )
        self._network = NetworkPath(config.network, background)
        self.sender_buffer = StagingBuffer(config.sender_buffer_capacity, name="sender")
        self.receiver_buffer = StagingBuffer(config.receiver_buffer_capacity, name="receiver")
        self._noise = [
            MultiplicativeNoise(config.noise_sigma, rng=np.random.default_rng(rng.integers(2**63)))
            for _ in range(3)
        ]
        self._now = 0.0
        self.total_read = 0.0
        self.total_networked = 0.0
        self.total_written = 0.0
        #: External bytes/s ceiling on the network stage.  This belongs to
        #: an *allocator* (the fleet scheduler's fair-share slice), not to
        #: the testbed's own state, so it survives :meth:`reset`.
        self.rate_cap = float("inf")

    # ------------------------------------------------------------- properties
    @property
    def now(self) -> float:
        """Virtual time in seconds."""
        return self._now

    @property
    def source(self) -> StorageDevice:
        """Source storage device."""
        return self._source

    @property
    def destination(self) -> StorageDevice:
        """Destination storage device."""
        return self._destination

    @property
    def network(self) -> NetworkPath:
        """The wide-area path."""
        return self._network

    # -------------------------------------------------------- dynamic changes
    def set_stage_tpt(self, stage: str, tpt: float) -> None:
        """Change a per-thread throttle mid-run (sysadmin action / contention).

        ``stage`` is ``"read"``, ``"network"`` or ``"write"``.
        """
        require_positive(tpt, "tpt")
        if stage == "read":
            self._source = StorageDevice(dataclasses.replace(self.config.source, tpt=tpt))
        elif stage == "write":
            self._destination = StorageDevice(dataclasses.replace(self.config.destination, tpt=tpt))
        elif stage == "network":
            cfg = dataclasses.replace(self.config.network, tpt=tpt)
            path = NetworkPath(cfg, self._network.background)
            path._effective_streams = self._network.effective_streams
            self._network = path
        else:
            raise SimulationError(f"unknown stage {stage!r}")

    def set_rate_cap(self, bytes_per_sec: float | None) -> None:
        """Cap the network stage at ``bytes_per_sec`` (``None`` = uncapped).

        The fleet scheduler calls this before each scheduling quantum to
        enforce its fair-share bandwidth allocation; the cap applies on top
        of fault scaling and noise, and persists across :meth:`reset`
        because a supervised restart does not change the tenant's share.
        """
        cap = float("inf") if bytes_per_sec is None else float(bytes_per_sec)
        require_non_negative(cap, "rate_cap")
        self.rate_cap = cap

    def reset(self, start_time: float = 0.0) -> None:
        """Restart the testbed with empty buffers at virtual time ``start_time``.

        A non-zero ``start_time`` models a supervised *restart* of the
        transfer mid-timeline (checkpoint resume): buffers and connections
        are rebuilt from scratch, but the clock — and therefore the fault
        schedule and background-traffic processes — keeps its place.
        Restarting also repairs connection-killing faults whose window has
        passed (see :meth:`repro.emulator.faults.FaultSchedule.notify_restart`).
        """
        require_non_negative(start_time, "start_time")
        self.sender_buffer.reset()
        self.receiver_buffer.reset()
        self._network.reset()
        for noise in self._noise:
            noise.reset()
        self._now = float(start_time)
        self.total_read = 0.0
        self.total_networked = 0.0
        self.total_written = 0.0
        if self.faults is not None:
            self.faults.notify_restart(self._now)

    # ------------------------------------------------------------------- step
    def _clamp_threads(self, threads) -> tuple[int, int, int]:
        n_max = self.config.max_threads
        clamped = tuple(int(min(n_max, max(1, round(float(n))))) for n in threads)
        if len(clamped) != 3:
            raise SimulationError(f"expected 3 thread counts, got {threads!r}")
        return clamped  # type: ignore[return-value]

    def advance(
        self,
        threads,
        duration: float = 1.0,
        *,
        read_available: float = float("inf"),
        file_efficiency: tuple[float, float, float] = (1.0, 1.0, 1.0),
    ) -> StageFlows:
        """Advance the testbed by ``duration`` seconds under ``threads``.

        ``read_available`` caps how many more bytes the read stage may pull
        from the source dataset (the transfer engine passes the unread
        remainder).  ``file_efficiency`` is the per-stage dataset factor for
        per-file overheads.
        """
        require_positive(duration, "duration")
        n = self._clamp_threads(threads)
        noise = [proc.step() for proc in self._noise]

        dt = min(self.config.substep, duration)
        steps = max(1, int(round(duration / dt)))
        dt = duration / steps

        read_bytes = networked_bytes = written_bytes = 0.0
        remaining_read = max(0.0, read_available)

        read_rate = self._source.aggregate_rate(n[0], file_efficiency=file_efficiency[0])
        read_rate = mbps_to_bytes_per_sec(read_rate * noise[0])
        write_rate = self._destination.aggregate_rate(n[2], file_efficiency=file_efficiency[2])
        write_rate = mbps_to_bytes_per_sec(write_rate * noise[2])

        faults = self.faults
        # Per-stream drift changes the tpt feeding min(n·tpt, cap), so the
        # hoisted read/write rates must be recomputed each substep.  The
        # gate keeps drift-free schedules on the exact pre-existing code
        # path (hoisted rates, no tpt_scale kwarg) for bit-identity.
        tpt_drift = faults is not None and faults.has_tpt_drift
        net_tpt_scale = 1.0
        for _ in range(steps):
            f_read = f_net = f_write = 1.0
            if faults is not None:
                # Fault scales are sampled per substep so windows that open
                # or close mid-interval take effect at substep resolution.
                f_read = faults.storage_scale("read", self._now)
                f_write = faults.storage_scale("write", self._now)
                f_net = faults.network_scale(self._now)
                if faults.take_receiver_restarts(self._now, self._now + dt):
                    # Receiver daemon restart: staged-but-unwritten bytes die
                    # with it and must be re-sent by a supervised retry.
                    self.receiver_buffer.reset()
            if tpt_drift:
                read_rate = self._source.aggregate_rate(
                    n[0],
                    file_efficiency=file_efficiency[0],
                    tpt_scale=faults.tpt_scale("read", self._now),
                )
                read_rate = mbps_to_bytes_per_sec(read_rate * noise[0])
                write_rate = self._destination.aggregate_rate(
                    n[2],
                    file_efficiency=file_efficiency[2],
                    tpt_scale=faults.tpt_scale("write", self._now),
                )
                write_rate = mbps_to_bytes_per_sec(write_rate * noise[2])
                net_tpt_scale = faults.tpt_scale("network", self._now)
            streams = self._network.advance_ramp(n[1], dt)
            net_rate = self._network.aggregate_rate(
                streams,
                self._now,
                file_efficiency=file_efficiency[1],
                tpt_scale=net_tpt_scale,
            )
            net_rate = min(
                mbps_to_bytes_per_sec(net_rate * noise[1]) * f_net, self.rate_cap
            )

            # Desired amounts from the state at substep start (no in-substep
            # pass-through: a byte must rest in the buffer at least one step).
            want_read = min(read_rate * f_read * dt, remaining_read, self.sender_buffer.free)
            want_net = min(net_rate * dt, self.sender_buffer.usage, self.receiver_buffer.free)
            want_write = min(write_rate * f_write * dt, self.receiver_buffer.usage)

            moved_write = self.receiver_buffer.withdraw(want_write)
            moved_net = self.sender_buffer.withdraw(want_net)
            self.receiver_buffer.deposit(moved_net)
            moved_read = self.sender_buffer.deposit(want_read)

            read_bytes += moved_read
            networked_bytes += moved_net
            written_bytes += moved_write
            remaining_read = max(0.0, remaining_read - moved_read)
            self._now += dt

        self.total_read += read_bytes
        self.total_networked += networked_bytes
        self.total_written += written_bytes

        return StageFlows(
            duration=duration,
            bytes_read=read_bytes,
            bytes_networked=networked_bytes,
            bytes_written=written_bytes,
            throughput_read=bytes_per_sec_to_mbps(read_bytes / duration),
            throughput_network=bytes_per_sec_to_mbps(networked_bytes / duration),
            throughput_write=bytes_per_sec_to_mbps(written_bytes / duration),
            sender_usage=self.sender_buffer.usage,
            receiver_usage=self.receiver_buffer.usage,
            sender_free=self.sender_buffer.free,
            receiver_free=self.receiver_buffer.free,
            threads=n,
            effective_streams=self._network.effective_streams,
        )
