"""Storage device model: per-thread speeds, contention knee, over-concurrency
degradation.

The motivation section of the paper stresses that "unnecessary concurrency
massively degrades the performance": real storage scales near-linearly in
thread count up to a knee (the point where the device or its CPU budget
saturates), then *loses* aggregate throughput as extra threads add seek
thrash, context switches and lock contention.  :meth:`StorageDevice.aggregate_rate`
captures exactly that shape:

``rate(n) = min(n · tpt, bandwidth) · efficiency(n)`` with
``efficiency(n) = 1 / (1 + alpha · max(0, n - knee)^1.5)``.

The knee defaults to the smallest n that saturates the device, so a
well-chosen concurrency loses nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.utils.config import require_non_negative, require_positive


@dataclass(frozen=True)
class StorageConfig:
    """Static description of one storage endpoint (source or destination).

    Attributes
    ----------
    tpt:
        Per-thread throughput in Mbps (possibly sysadmin-throttled).
    bandwidth:
        Aggregate device ceiling in Mbps (NVMe vs HDD etc.).
    degradation_alpha:
        Strength of the over-concurrency penalty; 0 disables it.
    degradation_knee:
        Thread count where degradation starts.  ``None`` → the saturation
        point ``ceil(bandwidth / tpt)`` plus a small margin.
    per_file_cost:
        Seconds of fixed per-file work (open/close/metadata).  Small files
        make this dominate — the reason the paper's Mixed dataset is slower
        than the Large dataset in Table I.
    """

    tpt: float = 200.0
    bandwidth: float = 2000.0
    degradation_alpha: float = 0.002
    degradation_knee: int | None = None
    per_file_cost: float = 0.005
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        require_positive(self.tpt, "tpt")
        require_positive(self.bandwidth, "bandwidth")
        require_non_negative(self.degradation_alpha, "degradation_alpha")
        require_non_negative(self.per_file_cost, "per_file_cost")

    @property
    def knee(self) -> int:
        """Effective degradation knee (threads)."""
        if self.degradation_knee is not None:
            return self.degradation_knee
        return int(math.ceil(self.bandwidth / self.tpt)) + 2

    @property
    def saturation_threads(self) -> int:
        """Smallest thread count that saturates the device ceiling."""
        return int(math.ceil(self.bandwidth / self.tpt))


class StorageDevice:
    """Fluid-rate model of a storage endpoint."""

    def __init__(self, config: StorageConfig) -> None:
        self.config = config

    def efficiency(self, threads: int) -> float:
        """Multiplicative over-concurrency efficiency in ``(0, 1]``."""
        excess = max(0, threads - self.config.knee)
        if excess == 0 or self.config.degradation_alpha == 0.0:
            return 1.0
        return 1.0 / (1.0 + self.config.degradation_alpha * excess**1.5)

    def aggregate_rate(
        self, threads: int, *, file_efficiency: float = 1.0, tpt_scale: float = 1.0
    ) -> float:
        """Aggregate Mbps achieved by ``threads`` concurrent I/O threads.

        ``file_efficiency`` folds in the per-file-cost factor computed by the
        dataset (see :meth:`repro.transfer.files.Dataset.stage_efficiency`).
        ``tpt_scale`` is the per-thread drift multiplier
        (:meth:`repro.emulator.faults.FaultSchedule.tpt_scale`): it lowers
        the per-thread speed *before* the device ceiling, so extra threads
        can win back the aggregate — over-concurrency degradation (the knee
        is a device property, unchanged by drift) still punishes going far.
        """
        if threads <= 0:
            return 0.0
        raw = min(threads * self.config.tpt * tpt_scale, self.config.bandwidth)
        return raw * self.efficiency(threads) * file_efficiency
