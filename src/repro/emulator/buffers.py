"""Staging buffer model (the application-level tmpfs directory on each DTN).

Throughout the paper "buffer" means the staging directory (e.g. /dev/shm)
where file chunks rest between stages — not kernel TCP buffers.  The model
is a simple bounded byte store with deposit/withdraw; boundedness is what
couples the three stages (Fig. 1).
"""

from __future__ import annotations

from repro.utils.config import require_non_negative, require_positive
from repro.utils.errors import SimulationError


class StagingBuffer:
    """Bounded byte store with conservation checks."""

    def __init__(self, capacity: float, usage: float = 0.0, name: str = "") -> None:
        require_positive(capacity, "capacity")
        require_non_negative(usage, "usage")
        if usage > capacity:
            raise SimulationError(f"initial usage {usage} exceeds capacity {capacity}")
        self.capacity = float(capacity)
        self._usage = float(usage)
        self.name = name

    @property
    def usage(self) -> float:
        """Bytes currently stored."""
        return self._usage

    @property
    def free(self) -> float:
        """Remaining capacity in bytes."""
        return self.capacity - self._usage

    @property
    def fill_fraction(self) -> float:
        """Occupancy as a fraction of capacity."""
        return self._usage / self.capacity

    def deposit(self, n_bytes: float) -> float:
        """Add up to ``n_bytes``; returns the amount actually stored.

        Sub-byte negative dust from float accumulation upstream is treated
        as zero; anything materially negative is a logic error.
        """
        if n_bytes < -1e-3:
            raise SimulationError(f"cannot deposit negative bytes: {n_bytes}")
        amount = min(max(n_bytes, 0.0), self.free)
        self._usage += amount
        return amount

    def withdraw(self, n_bytes: float) -> float:
        """Remove up to ``n_bytes``; returns the amount actually removed."""
        if n_bytes < -1e-3:
            raise SimulationError(f"cannot withdraw negative bytes: {n_bytes}")
        amount = min(max(n_bytes, 0.0), self._usage)
        self._usage -= amount
        return amount

    def reset(self, usage: float = 0.0) -> None:
        """Set the occupancy directly (start of a run)."""
        if not (0.0 <= usage <= self.capacity):
            raise SimulationError(f"usage {usage} out of [0, {self.capacity}]")
        self._usage = float(usage)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StagingBuffer({self.name!r}, {self._usage:.0f}/{self.capacity:.0f} B)"
