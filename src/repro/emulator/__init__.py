"""The evaluation testbed emulator — stand-in for the paper's real testbeds.

The paper evaluates on CloudLab and FABRIC hardware; this package provides a
fluid-flow discrete-time emulation of that environment (see DESIGN.md §2 for
the substitution argument): storage devices with per-thread speeds,
contention knees and over-concurrency degradation; a network path with
per-connection throttles, finite capacity, slow-start ramp and background
traffic; finite staging buffers; and measurement noise.  Unlike the
Algorithm-1 training simulator (:mod:`repro.simulator`), the emulator is
richer than what the agent was trained on — preserving the paper's
sim-to-real gap.
"""

from repro.emulator.buffers import StagingBuffer
from repro.emulator.calibration import testbed_for_optimal
from repro.emulator.faults import (
    BandwidthRamp,
    DataCorruption,
    FaultSchedule,
    FaultWindow,
    LinkFlap,
    ProbeDropout,
    ReceiverRestart,
    ReportLoss,
    SilentTruncation,
    StepChange,
    StorageStall,
    TornWrite,
)
from repro.emulator.network import NetworkConfig, NetworkPath
from repro.emulator.noise import BackgroundTraffic, LinearDrift, MultiplicativeNoise
from repro.emulator.presets import (
    cloudlab_1g,
    fabric_brist_indi,
    fabric_ncsa_tacc,
    fig3_scenario,
    fig5_network_bottleneck,
    fig5_read_bottleneck,
    fig5_write_bottleneck,
)
from repro.emulator.storage import StorageConfig, StorageDevice
from repro.emulator.testbed import StageFlows, Testbed, TestbedConfig

__all__ = [
    "StagingBuffer",
    "BandwidthRamp",
    "DataCorruption",
    "FaultSchedule",
    "FaultWindow",
    "LinkFlap",
    "ProbeDropout",
    "ReceiverRestart",
    "ReportLoss",
    "SilentTruncation",
    "StepChange",
    "StorageStall",
    "TornWrite",
    "NetworkConfig",
    "NetworkPath",
    "BackgroundTraffic",
    "LinearDrift",
    "MultiplicativeNoise",
    "StorageConfig",
    "StorageDevice",
    "StageFlows",
    "Testbed",
    "TestbedConfig",
    "cloudlab_1g",
    "fabric_brist_indi",
    "fabric_ncsa_tacc",
    "fig3_scenario",
    "fig5_read_bottleneck",
    "fig5_network_bottleneck",
    "fig5_write_bottleneck",
    "testbed_for_optimal",
]
