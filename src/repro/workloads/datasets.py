"""The paper's evaluation datasets (§V).

* Dataset A ("Large"): 1000 × 1 GB randomly generated files — 1 TB total.
* Dataset B ("Mixed"): 1 TB of files with sizes from 100 KB to 2 GB,
  "to emulate more practical workloads".
* Fig. 3 uses a smaller 100 × 1 GB set.

All sit on the virtual clock, so "1 TB" costs nothing but arithmetic;
``scaled`` produces proportionally smaller datasets for quick tests while
preserving the file-size distribution.
"""

from __future__ import annotations

import numpy as np

from repro.transfer.files import Dataset, uniform_dataset
from repro.utils.rng import as_generator
from repro.utils.units import GiB, KiB

TB_DECIMAL = 1e12  # the paper quotes decimal TB


def large_dataset(*, total_bytes: float = TB_DECIMAL) -> Dataset:
    """Dataset A: equal 1 GB files summing to ``total_bytes`` (default 1 TB)."""
    file_size = 1e9
    count = max(1, int(round(total_bytes / file_size)))
    return uniform_dataset(count, file_size, name="large")


def mixed_dataset(
    *,
    total_bytes: float = TB_DECIMAL,
    min_size: float = 100 * KiB,
    max_size: float = 2 * GiB,
    median_size: float = 8e6,
    sigma: float = 2.2,
    rng: int | np.random.Generator | None = 0,
) -> Dataset:
    """Dataset B: clipped log-normal sizes in [100 KB, 2 GB] summing to 1 TB.

    The paper specifies only the size *range*; we use a small-file-heavy
    log-normal (median 8 MB) because practical mixed scientific datasets
    are dominated by small files — this is what produces the Mixed-slower-
    than-Large gap of Table I (see EXPERIMENTS.md for the calibration).
    """
    generator = as_generator(rng)
    files = []
    accumulated = 0.0
    from repro.transfer.files import Dataset, FileSpec

    while accumulated < total_bytes:
        size = float(np.exp(generator.normal(np.log(median_size), sigma)))
        size = float(np.clip(size, min_size, max_size))
        size = min(size, total_bytes - accumulated)
        if size < 1.0:
            size = total_bytes - accumulated
        files.append(FileSpec(f"mixed-{len(files):06d}", size))
        accumulated += size
    return Dataset(files, name="mixed")


def fig3_dataset() -> Dataset:
    """The Fig. 3 workload: 100 × 1 GB."""
    return uniform_dataset(100, 1e9, name="fig3")


def small_probe_dataset(*, total_bytes: float = 10e9) -> Dataset:
    """A small uniform dataset (default 10 GB) for fast tests."""
    count = max(1, int(round(total_bytes / 1e9)))
    return uniform_dataset(count, total_bytes / count, name="probe")


def scaled(dataset_factory, fraction: float, **kwargs) -> Dataset:
    """Build ``dataset_factory`` at ``fraction`` of its default total size.

    Preserves the file-size *distribution* (the per-file efficiency factor)
    while shrinking the byte count, so scaled runs keep the same bottleneck
    structure and just finish sooner.
    """
    if not (0.0 < fraction <= 1.0):
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if dataset_factory is large_dataset:
        return large_dataset(total_bytes=TB_DECIMAL * fraction)
    if dataset_factory is mixed_dataset:
        return mixed_dataset(total_bytes=TB_DECIMAL * fraction, **kwargs)
    raise ValueError(f"unsupported dataset factory: {dataset_factory!r}")
