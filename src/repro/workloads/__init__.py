"""Workload (dataset) generators matching the paper's evaluation datasets."""

from repro.workloads.datasets import (
    fig3_dataset,
    large_dataset,
    mixed_dataset,
    scaled,
    small_probe_dataset,
)

__all__ = [
    "fig3_dataset",
    "large_dataset",
    "mixed_dataset",
    "scaled",
    "small_probe_dataset",
]
