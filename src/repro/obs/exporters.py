"""Exporters: turn one run's event log into external formats.

Three targets, matching the three consumers the repo already has:

* **JSONL** is the native format (the event log itself *is* the export);
* **Prometheus text format** — a point-in-time snapshot of the registry,
  written automatically as ``metrics.prom`` when a session closes, or
  rebuildable from the log with :func:`write_prometheus_from_events`;
* **CSV** via :func:`export_run_csv` — the reconstructed series in the same
  outer-joined layout :func:`repro.analysis.export.series_to_csv` produces
  for experiment results, so downstream plotting scripts consume both.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.registry import MetricsRegistry
from repro.obs.summary import RunSummary, resolve_events_path, summarize_run
from repro.utils.timeseries import TimeSeries

__all__ = [
    "export_run_csv",
    "registry_from_summary",
    "run_to_timeseries",
    "write_prometheus_from_events",
]


def run_to_timeseries(path: str | Path) -> dict[str, TimeSeries]:
    """All metric/sample series of a run, keyed by series name."""
    return summarize_run(path).metrics


def export_run_csv(path: str | Path, out: str | Path | None = None) -> Path:
    """Write the run's reconstructed series to one CSV; returns the path.

    ``out`` defaults to ``series.csv`` next to the event log.
    """
    from repro.analysis.export import series_to_csv

    events_path = resolve_events_path(path)
    out = Path(out) if out is not None else events_path.parent / "series.csv"
    return series_to_csv(run_to_timeseries(events_path), out)


def registry_from_summary(summary: RunSummary) -> MetricsRegistry:
    """Rebuild a best-effort registry from reconstructed series.

    Series become gauges holding their last value plus ``<name>:mean``
    gauges; span aggregates become ``span_wall_seconds`` family entries.
    Lossy by design — counters and histograms only live in ``metrics.prom``
    snapshots — but enough to regenerate a snapshot from an archived log.
    """
    registry = MetricsRegistry()
    for name, series in summary.metrics.items():
        if len(series):
            registry.gauge(name).set(series.last)
            registry.gauge(f"{name}:mean").set(series.mean())
    spans = registry.gauge("span_wall_seconds", label_names=("span",))
    for agg in summary.spans.values():
        spans.labels(span=agg.name).set(agg.wall_seconds)
    counters = registry.counter("incidents_total", label_names=("kind",))
    for incident in summary.incidents:
        counters.labels(kind=incident.kind).inc()
    return registry


def write_prometheus_from_events(path: str | Path, out: str | Path | None = None) -> Path:
    """Regenerate a Prometheus snapshot from an archived event log."""
    events_path = resolve_events_path(path)
    out = Path(out) if out is not None else events_path.parent / "metrics.from-events.prom"
    registry = registry_from_summary(summarize_run(events_path))
    out.write_text(registry.to_prometheus())
    return out
