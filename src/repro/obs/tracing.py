"""Span-based tracing over both the wall clock and the virtual clock.

A :class:`Tracer` maintains a stack of open spans (the pipeline runs
single-threaded, so a plain stack is the whole context machinery) and emits
one record per closed span to a sink callable — normally the JSONL event log
of an :class:`repro.obs.session.ObsSession`.  Spans nest: the exploration →
simulator-training → fine-tune → deployment → transfer phases each open a
span, and inner instrumentation (``ppo/update``, ``transfer/run``) lands
underneath whatever phase is active.

Every span records wall time (``time.perf_counter``) *and*, when a virtual
clock is attached, the emulator/simulator virtual time — so "this PPO update
took 3 ms of wall time during virtual second 42" is one record.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import wraps

__all__ = ["SpanRecord", "Tracer"]


@dataclass
class SpanRecord:
    """One (possibly still open) span."""

    name: str
    parent: str | None = None
    wall_start: float = 0.0
    wall_end: float | None = None
    virtual_start: float | None = None
    virtual_end: float | None = None
    attrs: dict = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)
    error: str | None = None

    @property
    def wall_duration(self) -> float | None:
        """Wall seconds spent inside the span (None while open)."""
        if self.wall_end is None:
            return None
        return self.wall_end - self.wall_start

    @property
    def virtual_duration(self) -> float | None:
        """Virtual seconds elapsed inside the span (None without a clock)."""
        if self.virtual_end is None or self.virtual_start is None:
            return None
        return self.virtual_end - self.virtual_start

    def to_dict(self) -> dict:
        """The event-log record for this span."""
        record = {
            "type": "span",
            "name": self.name,
            "parent": self.parent,
            "wall_start": self.wall_start,
            "wall_end": self.wall_end,
            "t_start": self.virtual_start,
            "t_end": self.virtual_end,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if self.error is not None:
            record["error"] = self.error
        return record


class Tracer:
    """Nested-span recorder; works standalone or attached to a session."""

    def __init__(
        self,
        sink: Callable[[dict], None] | None = None,
        *,
        wall_clock: Callable[[], float] = time.perf_counter,
        virtual_clock: Callable[[], float | None] | None = None,
        keep_finished: bool = True,
    ) -> None:
        self.sink = sink
        self.wall_clock = wall_clock
        self.virtual_clock = virtual_clock
        self.keep_finished = keep_finished
        self._stack: list[SpanRecord] = []
        self.finished: list[SpanRecord] = []

    def _virtual_now(self) -> float | None:
        return self.virtual_clock() if self.virtual_clock is not None else None

    @property
    def current(self) -> SpanRecord | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a span for the duration of the ``with`` block.

        Exceptions propagate; the span is closed with ``error`` set to the
        exception's repr so the event log shows *where* a run died.
        """
        record = SpanRecord(
            name=name,
            parent=self._stack[-1].name if self._stack else None,
            wall_start=self.wall_clock(),
            virtual_start=self._virtual_now(),
            attrs=dict(attrs),
        )
        self._stack.append(record)
        try:
            yield record
        except BaseException as exc:
            record.error = repr(exc)
            raise
        finally:
            record.wall_end = self.wall_clock()
            record.virtual_end = self._virtual_now()
            popped = self._stack.pop()
            assert popped is record
            if self.keep_finished:
                self.finished.append(record)
            if self.sink is not None:
                self.sink(record.to_dict())

    def traced(self, name: str | None = None, **attrs):
        """Decorator form of :meth:`span` (span named after the function)."""

        def decorate(fn):
            span_name = name or fn.__qualname__

            @wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name, **attrs):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def event(self, name: str, *, t: float | None = None, **attrs) -> dict:
        """Record a point-in-time event, attached to the current span.

        ``t`` is the virtual timestamp; when omitted the virtual clock (if
        any) is sampled.  The event is appended to the open span's ``events``
        and emitted to the sink as its own record.
        """
        record = {
            "type": "event",
            "name": name,
            "t": t if t is not None else self._virtual_now(),
            "wall": self.wall_clock(),
            "span": self._stack[-1].name if self._stack else None,
        }
        if attrs:
            record["attrs"] = attrs
        if self._stack:
            self._stack[-1].events.append(record)
        if self.sink is not None:
            self.sink(record)
        return record
