"""Zero-dependency metrics primitives: counters, gauges, histograms, families.

The registry is the aggregation half of :mod:`repro.obs` — scalar state that
is cheap to update on a hot path and exported once, at the end of a run, as a
Prometheus text-format snapshot or a JSON dict.  Time-*series* data (loss
curves, per-interval throughput) goes through the event log instead (see
:mod:`repro.obs.events`); the registry deliberately holds no per-sample
history so that a million updates cost a million float adds, not a million
appends.

All metrics are clock-agnostic: nothing here reads wall or virtual time, so
the same registry works under the emulator's virtual clock and real time.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterator, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds — spans µs-scale decision latencies
#: (the paper's 0.00011 s agent claim) up to multi-second stalls.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class Counter:
    """Monotonically increasing value (events seen, bytes moved, retries)."""

    __slots__ = ("name", "labels", "_value")
    kind = "counter"

    def __init__(self, name: str, labels: dict[str, str] | None = None) -> None:
        self.name = name
        self.labels = labels or {}
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        """Current total."""
        return self._value


class Gauge:
    """Value that can go up and down (queue depth, buffer occupancy)."""

    __slots__ = ("name", "labels", "_value")
    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, str] | None = None) -> None:
        self.name = name
        self.labels = labels or {}
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self._value -= amount

    @property
    def value(self) -> float:
        """Current value."""
        return self._value


class Histogram:
    """Fixed-bucket histogram (cumulative-bucket export, Prometheus style).

    Buckets are upper bounds; an implicit ``+Inf`` bucket catches the rest.
    Observing costs one binary search plus two adds — no per-sample storage.
    """

    __slots__ = ("name", "labels", "buckets", "_counts", "_sum", "_count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: dict[str, str] | None = None,
        *,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r} buckets must be sorted and non-empty")
        self.name = name
        self.labels = labels or {}
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        if value != value:  # NaN (e.g. a dropped probe reading): not a sample
            return
        self._counts[bisect_left(self.buckets, value)] += 1
        self._sum += value
        self._count += 1

    def observe_many(self, values) -> None:
        """Record a batch of samples in one vectorized pass.

        For end-of-run exports replaying a whole series (the transfer
        engine's throughput histogram): one numpy ``searchsorted`` +
        ``bincount`` instead of a binary search per sample.  NaNs are
        skipped, matching :meth:`observe`.
        """
        import numpy as np

        arr = np.asarray(values, dtype=float)
        arr = arr[arr == arr]  # drop NaN
        if arr.size == 0:
            return
        idx = np.searchsorted(self.buckets, arr, side="left")
        for slot, n in zip(*np.unique(idx, return_counts=True)):
            self._counts[int(slot)] += int(n)
        self._sum += float(arr.sum())
        self._count += int(arr.size)

    @property
    def count(self) -> int:
        """Number of samples observed."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed samples."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean sample (nan when empty)."""
        return self._sum / self._count if self._count else float("nan")

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending at ``+Inf``."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip((*self.buckets, float("inf")), self._counts):
            running += n
            out.append((bound, running))
        return out

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram's samples into this one (bucket-wise sum).

        Both histograms must share the same bucket bounds — merging across
        different binnings would silently misplace samples.
        """
        if other.buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name!r} bucket mismatch: "
                f"{self.buckets} vs {other.buckets}"
            )
        for i, n in enumerate(other._counts):
            self._counts[i] += n
        self._sum += other._sum
        self._count += other._count


class MetricFamily:
    """A named metric with label dimensions; children are created on demand."""

    def __init__(self, cls: type, name: str, label_names: Sequence[str], **kwargs) -> None:
        self._cls = cls
        self.name = name
        self.label_names = tuple(label_names)
        self._kwargs = kwargs
        self._children: dict[tuple[str, ...], object] = {}

    @property
    def kind(self) -> str:
        """The metric kind of this family's children."""
        return self._cls.kind  # type: ignore[attr-defined]

    def labels(self, **labels: str):
        """The child metric for one label combination (created if new)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"family {self.name!r} expects labels {self.label_names}, got {sorted(labels)}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._cls(self.name, dict(zip(self.label_names, key)), **self._kwargs)
            self._children[key] = child
        return child

    def children(self) -> Iterator:
        """All instantiated children, in creation order."""
        return iter(self._children.values())


class MetricsRegistry:
    """Holds every metric of one run and renders the export formats.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: calling twice
    with the same name returns the same object, so instrumentation sites
    don't need to coordinate.  Re-using a name with a different kind raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, cls: type, name: str, label_names, kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            want_family = bool(label_names)
            is_family = isinstance(existing, MetricFamily)
            kind = existing.kind  # type: ignore[union-attr]
            if kind != cls.kind or want_family != is_family:
                raise ValueError(
                    f"metric {name!r} already registered as {kind}"
                    f"{' family' if is_family else ''}"
                )
            return existing
        metric = (
            MetricFamily(cls, name, label_names, **kwargs)
            if label_names
            else cls(name, **kwargs)
        )
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, *, label_names: Sequence[str] = ()) -> Counter:
        """Get or create a counter (or counter family when labelled)."""
        return self._get_or_create(Counter, name, tuple(label_names), {})

    def gauge(self, name: str, *, label_names: Sequence[str] = ()) -> Gauge:
        """Get or create a gauge (or gauge family when labelled)."""
        return self._get_or_create(Gauge, name, tuple(label_names), {})

    def histogram(
        self,
        name: str,
        *,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        label_names: Sequence[str] = (),
    ) -> Histogram:
        """Get or create a histogram (or histogram family when labelled)."""
        return self._get_or_create(
            Histogram, name, tuple(label_names), {"buckets": tuple(buckets)}
        )

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry's metrics into this one, key-collision-free.

        The aggregation rule per kind: **counters** add, **histograms** add
        bucket-wise (same bounds required), **gauges** adopt the incoming
        value (merge order defines recency — merge workers oldest-first).
        Labelled families merge child-by-child on the full label tuple, so
        per-tenant counters from separate fleet workers land on their own
        label rows instead of colliding on the family name.  A name
        registered with a different kind (or family-ness, or label schema)
        on the two sides raises ``ValueError`` rather than mixing meanings.
        """
        for name, theirs in other._metrics.items():
            if isinstance(theirs, MetricFamily):
                family = self._get_or_create(
                    theirs._cls, name, theirs.label_names, theirs._kwargs
                )
                if not isinstance(family, MetricFamily) or (
                    family.label_names != theirs.label_names
                ):
                    raise ValueError(
                        f"family {name!r} label mismatch: "
                        f"{getattr(family, 'label_names', ())} vs {theirs.label_names}"
                    )
                for child in theirs.children():
                    mine = family.labels(**child.labels)
                    _merge_metric(mine, child)
            else:
                kwargs = {"buckets": theirs.buckets} if isinstance(theirs, Histogram) else {}
                mine = self._get_or_create(type(theirs), name, (), kwargs)
                _merge_metric(mine, theirs)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator:
        return iter(self._metrics.values())

    def _flat(self) -> Iterator:
        for metric in self._metrics.values():
            if isinstance(metric, MetricFamily):
                yield from metric.children()
            else:
                yield metric

    # ------------------------------------------------------------- exporters
    def snapshot(self) -> dict:
        """JSON-friendly dump of every metric's current state."""
        out: dict[str, list[dict]] = {}
        for m in self._flat():
            entry: dict = {"kind": m.kind, "labels": m.labels}
            if isinstance(m, Histogram):
                entry.update(
                    count=m.count,
                    sum=m.sum,
                    buckets=[[b, n] for b, n in m.bucket_counts()],
                )
            else:
                entry["value"] = m.value
            out.setdefault(m.name, []).append(entry)
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (one snapshot, no timestamps)."""
        lines: list[str] = []
        for name, metric in self._metrics.items():
            prom = name.replace("/", "_").replace(".", "_").replace("-", "_")
            lines.append(f"# TYPE {prom} {metric.kind}")  # type: ignore[union-attr]
            children = (
                metric.children() if isinstance(metric, MetricFamily) else [metric]
            )
            for m in children:
                label_str = _format_labels(m.labels)
                if isinstance(m, Histogram):
                    for bound, count in m.bucket_counts():
                        le = "+Inf" if bound == float("inf") else _format_value(bound)
                        extra = dict(m.labels, le=le)
                        lines.append(f"{prom}_bucket{_format_labels(extra)} {count}")
                    lines.append(f"{prom}_sum{label_str} {_format_value(m.sum)}")
                    lines.append(f"{prom}_count{label_str} {m.count}")
                else:
                    lines.append(f"{prom}{label_str} {_format_value(m.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _merge_metric(mine, theirs) -> None:
    """Fold one concrete metric into another of the same kind."""
    if isinstance(theirs, Counter):
        mine.inc(theirs.value)
    elif isinstance(theirs, Histogram):
        mine.merge_from(theirs)
    else:  # Gauge: last write wins, and the incoming side is newer
        mine.set(theirs.value)


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in labels.items())
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))
