"""Reconstruct a run from its JSONL event log: spans, series, incidents.

``summarize_run`` is the inverse of the instrumentation: given a run
directory (or the ``events.jsonl`` inside it) it rebuilds

* the span tree as per-name aggregates (count, wall seconds, virtual
  seconds, parent) — the phase breakdown of the pipeline;
* every ``metric`` series and every numeric field of every ``sample``
  record as :class:`~repro.utils.timeseries.TimeSeries` — PPO loss curves,
  per-interval throughputs, buffer occupancy;
* every supervisor incident, pairing ``incident/detected`` with
  ``incident/recovered`` events into time-to-detect / time-to-recover;
* the decision trace (``TraceRecorder`` records share the log format).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.events import read_events
from repro.obs.session import EVENTS_FILENAME, PROMETHEUS_FILENAME
from repro.utils.tables import render_kv, render_table
from repro.utils.timeseries import TimeSeries

__all__ = [
    "IncidentSummary",
    "RunSummary",
    "diff_runs",
    "render_summary",
    "resolve_events_path",
    "summarize_run",
]


@dataclass(frozen=True)
class IncidentSummary:
    """One supervisor incident reconstructed from the event log."""

    kind: str
    t_onset: float
    t_detected: float
    t_recovered: float | None
    retries: int
    goodput_lost_bytes: float

    @property
    def time_to_detect(self) -> float:
        """Seconds between losing forward progress and detection."""
        return self.t_detected - self.t_onset

    @property
    def time_to_recover(self) -> float | None:
        """Seconds between onset and recovery (None if never recovered)."""
        if self.t_recovered is None:
            return None
        return self.t_recovered - self.t_onset


@dataclass
class SpanAggregate:
    """All closed spans of one name, rolled up."""

    name: str
    parent: str | None
    count: int = 0
    wall_seconds: float = 0.0
    virtual_seconds: float = 0.0
    errors: int = 0


@dataclass
class RunSummary:
    """Everything reconstructable from one event log."""

    label: str = ""
    events_total: int = 0
    spans: dict[str, SpanAggregate] = field(default_factory=dict)
    metrics: dict[str, TimeSeries] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    incidents: list[IncidentSummary] = field(default_factory=list)
    decisions: int = 0
    decision_changes: int = 0
    overhead_seconds: float | None = None

    @property
    def churn(self) -> float:
        """Fraction of decisions that changed the concurrency triple."""
        if self.decisions <= 1:
            return 0.0
        return self.decision_changes / (self.decisions - 1)


def resolve_events_path(path: str | Path) -> Path:
    """Accept a run directory or a direct path to an ``events.jsonl``."""
    path = Path(path)
    if path.is_dir():
        return path / EVENTS_FILENAME
    return path


def _read_counters(prom_path: Path) -> dict[str, float]:
    """Final counter values from the session's Prometheus snapshot.

    Counters never ride the event log (registry-only, exported once at
    session close), so the snapshot is the only place their totals live.
    """
    counters: dict[str, float] = {}
    if not prom_path.exists():
        return counters
    counter_names: set[str] = set()
    for line in prom_path.read_text().splitlines():
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) == 4 and parts[3] == "counter":
                counter_names.add(parts[2])
            continue
        if not line or line.startswith("#"):
            continue
        name, _, value = line.partition(" ")
        if name in counter_names:
            try:
                counters[name] = float(value)
            except ValueError:
                continue
    return counters


def summarize_run(path: str | Path) -> RunSummary:
    """Rebuild a :class:`RunSummary` from a run directory or event log."""
    events_path = resolve_events_path(path)
    events = read_events(events_path)
    summary = RunSummary(events_total=len(events))
    summary.counters = _read_counters(events_path.with_name(PROMETHEUS_FILENAME))
    seq = 0  # fallback x-axis for records with no virtual timestamp
    last_decision: list | None = None
    for record in events:
        kind = record.get("type")
        if kind == "meta":
            summary.label = record.get("label", summary.label) or summary.label
            if "overhead_seconds" in record:
                summary.overhead_seconds = float(record["overhead_seconds"])
        elif kind == "span":
            agg = summary.spans.get(record["name"])
            if agg is None:
                agg = SpanAggregate(record["name"], record.get("parent"))
                summary.spans[record["name"]] = agg
            agg.count += 1
            if record.get("wall_end") is not None:
                agg.wall_seconds += record["wall_end"] - record["wall_start"]
            if record.get("t_end") is not None and record.get("t_start") is not None:
                agg.virtual_seconds += record["t_end"] - record["t_start"]
            if record.get("error"):
                agg.errors += 1
        elif kind == "metric":
            seq += 1
            t = record.get("t")
            _append(summary.metrics, record["name"], seq if t is None else t,
                    record.get("value"))
        elif kind == "sample":
            seq += 1
            t = record.get("t")
            base = record.get("name", "sample")
            for key, value in record.items():
                if key in ("type", "name", "t"):
                    continue
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    _append(summary.metrics, f"{base}.{key}",
                            seq if t is None else t, value)
        elif kind == "event":
            name = record.get("name", "")
            attrs = record.get("attrs", {})
            if name == "incident/detected":
                summary.incidents.append(
                    IncidentSummary(
                        kind=attrs.get("kind", "stall"),
                        t_onset=float(attrs.get("t_onset", record.get("t") or 0.0)),
                        t_detected=float(attrs.get("t_detected", record.get("t") or 0.0)),
                        t_recovered=None,
                        retries=0,
                        goodput_lost_bytes=0.0,
                    )
                )
            elif name == "incident/recovered":
                _resolve_incident(summary.incidents, attrs, record)
        elif "decision" in record:  # TraceRecorder records (type "decision")
            summary.decisions += 1
            decision = record["decision"]
            if last_decision is not None and decision != last_decision:
                summary.decision_changes += 1
            last_decision = decision
    return summary


def _append(metrics: dict[str, TimeSeries], name: str, t, value) -> None:
    try:
        tf, vf = float(t), float(value)
    except (TypeError, ValueError):
        return  # non-numeric stray sample: drop, don't die
    key, k = name, 2
    while True:
        series = metrics.get(key)
        if series is None:
            series = TimeSeries(key)
            metrics[key] = series
        try:
            series.append(tf, vf)
            return
        except ValueError:
            # Time went backwards: a second run in the same log restarted its
            # clock.  Keep each run's curve intact as ``name#2``, ``name#3``…
            key = f"{name}#{k}"
            k += 1


def _resolve_incident(incidents: list[IncidentSummary], attrs: dict, record: dict) -> None:
    """Attach a recovery to its detected incident (matched by kind+onset)."""
    resolved = IncidentSummary(
        kind=attrs.get("kind", "stall"),
        t_onset=float(attrs.get("t_onset", 0.0)),
        t_detected=float(attrs.get("t_detected", 0.0)),
        t_recovered=float(attrs.get("t_recovered", record.get("t") or 0.0)),
        retries=int(attrs.get("retries", 0)),
        goodput_lost_bytes=float(attrs.get("goodput_lost_bytes", 0.0)),
    )
    for i, open_incident in enumerate(incidents):
        if (
            open_incident.t_recovered is None
            and open_incident.kind == resolved.kind
            and abs(open_incident.t_onset - resolved.t_onset) < 1e-9
        ):
            incidents[i] = resolved
            return
    incidents.append(resolved)  # recovery without a logged detection


# ------------------------------------------------------------------ rendering
def render_summary(summary: RunSummary) -> str:
    """Human-readable report of one run (what ``obs summary`` prints)."""
    parts: list[str] = []
    header = {
        "events": summary.events_total,
        "decisions": summary.decisions,
        "decision churn": round(summary.churn, 3),
    }
    if summary.label:
        header = {"label": summary.label, **header}
    if summary.overhead_seconds is not None:
        header["telemetry overhead (s)"] = round(summary.overhead_seconds, 4)
    parts.append(render_kv(header, title="=== run summary ==="))

    if summary.spans:
        rows = [
            [
                a.name,
                a.parent or "-",
                a.count,
                round(a.wall_seconds, 4),
                round(a.virtual_seconds, 1),
                a.errors,
            ]
            for a in summary.spans.values()
        ]
        parts.append(
            render_table(
                ["span", "parent", "count", "wall (s)", "virtual (s)", "errors"],
                rows,
                title="phases / spans",
            )
        )

    if summary.metrics:
        rows = []
        for name in sorted(summary.metrics):
            s = summary.metrics[name]
            rows.append(
                [name, len(s), _fmt(s.values[0]), _fmt(s.last), _fmt(s.mean()),
                 _fmt(s.min()), _fmt(s.max())]
            )
        parts.append(
            render_table(
                ["series", "n", "first", "last", "mean", "min", "max"],
                rows,
                title="metric series",
            )
        )

    if summary.counters:
        rows = [[name, _fmt(value)] for name, value in sorted(summary.counters.items())]
        parts.append(render_table(["counter", "total"], rows, title="counters"))

    if summary.incidents:
        rows = [
            [
                i + 1,
                inc.kind,
                round(inc.t_onset, 1),
                round(inc.time_to_detect, 2),
                round(inc.time_to_recover, 2) if inc.time_to_recover is not None else "open",
                inc.retries,
                round(inc.goodput_lost_bytes / 1e6, 2),
            ]
            for i, inc in enumerate(summary.incidents)
        ]
        parts.append(
            render_table(
                ["#", "kind", "onset (s)", "detect (s)", "recover (s)", "retries",
                 "lost (MB)"],
                rows,
                title="supervisor incidents",
            )
        )
    return "\n\n".join(parts)


def diff_runs(a: RunSummary, b: RunSummary, *, label_a: str = "A", label_b: str = "B") -> str:
    """Compare two runs: common metric means and span wall times, with deltas."""
    parts: list[str] = []
    common_metrics = sorted(set(a.metrics) & set(b.metrics))
    if common_metrics:
        rows = []
        for name in common_metrics:
            ma, mb = a.metrics[name].mean(), b.metrics[name].mean()
            rows.append([name, _fmt(ma), _fmt(mb), _fmt_delta(ma, mb)])
        parts.append(
            render_table(
                ["series (mean)", label_a, label_b, "delta"], rows, title="metric diff"
            )
        )
    common_spans = sorted(set(a.spans) & set(b.spans))
    if common_spans:
        rows = []
        for name in common_spans:
            wa, wb = a.spans[name].wall_seconds, b.spans[name].wall_seconds
            rows.append([name, round(wa, 4), round(wb, 4), _fmt_delta(wa, wb)])
        parts.append(
            render_table(
                ["span (wall s)", label_a, label_b, "delta"], rows, title="span diff"
            )
        )
    only_a = sorted((set(a.metrics) - set(b.metrics)) | (set(a.spans) - set(b.spans)))
    only_b = sorted((set(b.metrics) - set(a.metrics)) | (set(b.spans) - set(a.spans)))
    extras = {}
    if only_a:
        extras[f"only in {label_a}"] = ", ".join(only_a)
    if only_b:
        extras[f"only in {label_b}"] = ", ".join(only_b)
    if extras:
        parts.append(render_kv(extras))
    if not parts:
        return "no overlapping series or spans to compare"
    return "\n\n".join(parts)


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "nan"
    if abs(value) >= 1000 or (0 < abs(value) < 0.01):
        return f"{value:.3g}"
    return f"{value:.3f}".rstrip("0").rstrip(".") or "0"


def _fmt_delta(a: float, b: float) -> str:
    if a != a or b != b:
        return "-"
    if a == 0:
        return "-" if b == 0 else "new"
    return f"{(b - a) / abs(a) * 100:+.1f}%"
