"""``repro.obs.store`` — the append-only experiment results database.

The SimCash-style substrate under every sweep, soak, bench and report:
one sqlite file (stdlib ``sqlite3``, WAL mode, zero new dependencies)
with ``runs`` / ``metrics`` / ``artifacts`` / ``bench`` tables, fed by
the harness through the :class:`ResultSink` protocol and queried by
``automdt report`` (baseline comparison tables) and ``automdt regress``
(cross-PR bench trajectory gating).

Usage::

    from repro.obs.store import ResultsStore, RunRecord

    store = ResultsStore("automdt.db")
    store.ingest(RunRecord(kind="experiment", scenario="figure3", seed=0,
                           metrics={"automdt_throughput_mbps": 1580.2}))
    print(store.counts())
"""

from repro.obs.store.db import (
    KNOWN_BENCH_SCHEMAS,
    STORE_SCHEMA_VERSION,
    BenchPoint,
    ResultsStore,
    RunRecord,
    flatten_numeric,
)
from repro.obs.store.identity import (
    canonical_json,
    current_git_rev,
    fingerprint_config,
    make_run_id,
)
from repro.obs.store.sink import (
    ResultSink,
    active_store,
    experiment_config,
    record_bench_report,
    record_report,
    record_session,
    resolve_store,
    set_default_store,
)

__all__ = [
    "BenchPoint",
    "KNOWN_BENCH_SCHEMAS",
    "ResultSink",
    "ResultsStore",
    "RunRecord",
    "STORE_SCHEMA_VERSION",
    "active_store",
    "canonical_json",
    "current_git_rev",
    "experiment_config",
    "fingerprint_config",
    "flatten_numeric",
    "make_run_id",
    "record_bench_report",
    "record_report",
    "record_session",
    "resolve_store",
    "set_default_store",
]
