"""Query-driven experiment reports: every number read from the store.

``automdt report`` renders the paper-style baseline comparison — AutoMDT
vs Marlin vs gradient-descent vs monolithic per scenario, with goodput /
overhead / ramp-recovery columns — as markdown and JSON.  Nothing is
hardcoded: the table is assembled from ``metrics`` rows whose names follow
the harness convention ``<policy>_<measure>`` (``automdt_throughput_mbps``,
``marlin_completion_s``, …), aggregated mean/std/min/max over every seed
of the scenario's most recent revision.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from pathlib import Path

from repro.obs.store.db import ResultsStore
from repro.obs.store.identity import current_git_rev

__all__ = ["build_report", "render_markdown", "split_policy_metric", "write_report"]

#: metric-name prefixes → display label; longest prefix wins.  The order
#: here is also the row order of the rendered tables.
POLICIES: tuple[tuple[str, str], ...] = (
    ("automdt", "AutoMDT"),
    ("marlin", "Marlin"),
    ("multivariate_gd", "gradient-descent"),
    ("gd", "gradient-descent"),
    ("monolithic", "monolithic"),
    ("modular", "modular (static optimal)"),
    ("globus", "Globus"),
    ("online_drl", "online-DRL"),
)

#: column label → metric-name suffixes that feed it (first match wins).
MEASURES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("goodput (Mbps)", ("_throughput_mbps", "_goodput_mbps")),
    ("completion (s)", ("_completion_s",)),
    ("mean threads", ("_mean_total_threads", "_mean_threads")),
    ("ramp/recovery (s)", ("_reach_90pct_s", "_time_to_90pct_s", "_recovery_s")),
)

_POLICY_ORDER = {label: i for i, (_, label) in enumerate(POLICIES)}
_MEASURE_ORDER = {label: i for i, (label, _) in enumerate(MEASURES)}


def split_policy_metric(name: str) -> tuple[str, str] | None:
    """``automdt_throughput_mbps`` → ``("AutoMDT", "goodput (Mbps)")``.

    Returns ``None`` for metric names outside the policy × measure grid.
    """
    for prefix, policy in POLICIES:
        if name.startswith(prefix + "_"):
            rest = name[len(prefix):]
            for column, suffixes in MEASURES:
                if any(rest.endswith(suffix) for suffix in suffixes):
                    return policy, column
            return None
    return None


def _stats(values: Sequence[float]) -> dict[str, float]:
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return {
        "mean": mean,
        "std": math.sqrt(var),
        "min": min(values),
        "max": max(values),
        "n": n,
    }


def build_report(
    store: ResultsStore,
    *,
    kind: str = "experiment",
    scenarios: Sequence[str] | None = None,
) -> dict:
    """Aggregate the store into a JSON-able report structure.

    Per scenario only the most recent ``git_rev`` present is reported (the
    append-only history stays queryable; the report answers "where are we
    now").  Within that revision every run contributes, aggregated over
    seeds.
    """
    rows = store.metric_rows(kind)
    if scenarios:
        wanted = set(scenarios)
        rows = [row for row in rows if row["scenario"] in wanted]

    # Latest revision per scenario (rows arrive ordered by started).
    latest_rev: dict[str, str] = {}
    for row in rows:
        latest_rev[row["scenario"]] = row["git_rev"]

    scenario_data: dict[str, dict] = {}
    samples: dict[tuple[str, str, str], list[float]] = {}
    plain: dict[tuple[str, str], list[float]] = {}
    for row in rows:
        scenario = row["scenario"]
        if row["git_rev"] != latest_rev[scenario]:
            continue
        entry = scenario_data.setdefault(
            scenario,
            {"git_rev": latest_rev[scenario], "seeds": set(), "run_ids": set()},
        )
        if row["seed"] is not None:
            entry["seeds"].add(int(row["seed"]))
        entry["run_ids"].add(row["run_id"])
        if row["labels"] != "{}":
            continue
        split = split_policy_metric(row["name"])
        if split is not None:
            policy, column = split
            samples.setdefault((scenario, policy, column), []).append(row["value"])
        else:
            plain.setdefault((scenario, row["name"]), []).append(row["value"])

    for (scenario, policy, column), values in samples.items():
        policies = scenario_data[scenario].setdefault("policies", {})
        policies.setdefault(policy, {})[column] = _stats(values)
    for (scenario, name), values in plain.items():
        scenario_data[scenario].setdefault("metrics", {})[name] = _stats(values)

    report_scenarios = {}
    for scenario in sorted(scenario_data):
        entry = scenario_data[scenario]
        report_scenarios[scenario] = {
            "git_rev": entry["git_rev"],
            "seeds": sorted(entry["seeds"]),
            "runs": len(entry["run_ids"]),
            "policies": {
                policy: dict(
                    sorted(
                        columns.items(),
                        key=lambda kv: _MEASURE_ORDER.get(kv[0], 99),
                    )
                )
                for policy, columns in sorted(
                    entry.get("policies", {}).items(),
                    key=lambda kv: _POLICY_ORDER.get(kv[0], 99),
                )
            },
            "metrics": dict(sorted(entry.get("metrics", {}).items())),
        }
    return {
        "store": str(store.path),
        "kind": kind,
        "generated_at_rev": current_git_rev(),
        "scenarios": report_scenarios,
    }


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "—"
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    if abs(value) >= 100:
        return f"{value:.1f}"
    if abs(value) >= 1:
        return f"{value:.2f}"
    return f"{value:.4g}"


def _cell(stats: Mapping[str, float]) -> str:
    if stats["n"] > 1 and stats["std"] > 0:
        return f"{_fmt(stats['mean'])} ± {_fmt(stats['std'])}"
    return _fmt(stats["mean"])


def render_markdown(report: Mapping, *, max_plain_metrics: int = 14) -> str:
    """The report as a markdown document (what CI publishes)."""
    lines = [
        "# AutoMDT experiment report",
        "",
        f"_store: `{report['store']}` · kind: `{report['kind']}` · "
        f"generated at rev `{report['generated_at_rev']}`_",
        "",
    ]
    if not report["scenarios"]:
        lines.append("_(the store holds no matching runs)_")
        return "\n".join(lines) + "\n"
    for scenario, entry in report["scenarios"].items():
        seeds = entry["seeds"]
        seed_text = (
            f"seeds {seeds[0]}–{seeds[-1]}" if len(seeds) > 1
            else f"seed {seeds[0]}" if seeds else "no seeds"
        )
        lines.append(
            f"## `{scenario}` — {entry['runs']} run(s), {seed_text}, "
            f"rev `{entry['git_rev']}`"
        )
        lines.append("")
        policies = entry.get("policies", {})
        if policies:
            columns = sorted(
                {column for stats in policies.values() for column in stats},
                key=lambda c: _MEASURE_ORDER.get(c, 99),
            )
            lines.append("| policy | " + " | ".join(columns) + " |")
            lines.append("|---" * (len(columns) + 1) + "|")
            for policy, stats in policies.items():
                cells = [
                    _cell(stats[column]) if column in stats else "—"
                    for column in columns
                ]
                lines.append(f"| {policy} | " + " | ".join(cells) + " |")
            lines.append("")
        metrics = entry.get("metrics", {})
        if metrics:
            shown = list(metrics.items())[:max_plain_metrics]
            lines.append("<details><summary>other metrics</summary>")
            lines.append("")
            lines.append("| metric | mean | std | n |")
            lines.append("|---|---|---|---|")
            for name, stats in shown:
                lines.append(
                    f"| `{name}` | {_fmt(stats['mean'])} | "
                    f"{_fmt(stats['std'])} | {int(stats['n'])} |"
                )
            if len(metrics) > len(shown):
                lines.append("")
                lines.append(f"_… and {len(metrics) - len(shown)} more_")
            lines.append("")
            lines.append("</details>")
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def write_report(
    store: ResultsStore,
    out: str | Path,
    *,
    kind: str = "experiment",
    scenarios: Sequence[str] | None = None,
) -> Path:
    """Build and write the markdown report; returns the output path."""
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_markdown(build_report(store, kind=kind, scenarios=scenarios)))
    return out
