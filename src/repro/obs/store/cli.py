"""``automdt store | report | regress`` — the results-store subcommands.

Wired into the main ``automdt`` parser by :mod:`repro.harness.cli`::

    automdt store ingest BENCH_*.json        # backfill bench artifacts
    automdt store info                       # table counts + recent runs
    automdt report [--format json] [--out report.md] [--scenario NAME]
    automdt regress [BENCH...] [--threshold 0.2] [--no-ingest]

Every subcommand takes ``--store DB`` (default: ``$AUTOMDT_STORE`` or
``automdt.db``).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro.utils.errors import StoreError

__all__ = ["add_store_parsers", "run_regress_command", "run_report_command", "run_store_command"]

_DEFAULT_DB = "automdt.db"


def _store_default() -> str:
    return os.environ.get("AUTOMDT_STORE", _DEFAULT_DB)


def _add_store_arg(parser) -> None:
    parser.add_argument(
        "--store", default=None, metavar="DB",
        help=f"results database path (default: $AUTOMDT_STORE or {_DEFAULT_DB})",
    )


def add_store_parsers(sub) -> None:
    """Register ``store``/``report``/``regress`` on the argparse subparsers."""
    store = sub.add_parser("store", help="experiment results store maintenance")
    store_sub = store.add_subparsers(dest="store_command", required=True)

    ingest = store_sub.add_parser(
        "ingest", help="backfill BENCH_*.json artifacts into the store"
    )
    ingest.add_argument("paths", nargs="+", help="bench report JSON files")
    _add_store_arg(ingest)

    info = store_sub.add_parser("info", help="table counts and recent runs")
    info.add_argument("-n", type=int, default=10, help="recent runs to list")
    _add_store_arg(info)

    report = sub.add_parser(
        "report", help="query-driven comparison report from the results store"
    )
    report.add_argument(
        "--format", choices=("markdown", "json"), default="markdown",
        help="output format (default: markdown)",
    )
    report.add_argument("--out", default=None, help="write the report here")
    report.add_argument(
        "--scenario", action="append", default=None,
        help="restrict to a scenario (repeatable)",
    )
    report.add_argument(
        "--kind", default="experiment",
        help="run kind to report on (default: experiment)",
    )
    _add_store_arg(report)

    regress = sub.add_parser(
        "regress", help="compare BENCH_*.json against the stored baseline"
    )
    regress.add_argument(
        "paths", nargs="*",
        help="bench reports (default: BENCH_*.json in the current directory)",
    )
    regress.add_argument(
        "--threshold", type=float, default=0.2,
        help="relative regression threshold on gated keys (default: 0.2)",
    )
    regress.add_argument(
        "--suite", action="append", default=None,
        help="restrict to a suite (repeatable)",
    )
    regress.add_argument(
        "--no-ingest", action="store_true",
        help="compare only; do not append the current reports to the trajectory",
    )
    regress.add_argument(
        "--gate-absolute", action="store_true",
        help="also gate informational (hardware-dependent) keys",
    )
    regress.add_argument("--json", action="store_true", help="machine-readable output")
    _add_store_arg(regress)


def _open_store(args):
    from repro.obs.store.db import ResultsStore

    return ResultsStore(args.store or _store_default())


def run_store_command(args) -> int:
    """``automdt store ...`` dispatch; returns the process exit code."""
    store = _open_store(args)
    if args.store_command == "ingest":
        codes = []
        for path in args.paths:
            try:
                suite, report, _flat = _load(path)
                run_id = store.ingest_bench(suite, report, path=path)
            except (FileNotFoundError, json.JSONDecodeError, StoreError) as exc:
                print(f"{type(exc).__name__}: {exc}", file=sys.stderr)
                codes.append(2)
                continue
            print(f"ingested {path} → {suite} run {run_id}")
            codes.append(0)
        return max(codes, default=0)
    if args.store_command == "info":
        counts = store.counts()
        print(f"store {store.path} (schema v{_user_version(store)})")
        for table, count in counts.items():
            print(f"  {table:<10} {count} row(s)")
        recent = store.runs()[: args.n]
        if recent:
            print("recent runs:")
            for row in recent:
                seed = "" if row["seed"] is None else f" seed {row['seed']}"
                print(
                    f"  {row['run_id']}  {row['kind']}/{row['scenario']}"
                    f"{seed}  rev {row['git_rev']}"
                )
        return 0
    raise AssertionError(
        f"unhandled store command {args.store_command!r}"
    )  # pragma: no cover


def _user_version(store) -> int:
    return store.connection.execute("PRAGMA user_version").fetchone()[0]


def _load(path):
    from repro.obs.store.regress import load_bench_file

    return load_bench_file(path)


def run_report_command(args) -> int:
    """``automdt report``; returns the process exit code."""
    from repro.obs.store.report import build_report, render_markdown

    store = _open_store(args)
    if not store.path.exists():
        print(f"no results store at {store.path}", file=sys.stderr)
        return 2
    report = build_report(store, kind=args.kind, scenarios=args.scenario)
    text = (
        json.dumps(report, indent=2, sort_keys=True)
        if args.format == "json"
        else render_markdown(report)
    )
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    return 0


def run_regress_command(args) -> int:
    """``automdt regress``; non-zero exit on any gated regression."""
    from repro.obs.store.regress import render_regress, run_regress

    paths = args.paths or sorted(str(p) for p in Path.cwd().glob("BENCH_*.json"))
    if not paths:
        print("no BENCH_*.json reports found to compare", file=sys.stderr)
        return 2
    store = _open_store(args)
    try:
        result = run_regress(
            store,
            paths,
            threshold=args.threshold,
            ingest=not args.no_ingest,
            suites=args.suite,
            gate_informational=args.gate_absolute,
        )
    except (FileNotFoundError, json.JSONDecodeError, StoreError) as exc:
        print(f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        print(render_regress(result), end="")
    return 0 if result["ok"] else 1
