"""Append-only experiment results store on stdlib ``sqlite3`` (WAL mode).

One database file holds every result the harness produces — experiment
grid cells, chaos/fleet soaks, fleet reports, bench trajectories, and
closed observability sessions — in four tables:

* ``runs`` — one row per execution: ``run_id`` (derived, see
  :mod:`repro.obs.store.identity`), kind, scenario, git revision, seed,
  config fingerprint, wall start/finish;
* ``metrics`` — flattened numeric results, optionally labelled
  (``{"tenant": "tenant0"}``-style JSON labels);
* ``artifacts`` — files a run left behind, content-addressed by sha256;
* ``bench`` — the ``BENCH_*.json`` trajectory: (suite, key, value,
  schema_version) per ingested report.

The store is **append-only**: nothing here updates or deletes rows.
Re-ingesting a run with the same identity is an idempotent no-op (the
``INSERT OR IGNORE`` on the primary key short-circuits the whole
transaction), and every ingest is a single transaction, so a crash
mid-ingest leaves the previously committed state intact and the partial
run absent.  WAL mode lets parallel sweep workers append concurrently
from separate processes; connections are re-opened per process so a
forked worker never shares the parent's handle.
"""

from __future__ import annotations

import hashlib
import os
import sqlite3
import time
from collections.abc import Mapping, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.store.identity import (
    canonical_json,
    current_git_rev,
    fingerprint_config,
    make_run_id,
)
from repro.utils.errors import BenchSchemaError, StoreError

__all__ = [
    "BenchPoint",
    "KNOWN_BENCH_SCHEMAS",
    "ResultsStore",
    "RunRecord",
    "STORE_SCHEMA_VERSION",
    "flatten_numeric",
]

#: Version stamped into ``PRAGMA user_version`` when a database is created.
STORE_SCHEMA_VERSION = 1

#: ``schema`` values of ``BENCH_*.json`` reports this code can ingest.
KNOWN_BENCH_SCHEMAS = frozenset({1})

#: Keys of a bench report that are identity/provenance, not measurements.
_BENCH_META_KEYS = frozenset({"bench", "schema", "out"})

_DDL = (
    """
    CREATE TABLE IF NOT EXISTS runs (
        run_id             TEXT PRIMARY KEY,
        kind               TEXT NOT NULL,
        scenario           TEXT NOT NULL,
        git_rev            TEXT NOT NULL,
        seed               INTEGER,
        config_fingerprint TEXT NOT NULL,
        config_json        TEXT NOT NULL DEFAULT '{}',
        started            REAL,
        finished           REAL,
        label              TEXT NOT NULL DEFAULT ''
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_runs_cell
        ON runs (kind, scenario, seed, config_fingerprint, git_rev)
    """,
    """
    CREATE TABLE IF NOT EXISTS metrics (
        run_id TEXT NOT NULL REFERENCES runs (run_id),
        name   TEXT NOT NULL,
        value  REAL NOT NULL,
        labels TEXT NOT NULL DEFAULT '{}'
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_metrics_run ON metrics (run_id)",
    "CREATE INDEX IF NOT EXISTS idx_metrics_name ON metrics (name)",
    """
    CREATE TABLE IF NOT EXISTS artifacts (
        run_id TEXT NOT NULL REFERENCES runs (run_id),
        path   TEXT NOT NULL,
        sha256 TEXT NOT NULL
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_artifacts_run ON artifacts (run_id)",
    """
    CREATE TABLE IF NOT EXISTS bench (
        run_id         TEXT NOT NULL REFERENCES runs (run_id),
        suite          TEXT NOT NULL,
        key            TEXT NOT NULL,
        value          REAL NOT NULL,
        schema_version INTEGER NOT NULL
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_bench_suite ON bench (suite, key)",
)


def _flatten(prefix: str, value, out: dict[str, float]) -> None:
    if isinstance(value, bool):
        out[prefix] = float(value)
    elif isinstance(value, (int, float)):
        v = float(value)
        if v == v and abs(v) != float("inf"):  # finite
            out[prefix] = v
    elif isinstance(value, Mapping):
        for key, sub in value.items():
            _flatten(f"{prefix}.{key}", sub, out)
    elif isinstance(value, (tuple, list)) and all(
        isinstance(v, (int, float, bool)) for v in value
    ):
        for i, sub in enumerate(value):
            _flatten(f"{prefix}[{i}]", sub, out)
    # strings, None, nested heterogenous lists: not metrics


def flatten_numeric(mapping: Mapping) -> dict[str, float]:
    """Dotted-key flattening of the numeric parts of a nested mapping.

    Same convention as the harness's ``flatten_summary`` (bools become
    0/1, finite numbers pass through, everything else is skipped), kept
    local so the store does not import the harness it feeds.
    """
    out: dict[str, float] = {}
    for key, value in mapping.items():
        _flatten(str(key), value, out)
    return out


def _sha256_file(path: str | Path) -> str:
    """Content hash of an artifact file; empty string if unreadable."""
    try:
        digest = hashlib.sha256()
        with open(path, "rb") as fh:
            for block in iter(lambda: fh.read(1 << 20), b""):
                digest.update(block)
        return digest.hexdigest()
    except OSError:
        return ""


@dataclass(frozen=True)
class RunRecord:
    """Everything one run contributes to the store, pre-ingest.

    ``metrics`` may be arbitrarily nested (it is flattened on ingest);
    ``labelled_metrics`` rows are ``(name, value, labels)`` triples for
    per-tenant / per-case breakdowns.  ``git_rev`` and ``started`` default
    to the current revision and wall clock at ingest time.
    """

    kind: str
    scenario: str
    seed: int | None = None
    config: Mapping | None = None
    git_rev: str | None = None
    started: float | None = None
    finished: float | None = None
    metrics: Mapping = field(default_factory=dict)
    labelled_metrics: Sequence[tuple[str, float, Mapping[str, str]]] = ()
    artifacts: Sequence[str | Path] = ()
    label: str = ""


@dataclass(frozen=True)
class BenchPoint:
    """One ingested bench report: identity plus its flat key→value map."""

    run_id: str
    suite: str
    git_rev: str
    started: float
    schema_version: int
    values: Mapping[str, float]


class ResultsStore:
    """The append-only sqlite results database (one file, WAL mode)."""

    def __init__(self, path: str | Path, *, timeout: float = 30.0) -> None:
        self.path = Path(path)
        self._timeout = timeout
        self._connection: sqlite3.Connection | None = None
        self._pid: int | None = None

    # ------------------------------------------------------------ connection
    @property
    def connection(self) -> sqlite3.Connection:
        """The current process's connection (re-opened after a fork)."""
        if self._connection is None or self._pid != os.getpid():
            self._connection = self._open()
            self._pid = os.getpid()
        return self._connection

    def _open(self) -> sqlite3.Connection:
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(
            str(self.path), timeout=self._timeout, isolation_level=None
        )
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(f"PRAGMA busy_timeout={int(self._timeout * 1000)}")
        version = conn.execute("PRAGMA user_version").fetchone()[0]
        if version == 0:
            for statement in _DDL:
                conn.execute(statement)
            conn.execute(f"PRAGMA user_version={STORE_SCHEMA_VERSION}")
        elif version != STORE_SCHEMA_VERSION:
            conn.close()
            raise StoreError(
                f"results store {self.path} has schema version {version}; "
                f"this code reads version {STORE_SCHEMA_VERSION}"
            )
        return conn

    def close(self) -> None:
        """Close this process's connection (the file remains valid)."""
        if self._connection is not None and self._pid == os.getpid():
            self._connection.close()
        self._connection = None
        self._pid = None

    @contextmanager
    def transaction(self):
        """``BEGIN IMMEDIATE`` … ``COMMIT``; rollback on any exception."""
        conn = self.connection
        conn.execute("BEGIN IMMEDIATE")
        try:
            yield conn
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        else:
            conn.execute("COMMIT")

    # ---------------------------------------------------------------- ingest
    def ingest(self, record: RunRecord) -> str:
        """Append one run (idempotent on the derived run id).

        Returns the run id whether the run was inserted or already
        present; metrics/artifacts are only written for a fresh insert, so
        ingesting the same execution twice cannot duplicate rows.
        """
        git_rev = record.git_rev or current_git_rev()
        fingerprint = fingerprint_config(record.config or {})
        started = time.time() if record.started is None else float(record.started)
        run_id = make_run_id(git_rev, fingerprint, record.seed, started)
        metric_rows = [
            (run_id, name, value, "{}")
            for name, value in flatten_numeric(record.metrics).items()
        ]
        metric_rows.extend(
            (run_id, name, float(value), canonical_json(dict(labels)))
            for name, value, labels in record.labelled_metrics
        )
        artifact_rows = [
            (run_id, str(path), _sha256_file(path)) for path in record.artifacts
        ]
        with self.transaction() as conn:
            cur = conn.execute(
                "INSERT OR IGNORE INTO runs VALUES (?,?,?,?,?,?,?,?,?,?)",
                (
                    run_id, record.kind, record.scenario, git_rev,
                    record.seed, fingerprint, canonical_json(record.config or {}),
                    started, record.finished, record.label,
                ),
            )
            if cur.rowcount == 0:  # double-ingest of the same run: no-op
                return run_id
            conn.executemany("INSERT INTO metrics VALUES (?,?,?,?)", metric_rows)
            conn.executemany("INSERT INTO artifacts VALUES (?,?,?)", artifact_rows)
        return run_id

    def ingest_bench(
        self,
        suite: str,
        report: Mapping,
        *,
        path: str | Path | None = None,
        git_rev: str | None = None,
        started: float | None = None,
    ) -> str:
        """Append one ``BENCH_*.json`` report to the suite's trajectory.

        Validates the report's ``schema`` field against
        :data:`KNOWN_BENCH_SCHEMAS` and raises :class:`BenchSchemaError`
        for missing/unknown versions.  When ingesting from a file,
        ``started`` defaults to the file's mtime and the content hash is
        folded into the fingerprint, so re-ingesting the same artifact is
        idempotent.
        """
        schema = report.get("schema")
        if not isinstance(schema, int) or isinstance(schema, bool):
            raise BenchSchemaError(
                f"bench report for suite {suite!r} has no integer 'schema' "
                f"field (got {schema!r}); cannot ingest"
            )
        if schema not in KNOWN_BENCH_SCHEMAS:
            raise BenchSchemaError(
                f"bench report for suite {suite!r} has schema version "
                f"{schema}; this code ingests {sorted(KNOWN_BENCH_SCHEMAS)}"
            )
        declared = report.get("bench")
        if declared is not None and declared != suite:
            raise StoreError(
                f"bench report declares suite {declared!r}, ingest asked "
                f"for {suite!r}"
            )
        content_sha = hashlib.sha256(canonical_json(report).encode()).hexdigest()
        if started is None:
            if path is not None and Path(path).exists():
                started = Path(path).stat().st_mtime
            else:
                started = time.time()
        git_rev = git_rev or current_git_rev()
        config = {"suite": suite, "schema": schema, "content_sha": content_sha}
        fingerprint = fingerprint_config(config)
        run_id = make_run_id(git_rev, fingerprint, None, started)
        flat = {
            key: value
            for key, value in flatten_numeric(report).items()
            if key.split(".", 1)[0] not in _BENCH_META_KEYS
        }
        with self.transaction() as conn:
            cur = conn.execute(
                "INSERT OR IGNORE INTO runs VALUES (?,?,?,?,?,?,?,?,?,?)",
                (
                    run_id, "bench", suite, git_rev, None, fingerprint,
                    canonical_json(config), started, started, suite,
                ),
            )
            if cur.rowcount == 0:
                return run_id
            conn.executemany(
                "INSERT INTO bench VALUES (?,?,?,?,?)",
                [(run_id, suite, key, value, schema) for key, value in flat.items()],
            )
            if path is not None:
                conn.execute(
                    "INSERT INTO artifacts VALUES (?,?,?)",
                    (run_id, str(path), _sha256_file(path)),
                )
        return run_id

    # --------------------------------------------------------------- queries
    def completed_run(
        self,
        kind: str,
        scenario: str,
        seed: int | None,
        fingerprint: str,
        *,
        git_rev: str | None = None,
    ) -> str | None:
        """Latest finished run id for one (cell, seed), or ``None``.

        ``git_rev`` defaults to the current revision — a code change
        invalidates completion, so resumable sweeps re-run the cell.
        """
        git_rev = git_rev or current_git_rev()
        row = self.connection.execute(
            "SELECT run_id FROM runs WHERE kind=? AND scenario=? AND "
            "seed IS ? AND config_fingerprint=? AND git_rev=? AND "
            "finished IS NOT NULL ORDER BY started DESC LIMIT 1",
            (kind, scenario, seed, fingerprint, git_rev),
        ).fetchone()
        return row["run_id"] if row is not None else None

    def run_metrics(self, run_id: str, *, labelled: bool = False) -> dict[str, float]:
        """A run's flat metrics (unlabelled rows only, unless asked)."""
        query = "SELECT name, value FROM metrics WHERE run_id=?"
        if not labelled:
            query += " AND labels='{}'"
        return {
            row["name"]: row["value"]
            for row in self.connection.execute(query, (run_id,))
        }

    def runs(
        self, *, kind: str | None = None, scenario: str | None = None
    ) -> list[sqlite3.Row]:
        """Run rows, newest first, optionally filtered."""
        clauses, params = [], []
        if kind is not None:
            clauses.append("kind=?")
            params.append(kind)
        if scenario is not None:
            clauses.append("scenario=?")
            params.append(scenario)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return list(
            self.connection.execute(
                f"SELECT * FROM runs{where} ORDER BY started DESC", params
            )
        )

    def metric_rows(self, kind: str = "experiment") -> list[sqlite3.Row]:
        """Joined (run × metric) rows for report building."""
        return list(
            self.connection.execute(
                "SELECT r.run_id, r.scenario, r.seed, r.git_rev, r.started, "
                "r.config_fingerprint, m.name, m.value, m.labels "
                "FROM metrics m JOIN runs r ON m.run_id = r.run_id "
                "WHERE r.kind=? ORDER BY r.started, m.name",
                (kind,),
            )
        )

    def latest_bench(
        self, suite: str, *, before: str | None = None
    ) -> BenchPoint | None:
        """Most recent bench point for a suite (optionally excluding a run)."""
        query = (
            "SELECT * FROM runs WHERE kind='bench' AND scenario=?"
        )
        params: list = [suite]
        if before is not None:
            query += " AND run_id != ?"
            params.append(before)
        row = self.connection.execute(
            query + " ORDER BY started DESC LIMIT 1", params
        ).fetchone()
        if row is None:
            return None
        values, schema_version = {}, STORE_SCHEMA_VERSION
        for bench_row in self.connection.execute(
            "SELECT key, value, schema_version FROM bench WHERE run_id=?",
            (row["run_id"],),
        ):
            values[bench_row["key"]] = bench_row["value"]
            schema_version = bench_row["schema_version"]
        return BenchPoint(
            run_id=row["run_id"],
            suite=suite,
            git_rev=row["git_rev"],
            started=row["started"],
            schema_version=schema_version,
            values=values,
        )

    def bench_trajectory(self, suite: str, key: str) -> list[tuple[float, str, float]]:
        """(started, git_rev, value) points for one tracked bench key."""
        return [
            (row["started"], row["git_rev"], row["value"])
            for row in self.connection.execute(
                "SELECT r.started, r.git_rev, b.value FROM bench b "
                "JOIN runs r ON b.run_id = r.run_id "
                "WHERE b.suite=? AND b.key=? ORDER BY r.started",
                (suite, key),
            )
        ]

    def counts(self) -> dict[str, int]:
        """Row counts per table (``automdt store info``)."""
        return {
            table: self.connection.execute(
                f"SELECT COUNT(*) FROM {table}"  # noqa: S608 - fixed names
            ).fetchone()[0]
            for table in ("runs", "metrics", "artifacts", "bench")
        }
