"""The ``ResultSink`` protocol and the process-wide default store.

Harness code never constructs SQL: it builds a :class:`RunRecord` (or a
bench report dict) and hands it to whatever sink is active.  The sink is
usually a :class:`~repro.obs.store.db.ResultsStore`, resolved in order
of precedence:

1. an explicit ``store=`` argument (path or store object);
2. the process default installed by :func:`set_default_store` (the
   ``--store`` CLI flag does this);
3. the ``AUTOMDT_STORE`` environment variable (how CI and the bench
   scripts feed a store without plumbing a flag through every layer).

With none of the three configured every helper is a cheap no-op — the
store is opt-in, exactly like the obs session.
"""

from __future__ import annotations

import os
import time
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.obs.store.db import ResultsStore, RunRecord, flatten_numeric

__all__ = [
    "ResultSink",
    "active_store",
    "experiment_config",
    "record_bench_report",
    "record_report",
    "record_session",
    "resolve_store",
    "set_default_store",
]


@runtime_checkable
class ResultSink(Protocol):
    """What a results destination must implement (ResultsStore does)."""

    def ingest(self, record: RunRecord) -> str:  # pragma: no cover - protocol
        ...

    def ingest_bench(
        self, suite: str, report: Mapping, *, path: str | Path | None = None
    ) -> str:  # pragma: no cover - protocol
        ...


_default: ResultsStore | None = None
_env_store: tuple[str, ResultsStore] | None = None  # (env value, opened store)


def set_default_store(store: ResultsStore | str | Path | None) -> ResultsStore | None:
    """Install (or clear, with ``None``) the process-wide default store."""
    global _default
    if store is None:
        _default = None
    elif isinstance(store, ResultsStore):
        _default = store
    else:
        _default = ResultsStore(store)
    return _default


def active_store() -> ResultsStore | None:
    """The default store, falling back to ``AUTOMDT_STORE``; else ``None``."""
    global _env_store
    if _default is not None:
        return _default
    env = os.environ.get("AUTOMDT_STORE")
    if not env:
        return None
    if _env_store is None or _env_store[0] != env:
        _env_store = (env, ResultsStore(env))
    return _env_store[1]


def resolve_store(
    store: ResultsStore | str | Path | None,
) -> ResultsStore | None:
    """An explicit store/path argument, else the active default (or None)."""
    if store is None:
        return active_store()
    if isinstance(store, ResultsStore):
        return store
    return ResultsStore(store)


def experiment_config(name: str, **kwargs) -> dict:
    """The canonical config dict fingerprinted for one experiment cell.

    Only scalar kwargs participate (callables/objects are not part of a
    cell's identity); the ``v`` field versions the fingerprint recipe so a
    future change re-runs rather than wrongly skipping cells.
    """
    config = {"experiment": name, "v": 1}
    config.update(
        {
            key: value
            for key, value in sorted(kwargs.items())
            if isinstance(value, (bool, int, float, str))
        }
    )
    return config


def record_report(
    kind: str,
    scenario: str,
    *,
    seed: int | None = None,
    config: Mapping | None = None,
    metrics: Mapping | None = None,
    labelled_metrics: Sequence[tuple[str, float, Mapping[str, str]]] = (),
    artifacts: Sequence[str | Path] = (),
    started: float | None = None,
    finished: float | None = None,
    label: str = "",
    store: ResultsStore | str | Path | None = None,
) -> str | None:
    """Ingest one run-shaped report into the resolved store (no-op if none)."""
    sink = resolve_store(store)
    if sink is None:
        return None
    return sink.ingest(
        RunRecord(
            kind=kind,
            scenario=scenario,
            seed=seed,
            config=config,
            started=started,
            finished=finished if finished is not None else time.time(),
            metrics=metrics or {},
            labelled_metrics=labelled_metrics,
            artifacts=artifacts,
            label=label,
        )
    )


def record_bench_report(
    report: Mapping,
    *,
    path: str | Path | None = None,
    store: ResultsStore | str | Path | None = None,
) -> str | None:
    """Ingest one ``BENCH_*.json``-shaped report dict (no-op without a store).

    Called by every ``benchmarks/bench_*.py`` after it writes its report
    file; the suite name comes from the report's own ``bench`` field.
    """
    sink = resolve_store(store)
    if sink is None:
        return None
    suite = report.get("bench")
    if not suite:
        return None
    return sink.ingest_bench(str(suite), report, path=path)


def record_session(session, store: ResultsStore | str | Path | None = None) -> str | None:
    """Ingest a closing :class:`~repro.obs.session.ObsSession`'s registry.

    Counters and gauges land as metrics under their own names; histograms
    contribute ``<name>.sum`` and ``<name>.count``.  Labelled family
    children keep their labels.  Sessions with an empty registry are
    skipped — no run row for a session that measured nothing.
    """
    sink = resolve_store(store)
    if sink is None:
        return None
    snapshot = session.registry.snapshot()
    if not snapshot:
        return None
    plain: dict[str, float] = {}
    labelled: list[tuple[str, float, Mapping[str, str]]] = []
    for name, entries in snapshot.items():
        for entry in entries:
            labels = entry.get("labels") or {}
            if entry["kind"] == "histogram":
                pairs = [(f"{name}.sum", entry["sum"]), (f"{name}.count", entry["count"])]
            else:
                pairs = [(name, entry["value"])]
            for key, value in pairs:
                if labels:
                    labelled.append((key, float(value), labels))
                else:
                    plain[key] = float(value)
    artifacts: list[Path] = []
    if session.run_dir is not None:
        from repro.obs.session import PROMETHEUS_FILENAME

        prom = Path(session.run_dir) / PROMETHEUS_FILENAME
        if prom.exists():
            artifacts.append(prom)
    return sink.ingest(
        RunRecord(
            kind="obs",
            scenario=session.label or "session",
            metrics=plain,
            labelled_metrics=labelled,
            artifacts=artifacts,
            finished=time.time(),
            label=session.label,
        )
    )
