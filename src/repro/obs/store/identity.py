"""Run identity: git revision, config fingerprints, and derived run ids.

Every row in the results store hangs off a ``run_id`` that is a pure
function of *(git_rev, config fingerprint, seed, wall-start)* — the same
experiment re-ingested from the same execution maps onto the same id (so
double-ingest is idempotent), while a fresh execution at a later
wall-start appends a new trajectory point instead of overwriting history.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import subprocess
from pathlib import Path

from repro.utils.config import to_jsonable

__all__ = [
    "canonical_json",
    "current_git_rev",
    "fingerprint_config",
    "make_run_id",
]


def canonical_json(obj) -> str:
    """Stable JSON encoding: sorted keys, no whitespace, jsonable-coerced."""
    return json.dumps(to_jsonable(obj), sort_keys=True, separators=(",", ":"))


@functools.lru_cache(maxsize=1)
def current_git_rev() -> str:
    """The working tree's commit (short hash), ``AUTOMDT_GIT_REV``-overridable.

    Falls back to ``"unknown"`` outside a git checkout (e.g. an installed
    wheel) rather than failing — identity degrades, ingestion does not.
    """
    override = os.environ.get("AUTOMDT_GIT_REV")
    if override:
        return override
    for cwd in (Path(__file__).resolve().parent, Path.cwd()):
        try:
            out = subprocess.run(
                ["git", "rev-parse", "--short=12", "HEAD"],
                cwd=cwd, capture_output=True, text=True, timeout=10.0,
            )
        except (OSError, subprocess.TimeoutExpired):
            continue
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    return "unknown"


def fingerprint_config(config) -> str:
    """Short stable digest of a configuration mapping (or any jsonable)."""
    return hashlib.sha256(canonical_json(config).encode()).hexdigest()[:16]


def make_run_id(
    git_rev: str, fingerprint: str, seed: int | None, started: float
) -> str:
    """Derive a run id from (git_rev, config fingerprint, seed, wall-start).

    Wall-start is rounded to milliseconds so the id survives a float
    round-trip through JSON.
    """
    seed_part = "none" if seed is None else str(int(seed))
    text = f"{git_rev}|{fingerprint}|{seed_part}|{round(float(started), 3)}"
    return hashlib.sha256(text.encode()).hexdigest()[:20]
