"""Cross-PR bench regression tracking against the stored trajectory.

``automdt regress`` loads the working tree's ``BENCH_*.json`` artifacts,
compares each suite against its most recent point in the results store,
and exits non-zero when a *gated* key moves the wrong way by more than the
configured threshold.  After the comparison the current reports are
appended to the trajectory (append-only — the old baseline stays), so the
store accumulates one point per suite per run and ``bench_trajectory``
can plot any key across PRs.

Gating is deliberately conservative: only relative, hardware-stable keys
(speedups, overhead fractions, fairness ratios) and boolean gates are
compared by default.  Absolute wall-clock and MB/s numbers are reported
as informational drift — they say more about the runner than the code.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.obs.store.db import KNOWN_BENCH_SCHEMAS, ResultsStore, flatten_numeric
from repro.utils.errors import BenchSchemaError

__all__ = [
    "Finding",
    "classify_key",
    "compare_suite",
    "load_bench_file",
    "render_regress",
    "run_regress",
    "skipped_prefixes",
]

HIGHER = "higher_better"
LOWER = "lower_better"
BOOL = "must_stay_true"
INFO = "informational"

#: suffixes of the *last* dotted segment that mark a gated direction.
_HIGHER_SUFFIXES = ("speedup", "speedup_vs_reference", "speedup_x", "cache_speedup")
_LOWER_SUFFIXES = ("goodput_ratio", "overhead_fraction", "overhead_pct", "overhead_ratio")
_BOOL_SUFFIXES = (
    "ok", "identical", "within_bound", "all_completed", "all_recovered",
    "capacity_respected", "throughput_identical", "equivalent", "bit_identical",
)
_INFO_MARKERS = ("wall", "mb_per_s", "mbps", "seconds", "_s", "ms_per_round")


def skipped_prefixes(report: Mapping) -> tuple[str, ...]:
    """Dotted paths of report legs marked ``status: skipped_*``.

    Benches record honestly-skipped legs (e.g. the parallel sweep on a
    single-core runner) as ``{"status": "skipped_<reason>", ...}``.  Any
    numeric key under such a leg describes the skip, not the code under
    test, so the comparison must not gate it against the trajectory.
    """
    found: list[str] = []

    def walk(node: Mapping, path: str) -> None:
        status = node.get("status")
        if path and isinstance(status, str) and status.startswith("skipped_"):
            found.append(path)
            return
        for name, value in node.items():
            if isinstance(value, Mapping):
                walk(value, f"{path}.{name}" if path else str(name))

    walk(report, "")
    return tuple(found)


def classify_key(key: str) -> str:
    """Direction of one flattened bench key: gated (higher/lower/bool) or info."""
    leaf = key.rsplit(".", 1)[-1]
    if leaf in _BOOL_SUFFIXES or any(leaf.endswith("_" + s) for s in _BOOL_SUFFIXES):
        return BOOL
    if any(leaf == s or leaf.endswith("_" + s) for s in _HIGHER_SUFFIXES):
        return HIGHER
    if any(leaf == s or leaf.endswith("_" + s) for s in _LOWER_SUFFIXES):
        return LOWER
    if "overhead" in leaf:
        return LOWER
    return INFO


@dataclass(frozen=True)
class Finding:
    """One key's baseline-vs-current comparison."""

    suite: str
    key: str
    direction: str
    baseline: float
    current: float
    change: float  # relative, signed; 0.1 == +10%
    regressed: bool

    def describe(self) -> str:
        pct = f"{self.change * 100:+.1f}%"
        return (
            f"{self.suite}:{self.key} {self.baseline:g} → {self.current:g} "
            f"({pct}, {self.direction})"
        )


def load_bench_file(path: str | Path) -> tuple[str, dict, dict[str, float]]:
    """Read one BENCH_*.json: (suite, raw report, flat numeric values).

    Raises :class:`BenchSchemaError` for a missing/unknown ``schema`` field
    — the same validation the store applies on ingest, surfaced before any
    comparison work happens.
    """
    path = Path(path)
    report = json.loads(path.read_text())
    schema = report.get("schema")
    if not isinstance(schema, int) or isinstance(schema, bool):
        raise BenchSchemaError(f"{path}: no integer 'schema' field (got {schema!r})")
    if schema not in KNOWN_BENCH_SCHEMAS:
        raise BenchSchemaError(
            f"{path}: schema version {schema} is unknown "
            f"(known: {sorted(KNOWN_BENCH_SCHEMAS)})"
        )
    suite = report.get("bench") or path.stem.replace("BENCH_", "")
    flat = {
        key: value
        for key, value in flatten_numeric(report).items()
        if key.split(".", 1)[0] not in {"bench", "schema", "out"}
    }
    return str(suite), report, flat


def compare_suite(
    suite: str,
    baseline: Mapping[str, float],
    current: Mapping[str, float],
    *,
    threshold: float,
    gate_informational: bool = False,
    info_prefixes: Sequence[str] = (),
) -> list[Finding]:
    """Per-key findings for one suite (keys present on both sides).

    Keys under any of ``info_prefixes`` (dotted leg paths, typically from
    :func:`skipped_prefixes`) are demoted to informational regardless of
    their suffix — a skipped leg's numbers carry no gate-worthy signal.
    """
    findings: list[Finding] = []
    for key in sorted(set(baseline) & set(current)):
        base, cur = float(baseline[key]), float(current[key])
        if any(key == p or key.startswith(p + ".") for p in info_prefixes):
            direction = INFO
        else:
            direction = classify_key(key)
        change = (cur - base) / abs(base) if base != 0 else (0.0 if cur == base else 1.0)
        if direction == BOOL:
            regressed = base >= 1.0 and cur < 1.0
        elif direction == HIGHER:
            regressed = change < -threshold
        elif direction == LOWER:
            regressed = change > threshold
        else:
            regressed = gate_informational and abs(change) > threshold
        findings.append(
            Finding(
                suite=suite, key=key, direction=direction,
                baseline=base, current=cur, change=change, regressed=regressed,
            )
        )
    return findings


def run_regress(
    store: ResultsStore,
    paths: Sequence[str | Path],
    *,
    threshold: float = 0.2,
    ingest: bool = True,
    suites: Sequence[str] | None = None,
    gate_informational: bool = False,
) -> dict:
    """Compare each report against its stored baseline; optionally ingest.

    Returns a JSON-able result with per-suite findings; ``ok`` is False
    iff any gated key regressed.  Suites with no stored baseline are
    reported as ``no_baseline`` (not a failure — the first ingest seeds
    the trajectory).
    """
    results: dict[str, dict] = {}
    ok = True
    for path in paths:
        suite, report, flat = load_bench_file(path)
        if suites and suite not in suites:
            continue
        point = store.latest_bench(suite)
        entry: dict = {"path": str(path), "keys": len(flat)}
        skipped = skipped_prefixes(report)
        if skipped:
            entry["skipped_legs"] = list(skipped)
        if point is None:
            entry["status"] = "no_baseline"
            entry["findings"] = []
        else:
            findings = compare_suite(
                suite, point.values, flat,
                threshold=threshold, gate_informational=gate_informational,
                info_prefixes=skipped,
            )
            regressions = [f for f in findings if f.regressed]
            entry["status"] = "regressed" if regressions else "ok"
            entry["baseline_run"] = point.run_id
            entry["baseline_rev"] = point.git_rev
            entry["findings"] = [vars(f) for f in findings]
            ok = ok and not regressions
        if ingest:
            entry["ingested_run"] = store.ingest_bench(suite, report, path=path)
        results[suite] = entry
    return {"ok": ok, "threshold": threshold, "suites": results}


def render_regress(result: Mapping) -> str:
    """Human-readable regression verdict for the CLI."""
    lines: list[str] = []
    for suite, entry in result["suites"].items():
        status = entry["status"]
        if status == "no_baseline":
            lines.append(f"{suite}: no stored baseline ({entry['keys']} keys ingested)")
            continue
        findings = [Finding(**f) for f in entry["findings"]]
        gated = [f for f in findings if f.direction != INFO]
        regressed = [f for f in findings if f.regressed]
        lines.append(
            f"{suite}: {status.upper()} — {len(gated)} gated key(s) vs "
            f"baseline {entry['baseline_rev']}"
        )
        for leg in entry.get("skipped_legs", ()):
            lines.append(f"  leg {leg} skipped — keys informational")
        for finding in regressed:
            lines.append(f"  REGRESSION {finding.describe()}")
        if not regressed:
            drifters = sorted(
                (f for f in findings if f.direction == INFO and f.change),
                key=lambda f: -abs(f.change),
            )[:3]
            for finding in drifters:
                lines.append(f"  drift {finding.describe()}")
    verdict = "OK" if result["ok"] else "REGRESSED"
    lines.append(f"regression gate ({result['threshold']:.0%} threshold): {verdict}")
    return "\n".join(lines) + "\n"
