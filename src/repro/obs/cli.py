"""The ``obs`` CLI subcommands: inspect a run directory's event log.

Wired into the main ``automdt`` parser by :mod:`repro.harness.cli`::

    automdt obs summary RUN_DIR          # phases, series, incidents
    automdt obs tail RUN_DIR [-n 20]     # last N raw events
    automdt obs diff RUN_A RUN_B         # compare two runs
    automdt obs export RUN_DIR           # series CSV + Prometheus snapshot

``RUN_DIR`` is a directory produced by ``automdt run <exp> --obs RUN_DIR``
(or any path to an ``events.jsonl``).
"""

from __future__ import annotations

import json
import sys

__all__ = ["add_obs_parser", "run_obs"]


def add_obs_parser(sub) -> None:
    """Register the ``obs`` subcommand on an argparse subparsers object."""
    obs = sub.add_parser("obs", help="inspect observability run directories")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    summary = obs_sub.add_parser("summary", help="phases, metric series, incidents")
    summary.add_argument("run", help="run directory or events.jsonl path")

    tail = obs_sub.add_parser("tail", help="print the last N raw events")
    tail.add_argument("run", help="run directory or events.jsonl path")
    tail.add_argument("-n", type=int, default=20, help="number of events (default 20)")

    diff = obs_sub.add_parser("diff", help="compare two runs' series and spans")
    diff.add_argument("run_a", help="baseline run directory or events.jsonl")
    diff.add_argument("run_b", help="comparison run directory or events.jsonl")

    export = obs_sub.add_parser("export", help="write series CSV + Prometheus snapshot")
    export.add_argument("run", help="run directory or events.jsonl path")
    export.add_argument("--csv", default=None, help="CSV output path")


def run_obs(args) -> int:
    """Dispatch an ``obs`` subcommand; returns the process exit code."""
    from repro.obs.summary import diff_runs, render_summary, summarize_run

    try:
        if args.obs_command == "summary":
            print(render_summary(summarize_run(args.run)))
            return 0
        if args.obs_command == "tail":
            from repro.obs.events import tail_events
            from repro.obs.summary import resolve_events_path

            for record in tail_events(resolve_events_path(args.run), args.n):
                print(json.dumps(record, separators=(",", ":")))
            return 0
        if args.obs_command == "diff":
            print(
                diff_runs(
                    summarize_run(args.run_a),
                    summarize_run(args.run_b),
                    label_a=str(args.run_a),
                    label_b=str(args.run_b),
                )
            )
            return 0
        if args.obs_command == "export":
            from repro.obs.exporters import export_run_csv, write_prometheus_from_events

            print(f"wrote {export_run_csv(args.run, args.csv)}")
            print(f"wrote {write_prometheus_from_events(args.run)}")
            return 0
    except (FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled obs command {args.obs_command!r}")  # pragma: no cover
