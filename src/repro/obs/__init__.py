"""``repro.obs`` — the unified, zero-dependency observability layer.

The paper's headline claim is *low overhead*; this package is how the
reproduction measures its own.  Four pieces, threaded through every stage of
the pipeline (exploration → simulator-training → fine-tune → deployment →
transfer):

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms and
  labelled families, exportable as a Prometheus text snapshot;
* :class:`Tracer` / :func:`span` — nested spans recording wall *and* virtual
  time, plus point-in-time events (supervisor incidents);
* the JSONL **event log** (:class:`JsonlEventWriter` / :func:`read_events`)
  — one append-mode file per run directory, resume-safe;
* **exporters and the CLI** (``automdt obs summary|tail|diff|export``) —
  reconstruct phases, loss curves and incident timelines from a log.

Instrumentation is free when disabled: every module-level helper is a single
``None`` check, and ``benchmarks/bench_observability.py`` holds the enabled
path under a 3% throughput budget.

Usage::

    from repro import obs

    with obs.session("runs/demo", label="demo"):
        with obs.span("transfer/run"):
            obs.metric("throughput_mbps", 812.5, t=1.0)
    print(obs.render_summary(obs.summarize_run("runs/demo")))
"""

from repro.obs.events import JsonlEventWriter, read_events, tail_events
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.session import (
    EVENTS_FILENAME,
    PROMETHEUS_FILENAME,
    ObsSession,
    active,
    configure,
    count,
    discard,
    enabled,
    event,
    metric,
    observe,
    sample,
    session,
    set_virtual_time,
    shutdown,
    span,
)
from repro.obs.summary import (
    IncidentSummary,
    RunSummary,
    diff_runs,
    render_summary,
    summarize_run,
)
from repro.obs.tracing import SpanRecord, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "EVENTS_FILENAME",
    "PROMETHEUS_FILENAME",
    "Counter",
    "Gauge",
    "Histogram",
    "IncidentSummary",
    "JsonlEventWriter",
    "MetricFamily",
    "MetricsRegistry",
    "ObsSession",
    "RunSummary",
    "SpanRecord",
    "Tracer",
    "active",
    "configure",
    "count",
    "diff_runs",
    "discard",
    "enabled",
    "event",
    "metric",
    "observe",
    "read_events",
    "render_summary",
    "sample",
    "session",
    "set_virtual_time",
    "shutdown",
    "span",
    "summarize_run",
    "tail_events",
]
