"""The observability session: registry + tracer + event log, with a no-op
fast path when disabled.

Instrumentation sites throughout the pipeline call the module-level helpers
(:func:`span`, :func:`metric`, :func:`count`, …).  With no session configured
each helper is a single ``None`` check — the 3% overhead budget measured by
``benchmarks/bench_observability.py`` is mostly about the *enabled* path;
the disabled path must be free.  Hot loops that emit several samples per
iteration grab the session once via :func:`active` and branch on ``None``.

The session self-measures: every wall second the event-log writer spends
serialising and writing is accumulated (see
:attr:`~repro.obs.events.JsonlEventWriter.cost_seconds`), so a run can
report what its own telemetry cost (``automdt obs summary`` prints it).
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from pathlib import Path

from repro.obs.events import JsonlEventWriter
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer

__all__ = [
    "ObsSession",
    "active",
    "configure",
    "count",
    "enabled",
    "event",
    "metric",
    "observe",
    "sample",
    "session",
    "set_virtual_time",
    "shutdown",
    "span",
]

EVENTS_FILENAME = "events.jsonl"
PROMETHEUS_FILENAME = "metrics.prom"


class ObsSession:
    """One instrumented run: a registry, a tracer and (optionally) a log.

    Without ``run_dir`` the session is purely in-memory — the registry and
    the tracer's ``finished`` spans are still queryable, which is what unit
    tests and ad-hoc notebook use want.

    ``events_filename`` overrides the log name inside ``run_dir`` — pool
    workers use it to write ``events-worker<k>.jsonl`` next to the parent's
    ``events.jsonl`` (see :mod:`repro.parallel.obslog`).

    With ``ingest_on_close`` (the default) a closing session hands its
    registry snapshot to the active results store, if one is configured —
    pool workers pass ``False`` so a sweep records one run, not one per
    worker.
    """

    def __init__(self, run_dir: str | Path | None = None, *, label: str = "",
                 flush_every: int = 4096, mode: str = "a",
                 events_filename: str | None = None,
                 ingest_on_close: bool = True) -> None:
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.label = label
        self.registry = MetricsRegistry()
        self.writer = (
            JsonlEventWriter(self.run_dir / (events_filename or EVENTS_FILENAME),
                             mode=mode, flush_every=flush_every)
            if self.run_dir is not None
            else None
        )
        self.virtual_time: float | None = None
        self.tracer = Tracer(sink=self._sink, virtual_clock=lambda: self.virtual_time)
        self.events_emitted = 0
        self.ingest_on_close = ingest_on_close
        self._closed = False
        if self.writer is not None:
            self._sink({"type": "meta", "label": label, "unix_time": time.time()})

    @property
    def overhead_seconds(self) -> float:
        """Self-measured wall seconds spent serialising + writing events."""
        return self.writer.cost_seconds if self.writer is not None else 0.0

    # ----------------------------------------------------------------- clock
    def set_virtual_time(self, t: float) -> None:
        """Advance the session's notion of virtual (simulated) time."""
        self.virtual_time = float(t)

    # ------------------------------------------------------------------ emit
    def _sink(self, record: dict) -> None:
        """Serialize one record to the event log (writer self-times)."""
        if self.writer is None:
            return
        self.writer.write(record)
        self.events_emitted += 1

    def span(self, name: str, **attrs):
        """Open a traced span (context manager)."""
        return self.tracer.span(name, **attrs)

    def event(self, name: str, *, t: float | None = None, **attrs) -> None:
        """Record a point-in-time event on the current span."""
        self.tracer.event(name, t=t, **attrs)

    def metric(self, name: str, value: float, *, t: float | None = None) -> None:
        """Record one sample of a named series (event log + gauge)."""
        self.registry.gauge(name).set(value)
        if self.writer is not None:
            self.writer.write(
                {
                    "type": "metric",
                    "name": name,
                    "t": t if t is not None else self.virtual_time,
                    "value": value,
                }
            )
            self.events_emitted += 1

    def sample(self, name: str, *, t: float | None = None, **fields) -> None:
        """Record one multi-field sample (e.g. a whole probe interval).

        Cheaper than one :meth:`metric` per field: a single event-log line.
        ``automdt obs summary`` expands numeric fields back into per-field
        series named ``<name>.<field>``.
        """
        if self.writer is not None:
            record = {
                "type": "sample",
                "name": name,
                "t": t if t is not None else self.virtual_time,
            }
            record.update(fields)
            self.writer.write(record)
            self.events_emitted += 1

    def sample_fmt(self, fmt: str, args: tuple) -> None:
        """Buffer one deferred-format sample (hot-loop fast path).

        For instrumentation sites hot enough that per-call serialisation
        would eat the overhead budget: the site supplies a fixed-schema
        ``%``-format string and its value tuple, and the writer formats at
        flush time — normally after the instrumented loop has finished (see
        the transfer engine's interval sample).
        """
        if self.writer is not None:
            self.writer.write_sample(fmt, args)
            self.events_emitted += 1

    def sample_fmt_many(self, fmt: str, rows) -> None:
        """Bulk :meth:`sample_fmt`: one call for a whole series of rows."""
        if self.writer is not None:
            self.events_emitted += self.writer.write_samples(fmt, rows)

    def sample_columns(self, fmt: str, columns: tuple, count: int) -> None:
        """Column-oriented bulk sample: one buffered entry for a whole series.

        ``columns`` are parallel lists (first ``count`` elements final);
        the writer zips and formats at flush time.  See
        :meth:`repro.obs.events.JsonlEventWriter.write_columns`.
        """
        if self.writer is not None:
            self.events_emitted += self.writer.write_columns(fmt, columns, count)

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment a registry counter (no event-log line)."""
        self.registry.counter(name).inc(amount)

    def observe(self, name: str, value: float, *, buckets=None) -> None:
        """Observe a value into a registry histogram (no event-log line)."""
        if buckets is not None:
            self.registry.histogram(name, buckets=buckets).observe(value)
        else:
            self.registry.histogram(name).observe(value)

    # ----------------------------------------------------------------- report
    def overhead_fraction(self, total_wall_seconds: float) -> float:
        """Self-measured share of ``total_wall_seconds`` spent emitting."""
        if total_wall_seconds <= 0:
            return 0.0
        return self.overhead_seconds / total_wall_seconds

    def prometheus_snapshot(self) -> str:
        """Current registry state in Prometheus text format."""
        return self.registry.to_prometheus()

    def flush(self) -> None:
        """Flush buffered event-log records to disk."""
        if self.writer is not None:
            self.writer.flush()

    def close(self) -> None:
        """Flush the log and write the final registry snapshot."""
        if self._closed:
            return
        self._closed = True
        if self.writer is not None:
            # Flush first so deferred-format samples are costed before the
            # closing meta reports the self-measured overhead.
            self.writer.flush()
            self._sink(
                {
                    "type": "meta",
                    "label": self.label,
                    "closed": True,
                    "events_emitted": self.events_emitted,
                    "overhead_seconds": round(self.overhead_seconds, 6),
                }
            )
            self.writer.close()
        if self.run_dir is not None:
            (self.run_dir / PROMETHEUS_FILENAME).write_text(self.prometheus_snapshot())
        if self.ingest_on_close:
            from repro.obs.store import record_session

            record_session(self)


# --------------------------------------------------------------- module state
_session: ObsSession | None = None
_NULL = nullcontext()


def configure(run_dir: str | Path | None = None, *, label: str = "",
              flush_every: int = 256, mode: str = "a",
              events_filename: str | None = None,
              ingest_on_close: bool = True) -> ObsSession:
    """Install a global session (closing any previous one) and return it."""
    global _session
    if _session is not None:
        _session.close()
    _session = ObsSession(run_dir, label=label, flush_every=flush_every, mode=mode,
                          events_filename=events_filename,
                          ingest_on_close=ingest_on_close)
    return _session


def shutdown() -> None:
    """Close and remove the global session (idempotent)."""
    global _session
    if _session is not None:
        _session.close()
        _session = None


def discard() -> None:
    """Drop the global session WITHOUT flushing or closing its log.

    Post-fork hygiene for pool workers: a forked child inherits the
    parent's session — including the event-log buffer and open file
    handle.  Closing it normally would write the parent's buffered
    records a second time from the child; ``discard`` empties the buffer
    and forgets the session so the child can :func:`configure` its own.
    """
    global _session
    if _session is not None:
        if _session.writer is not None:
            _session.writer._buffer.clear()
            _session.writer._fh = None  # the fd still belongs to the parent
        _session = None


@contextmanager
def session(run_dir: str | Path | None = None, **kwargs):
    """``with obs.session(dir):`` — configure, yield, always shut down."""
    sess = configure(run_dir, **kwargs)
    try:
        yield sess
    finally:
        shutdown()


def active() -> ObsSession | None:
    """The global session, or ``None`` — hot loops branch on this once."""
    return _session


def enabled() -> bool:
    """Whether instrumentation is currently live."""
    return _session is not None


# ------------------------------------------------------- no-op-able helpers
def span(name: str, **attrs):
    """Span on the global session; a shared null context when disabled."""
    return _session.span(name, **attrs) if _session is not None else _NULL


def event(name: str, *, t: float | None = None, **attrs) -> None:
    """Event on the global session; no-op when disabled."""
    if _session is not None:
        _session.event(name, t=t, **attrs)


def metric(name: str, value: float, *, t: float | None = None) -> None:
    """Series sample on the global session; no-op when disabled."""
    if _session is not None:
        _session.metric(name, value, t=t)


def sample(name: str, *, t: float | None = None, **fields) -> None:
    """Multi-field sample on the global session; no-op when disabled."""
    if _session is not None:
        _session.sample(name, t=t, **fields)


def count(name: str, amount: float = 1.0) -> None:
    """Counter increment on the global session; no-op when disabled."""
    if _session is not None:
        _session.count(name, amount)


def observe(name: str, value: float) -> None:
    """Histogram observation on the global session; no-op when disabled."""
    if _session is not None:
        _session.observe(name, value)


def set_virtual_time(t: float) -> None:
    """Advance the global session's virtual clock; no-op when disabled."""
    if _session is not None:
        _session.set_virtual_time(t)
