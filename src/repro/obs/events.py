"""The JSONL event log: buffered append-mode writer and a tolerant reader.

One run directory holds one ``events.jsonl``; every record is a single JSON
object with a ``type`` discriminator (``meta``, ``span``, ``event``,
``metric``, ``sample``, ``decision``).  The writer defaults to **append**
mode so a checkpoint-resume (or a mid-session ``reset()``) extends the log
instead of truncating the history that a post-mortem needs.

The reader tolerates a truncated final line — the normal wreckage of a
process killed mid-write — by dropping it; corruption anywhere *else* in the
file still raises, because that indicates real damage rather than an
interrupted append.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = ["JsonlEventWriter", "read_events", "tail_events"]


class JsonlEventWriter:
    """Buffered writer of one-JSON-object-per-line records.

    ``mode`` is ``"a"`` (default, resume-safe) or ``"w"`` (truncate once at
    first open; reopens after :meth:`close` always append so one writer
    never erases its own earlier records).

    ``flush_every`` trades durability against hot-loop cost: a crash loses
    at most that many buffered records (and :func:`read_events` already
    tolerates the torn final line), while a larger buffer keeps
    serialisation and I/O out of the transfer loop entirely — the whole
    point of :meth:`write_sample`'s deferred formatting.

    ``cost_seconds`` self-measures everything the writer spends on
    serialisation and I/O; it is the single accounting point behind
    ``automdt obs summary``'s *telemetry overhead* line.
    """

    def __init__(self, path: str | Path, *, mode: str = "a", flush_every: int = 4096) -> None:
        if mode not in ("a", "w"):
            raise ValueError(f"mode must be 'a' or 'w', got {mode!r}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.flush_every = int(flush_every)
        self.cost_seconds = 0.0
        self._mode = mode
        #: str entries are ready lines; tuple entries are ``(fmt, args)``
        #: pairs formatted lazily at flush time (see :meth:`write_sample`).
        self._buffer: list[str | tuple[str, tuple]] = []
        self._fh = None

    def _ensure_open(self) -> None:
        if self._fh is None:
            self._fh = self.path.open(self._mode)
            self._mode = "a"  # a "w" writer truncates at most once

    def write(self, record: dict) -> None:
        """Buffer one record; flushed every ``flush_every`` records."""
        t0 = time.perf_counter()
        line = json.dumps(record, separators=(",", ":"))
        self.cost_seconds += time.perf_counter() - t0
        self._buffer.append(line)
        if len(self._buffer) >= self.flush_every:
            self.flush()

    def write_sample(self, fmt: str, args: tuple) -> None:
        """Buffer one deferred-format record (hot-path fast lane).

        Serialisation dominates telemetry cost in tight loops (``json.dumps``
        ≈ 6 µs, ``%``-format ≈ 3 µs in situ, vs ~100 µs per transfer
        interval).  This lane appends just ``(fmt, args)`` — ~0.3 µs — and
        :meth:`flush` formats later, normally after the instrumented loop
        has finished.  The caller guarantees ``fmt % args`` yields one valid
        JSON object with no newline (no NaNs: ``%f`` of NaN is not JSON).
        """
        self._buffer.append((fmt, args))
        if len(self._buffer) >= self.flush_every:
            self.flush()

    def write_samples(self, fmt: str, rows) -> int:
        """Buffer many deferred-format records sharing one schema.

        Bulk variant of :meth:`write_sample` for whole-series exports.
        Returns the number of records buffered.
        """
        before = len(self._buffer)
        self._buffer.extend((fmt, row) for row in rows)
        added = len(self._buffer) - before
        if len(self._buffer) >= self.flush_every:
            self.flush()
        return added

    def write_columns(self, fmt: str, columns: tuple, count: int) -> int:
        """Buffer a whole column-oriented series as ONE deferred entry.

        The cheapest lane of all: stores references to ``count``-long
        value lists (parallel columns, one per ``fmt`` field) and performs
        the zip + ``%``-format at flush time.  The caller promises the
        first ``count`` elements of each column are final (append-only
        lists are fine; flush slices them).  One transfer's whole interval
        history lands in the log for the cost of a single list append.
        """
        self._buffer.append((fmt, columns, count))
        # A columns entry counts as `count` records against the flush
        # threshold only approximately; series dumps are end-of-run, so
        # flushing promptly afterwards is the caller's (or close()'s) job.
        if len(self._buffer) >= self.flush_every:
            self.flush()
        return count

    def _lines(self):
        for entry in self._buffer:
            if type(entry) is str:
                yield entry
            elif len(entry) == 2:  # (fmt, args)
                yield entry[0] % entry[1]
            else:  # (fmt, columns, count)
                fmt, columns, count = entry
                for row in zip(*(column[:count] for column in columns)):
                    yield fmt % row

    def flush(self) -> None:
        """Format deferred samples and write buffered records to disk."""
        if self._buffer:
            t0 = time.perf_counter()
            self._ensure_open()
            self._fh.write("\n".join(self._lines()) + "\n")
            self._fh.flush()
            self._buffer.clear()
            self.cost_seconds += time.perf_counter() - t0

    def discard_buffer(self) -> None:
        """Drop buffered-but-unflushed records without writing them.

        This is the crash model of the integrity layer's write-ahead
        journal (:class:`repro.transfer.integrity.ChunkJournal`): a process
        killed mid-run loses exactly its unflushed buffer, while every
        record already flushed stays on disk.
        """
        self._buffer.clear()

    def truncate(self) -> None:
        """Explicitly discard everything written so far and start over."""
        self.flush()
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._buffer.clear()
        self.path.write_text("")

    def close(self) -> None:
        """Flush and close (the writer can be reused; it reopens appending)."""
        self.flush()
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlEventWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: str | Path, *, strict: bool = False) -> list[dict]:
    """Read a JSONL event log back into a list of dicts.

    A malformed **final** line is dropped unless ``strict`` — a process
    killed mid-append leaves exactly that artifact.  Malformed earlier lines
    always raise, as does a malformed final line under ``strict=True``.
    Returns ``[]`` for an empty (or missing-but-empty) file.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no event log at {path}")
    lines = path.read_text().splitlines()
    records: list[dict] = []
    last_index = len(lines) - 1
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if i == last_index and not strict:
                break  # truncated final write; the rest of the log is intact
            raise ValueError(f"corrupt event log {path} at line {i + 1}: {exc}") from exc
    return records


def tail_events(path: str | Path, n: int = 20) -> list[dict]:
    """The last ``n`` records of an event log (tolerant reader)."""
    records = read_events(path)
    return records[-n:] if n > 0 else []
