"""Exponential backoff with seeded jitter — shared retry arithmetic.

One formula serves every layer that retries: the transfer supervisor's
stall-recovery loop (virtual-clock delays between resume attempts) and the
process pool's task retries (wall-clock delays before re-dispatch).  Both
use ``min(max_delay, base * factor**(attempt-1))`` scaled by a seeded
jitter factor uniform in ``[1 - jitter, 1 + jitter]``; centralising it
keeps the two layers' retry behaviour identical and testable in one place.
"""

from __future__ import annotations

import numpy as np


def backoff_delay(
    attempt: int,
    *,
    base: float = 2.0,
    factor: float = 2.0,
    max_delay: float = 60.0,
    jitter: float = 0.0,
    rng: np.random.Generator | None = None,
) -> float:
    """Delay before the ``attempt``-th consecutive retry (1-based).

    The undithered delay is ``min(max_delay, base * factor**(attempt-1))``;
    with ``jitter > 0`` and an ``rng`` it is scaled by a uniform draw from
    ``[1 - jitter, 1 + jitter]`` (one ``rng.uniform`` call, so callers that
    share a generator stay bit-reproducible across refactors).
    """
    delay = min(float(max_delay), float(base) * float(factor) ** max(0, attempt - 1))
    if jitter and rng is not None:
        delay *= 1.0 + float(jitter) * float(rng.uniform(-1.0, 1.0))
    return delay
