"""Exponential backoff with seeded jitter — shared retry arithmetic.

One formula serves every layer that retries: the transfer supervisor's
stall-recovery loop (virtual-clock delays between resume attempts), the
process pool's task retries (wall-clock delays before re-dispatch) and the
fleet scheduler's per-job re-dispatch delays.  All use
``min(max_delay, base * factor**(attempt-1))`` scaled by a seeded jitter
factor uniform in ``[1 - jitter, 1 + jitter]``; centralising it keeps the
layers' retry behaviour identical and testable in one place.

:class:`RetryBudget` is the companion *stop* rule: a cap on the total
elapsed time a retry loop may consume, so backoff sequences cannot creep
past a deadline one capped delay at a time.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.errors import RetryBudgetExhausted


def backoff_delay(
    attempt: int,
    *,
    base: float = 2.0,
    factor: float = 2.0,
    max_delay: float = 60.0,
    jitter: float = 0.0,
    rng: np.random.Generator | None = None,
) -> float:
    """Delay before the ``attempt``-th consecutive retry (1-based).

    The undithered delay is ``min(max_delay, base * factor**(attempt-1))``;
    with ``jitter > 0`` and an ``rng`` it is scaled by a uniform draw from
    ``[1 - jitter, 1 + jitter]`` (one ``rng.uniform`` call, so callers that
    share a generator stay bit-reproducible across refactors).
    """
    delay = min(float(max_delay), float(base) * float(factor) ** max(0, attempt - 1))
    if jitter and rng is not None:
        delay *= 1.0 + float(jitter) * float(rng.uniform(-1.0, 1.0))
    return delay


class RetryBudget:
    """Elapsed-time cap for a retry loop, on whichever clock the caller uses.

    The budget window opens at the first :meth:`start` call and allows any
    instant within ``max_elapsed`` of it.  Works for wall-clock callers
    (process pool) and virtual-clock callers (supervisor, fleet scheduler)
    alike — the budget never reads a clock itself.
    """

    __slots__ = ("max_elapsed", "started_at")

    def __init__(self, max_elapsed: float = math.inf) -> None:
        if max_elapsed <= 0:
            raise ValueError(f"max_elapsed must be > 0, got {max_elapsed}")
        self.max_elapsed = float(max_elapsed)
        self.started_at: float | None = None

    def start(self, t: float) -> None:
        """Open the budget window at ``t`` (idempotent: first call wins)."""
        if self.started_at is None:
            self.started_at = float(t)

    def elapsed(self, t: float) -> float:
        """Time consumed so far (0 before the window opens)."""
        return 0.0 if self.started_at is None else float(t) - self.started_at

    def remaining(self, t: float) -> float:
        """Budget left at ``t`` (may be negative once exhausted)."""
        return self.max_elapsed - self.elapsed(t)

    def allows(self, t: float) -> bool:
        """Whether an action at ``t`` still fits in the budget."""
        return self.elapsed(t) <= self.max_elapsed

    def require(self, t: float, *, what: str = "retry") -> None:
        """Raise :class:`RetryBudgetExhausted` when ``t`` is out of budget."""
        if not self.allows(t):
            raise RetryBudgetExhausted(
                f"{what} at t={t:.1f} exceeds the {self.max_elapsed:.1f}s "
                f"retry budget opened at t={self.started_at:.1f}"
            )
