"""Dataclass configuration helpers: validation, dict/JSON round-trips."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, TypeVar

from repro.utils.errors import ConfigError

T = TypeVar("T")


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ConfigError(message)


def require_positive(value: float, name: str) -> None:
    """Raise unless ``value > 0``."""
    require(value > 0, f"{name} must be positive, got {value}")


def require_non_negative(value: float, name: str) -> None:
    """Raise unless ``value >= 0``."""
    require(value >= 0, f"{name} must be non-negative, got {value}")


def require_in_range(value: float, lo: float, hi: float, name: str) -> None:
    """Raise unless ``lo <= value <= hi``."""
    require(lo <= value <= hi, f"{name} must be in [{lo}, {hi}], got {value}")


def asdict_shallow(obj: Any) -> dict[str, Any]:
    """Shallow dataclass -> dict (does not recurse into nested dataclasses)."""
    return {f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)}


def to_jsonable(obj: Any) -> Any:
    """Recursively convert dataclasses / numpy scalars / paths to JSON types."""
    import numpy as np

    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, Path):
        return str(obj)
    return obj


def dump_json(obj: Any, path: str | Path) -> None:
    """Write any jsonable-convertible object to ``path`` as pretty JSON."""
    Path(path).write_text(json.dumps(to_jsonable(obj), indent=2, sort_keys=True))


def load_json(path: str | Path) -> Any:
    """Read JSON from ``path``."""
    return json.loads(Path(path).read_text())


def replace_config(config: T, **overrides: Any) -> T:
    """`dataclasses.replace` that rejects unknown field names with a clear error."""
    field_names = {f.name for f in dataclasses.fields(config)}  # type: ignore[arg-type]
    unknown = set(overrides) - field_names
    if unknown:
        raise ConfigError(
            f"unknown field(s) {sorted(unknown)} for {type(config).__name__}; "
            f"valid fields: {sorted(field_names)}"
        )
    return dataclasses.replace(config, **overrides)  # type: ignore[type-var]
