"""Plain-text table rendering for the experiment harness.

The benchmark harness prints the same rows the paper's tables report; this
module renders them as aligned monospace tables (GitHub-flavoured markdown
compatible) without any third-party dependency.
"""

from __future__ import annotations

from collections.abc import Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.1f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a markdown-style table string."""
    cells = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {len(headers)}")
        for i, text in enumerate(row):
            widths[i] = max(widths[i], len(text))

    def fmt_row(values: Sequence[str]) -> str:
        return "| " + " | ".join(v.ljust(w) for v, w in zip(values, widths)) + " |"

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def render_kv(pairs: dict[str, object], *, title: str | None = None) -> str:
    """Render a key/value mapping as an aligned two-column block."""
    if not pairs:
        return title or ""
    width = max(len(k) for k in pairs)
    lines = [title] if title else []
    lines.extend(f"{k.ljust(width)} : {_cell(v)}" for k, v in pairs.items())
    return "\n".join(lines)


def render_series_ascii(
    times: Sequence[float],
    values: Sequence[float],
    *,
    width: int = 72,
    height: int = 12,
    label: str = "",
) -> str:
    """Very small ASCII line plot, used by examples to show convergence shapes."""
    if len(times) == 0:
        return f"{label}: (empty)"
    import numpy as np

    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    # Resample onto the character grid.
    cols = np.linspace(t[0], t[-1], width)
    idx = np.clip(np.searchsorted(t, cols, side="right") - 1, 0, len(v) - 1)
    sampled = v[idx]
    lo, hi = float(sampled.min()), float(sampled.max())
    span = hi - lo if hi > lo else 1.0
    rows = np.clip(((sampled - lo) / span * (height - 1)).round().astype(int), 0, height - 1)
    grid = [[" "] * width for _ in range(height)]
    for x, y in enumerate(rows):
        grid[height - 1 - y][x] = "*"
    lines = [f"{label}  [{lo:.2f} .. {hi:.2f}]"] if label else []
    lines.extend("".join(row) for row in grid)
    lines.append(f"t: {t[0]:.1f}s .. {t[-1]:.1f}s")
    return "\n".join(lines)
