"""Deterministic random-number management.

All stochastic components in the package draw from :class:`numpy.random.Generator`
instances handed to them explicitly; nothing touches the global numpy RNG.
:class:`RngFactory` derives independent child streams from a root seed so
that adding a new consumer never perturbs existing ones.
"""

from __future__ import annotations

import numpy as np


def as_generator(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed, ``None`` or an existing generator into a Generator."""
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


class RngFactory:
    """Derives named, independent random streams from a single root seed.

    Streams are keyed by name: requesting the same name twice returns
    generators with identical initial state, so components are individually
    reproducible regardless of creation order.

    >>> factory = RngFactory(7)
    >>> a = factory.stream("policy")
    >>> b = factory.stream("policy")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the stream ``name``."""
        # Derive a child SeedSequence from the stream name deterministically.
        import zlib

        key = zlib.crc32(name.encode("utf-8"))
        child = np.random.SeedSequence(entropy=self._root.entropy, spawn_key=(key,))
        return np.random.default_rng(child)

    def spawn(self, n: int) -> list[np.random.Generator]:
        """Spawn ``n`` sequentially-keyed independent generators."""
        return [np.random.default_rng(s) for s in self._root.spawn(n)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngFactory(seed={self.seed})"
