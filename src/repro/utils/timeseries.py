"""A small time-series container used by engines, optimizers and the harness.

Engines record one sample per (virtual) second: throughputs, thread counts,
buffer occupancy.  The harness then asks shape questions of those series —
"when did concurrency first reach 20?", "what was the mean throughput after
warm-up?" — which this class answers directly.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np


class TimeSeries:
    """Append-only series of ``(time, value)`` samples.

    Times must be non-decreasing.  Values are floats.
    """

    __slots__ = ("name", "_times", "_values")

    def __init__(self, name: str = "", samples: Iterable[tuple[float, float]] = ()) -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []
        for t, v in samples:
            self.append(t, v)

    def append(self, t: float, value: float) -> None:
        """Record ``value`` at time ``t`` (must not precede the last sample)."""
        if self._times and t < self._times[-1]:
            raise ValueError(
                f"time {t} precedes last recorded time {self._times[-1]} in {self.name!r}"
            )
        self._times.append(float(t))
        self._values.append(float(value))

    # ------------------------------------------------------------------ views
    @property
    def times(self) -> np.ndarray:
        """Sample times as an array."""
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        """Sample values as an array."""
        return np.asarray(self._values, dtype=float)

    @property
    def raw_times(self) -> list[float]:
        """The underlying times list (treat as read-only).

        ``times`` builds a fresh numpy array per access and iterating it
        boxes one ``np.float64`` per element; bulk consumers on a budget
        (the telemetry exporter) iterate the plain floats instead.
        """
        return self._times

    @property
    def raw_values(self) -> list[float]:
        """The underlying values list (treat as read-only)."""
        return self._values

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._times, self._values))

    def __getitem__(self, idx: int) -> tuple[float, float]:
        return self._times[idx], self._values[idx]

    @property
    def last(self) -> float:
        """Most recent value (raises IndexError when empty)."""
        return self._values[-1]

    # ------------------------------------------------------------- statistics
    def mean(self, t_start: float = 0.0, t_end: float = float("inf")) -> float:
        """Arithmetic mean of values sampled in ``[t_start, t_end]``."""
        times, values = self.times, self.values
        mask = (times >= t_start) & (times <= t_end)
        if not mask.any():
            return float("nan")
        return float(values[mask].mean())

    def max(self) -> float:
        """Largest value observed (nan when empty)."""
        return float(self.values.max()) if self._values else float("nan")

    def min(self) -> float:
        """Smallest value observed (nan when empty)."""
        return float(self.values.min()) if self._values else float("nan")

    def std(self, t_start: float = 0.0, t_end: float = float("inf")) -> float:
        """Standard deviation of values sampled in ``[t_start, t_end]``."""
        times, values = self.times, self.values
        mask = (times >= t_start) & (times <= t_end)
        if not mask.any():
            return float("nan")
        return float(values[mask].std())

    def time_to_reach(self, threshold: float, *, sustain: int = 1) -> float | None:
        """First time the series reaches ``threshold`` and stays there.

        ``sustain`` is the number of consecutive samples that must be at or
        above the threshold (1 = the first touch).  Returns ``None`` if the
        series never qualifies — the measure behind the paper's "AutoMDT
        reaches 20 streams in 7 s" style claims.
        """
        values = self.values
        if len(values) < sustain:
            return None
        ok = values >= threshold
        run = 0
        for i, flag in enumerate(ok):
            run = run + 1 if flag else 0
            if run >= sustain:
                return self._times[i - sustain + 1]
        return None

    def settling_time(self, target: float, tolerance: float) -> float | None:
        """Earliest time after which every sample stays within ``target±tolerance``."""
        values = self.values
        if len(values) == 0:
            return None
        within = np.abs(values - target) <= tolerance
        # Last index where we were *outside* the band.
        outside = np.nonzero(~within)[0]
        if len(outside) == 0:
            return self._times[0]
        idx = outside[-1] + 1
        if idx >= len(values):
            return None
        return self._times[idx]

    def resample(self, dt: float, t_end: float | None = None) -> "TimeSeries":
        """Zero-order-hold resample onto a regular grid of spacing ``dt``."""
        if not self._times:
            return TimeSeries(self.name)
        t_end = self._times[-1] if t_end is None else t_end
        grid = np.arange(self._times[0], t_end + dt * 0.5, dt)
        idx = np.searchsorted(self.times, grid, side="right") - 1
        idx = np.clip(idx, 0, len(self._values) - 1)
        vals = self.values[idx]
        return TimeSeries(self.name, zip(grid.tolist(), vals.tolist()))

    def to_dict(self) -> dict:
        """Serialize to a plain dict (JSON-friendly)."""
        return {"name": self.name, "times": list(self._times), "values": list(self._values)}

    @classmethod
    def from_dict(cls, data: dict) -> "TimeSeries":
        """Inverse of :meth:`to_dict`."""
        return cls(data.get("name", ""), zip(data["times"], data["values"]))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TimeSeries({self.name!r}, n={len(self)})"
