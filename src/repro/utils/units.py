"""Unit conversions for data sizes and transfer rates.

Conventions used throughout the package:

* **Sizes** are bytes (``int`` or ``float``).
* **Rates** are megabits per second (Mbps, ``float``) — the unit the paper
  quotes for all throttles (e.g. "80 Mbps per read thread") and results
  (e.g. "23,988 Mbps").
* **Time** is seconds on a virtual clock.

Binary prefixes (KiB/MiB/GiB/TiB) are powers of 1024; decimal rate prefixes
(Kbps/Mbps/Gbps/Tbps) are powers of 1000, matching networking practice.
"""

from __future__ import annotations

import re

from repro.utils.errors import ConfigError

# Size constants (bytes).
KiB: int = 1024
MiB: int = 1024**2
GiB: int = 1024**3
TiB: int = 1024**4

# Rate constants (Mbps).
MBPS: float = 1.0
GBPS: float = 1000.0
TBPS: float = 1_000_000.0

_SIZE_UNITS = {
    "b": 1,
    "kb": 1000,
    "mb": 1000**2,
    "gb": 1000**3,
    "tb": 1000**4,
    "kib": KiB,
    "mib": MiB,
    "gib": GiB,
    "tib": TiB,
}

_RATE_UNITS = {
    "bps": 1e-6,
    "kbps": 1e-3,
    "mbps": 1.0,
    "gbps": 1e3,
    "tbps": 1e6,
}

_QUANTITY_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z/]+)\s*$")


def bytes_to_bits(n_bytes: float) -> float:
    """Convert a byte count to bits."""
    return n_bytes * 8.0


def bits_to_bytes(n_bits: float) -> float:
    """Convert a bit count to bytes."""
    return n_bits / 8.0


def mbps_to_bytes_per_sec(rate_mbps: float) -> float:
    """Convert a rate in Mbps to bytes/second."""
    return rate_mbps * 1e6 / 8.0


def bytes_per_sec_to_mbps(rate_bps: float) -> float:
    """Convert a rate in bytes/second to Mbps."""
    return rate_bps * 8.0 / 1e6


def parse_size(text: str | int | float) -> float:
    """Parse a human size string such as ``"1 GB"`` or ``"700GiB"`` to bytes.

    Bare numbers are taken to already be bytes.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _QUANTITY_RE.match(text)
    if match is None:
        raise ConfigError(f"cannot parse size: {text!r}")
    value, unit = float(match.group(1)), match.group(2).lower()
    if unit not in _SIZE_UNITS:
        raise ConfigError(f"unknown size unit {unit!r} in {text!r}")
    return value * _SIZE_UNITS[unit]


def parse_rate(text: str | int | float) -> float:
    """Parse a rate string such as ``"1 Gbps"`` or ``"80Mbps"`` to Mbps.

    Bare numbers are taken to already be Mbps.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _QUANTITY_RE.match(text)
    if match is None:
        raise ConfigError(f"cannot parse rate: {text!r}")
    value, unit = float(match.group(1)), match.group(2).lower().replace("/s", "ps")
    if unit not in _RATE_UNITS:
        raise ConfigError(f"unknown rate unit {unit!r} in {text!r}")
    return value * _RATE_UNITS[unit]


def format_size(n_bytes: float) -> str:
    """Render a byte count with a binary prefix, e.g. ``1.50 GiB``."""
    size = float(n_bytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(size) < 1024.0:
            return f"{size:.2f} {unit}"
        size /= 1024.0
    return f"{size:.2f} TiB"


def format_rate(rate_mbps: float) -> str:
    """Render a rate in the most natural decimal unit, e.g. ``23.99 Gbps``."""
    if abs(rate_mbps) >= 1e6:
        return f"{rate_mbps / 1e6:.2f} Tbps"
    if abs(rate_mbps) >= 1e3:
        return f"{rate_mbps / 1e3:.2f} Gbps"
    return f"{rate_mbps:.2f} Mbps"
