"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The simulator or emulator reached an invalid state."""


class TransferError(ReproError):
    """A transfer engine failed (e.g. stalled without progress)."""


class ConvergenceError(ReproError):
    """An optimizer or training loop failed to converge within its budget."""


class CheckpointVersionError(ReproError):
    """A persisted checkpoint has an unsupported serialization version."""


class IntegrityError(ReproError):
    """Data-integrity accounting reached an inconsistent state."""


class RetryBudgetExhausted(ReproError):
    """A retry loop ran past its elapsed-time budget (see RetryBudget)."""


class BreakerTransitionError(ReproError):
    """A circuit breaker attempted an illegal state transition."""


class GuardTransitionError(ReproError):
    """The adaptation rollback guard attempted an illegal state transition."""


class StoreError(ReproError):
    """The experiment results store is unusable or inconsistent."""


class BenchSchemaError(StoreError):
    """A BENCH_*.json report carries a missing or unsupported schema version."""
