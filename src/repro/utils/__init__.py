"""Shared utilities: units, RNG management, time series, tables, config.

These are deliberately dependency-free (numpy only) so every other
subpackage can build on them.
"""

from repro.utils.errors import (
    ConfigError,
    ConvergenceError,
    ReproError,
    SimulationError,
    TransferError,
)
from repro.utils.rng import RngFactory, as_generator
from repro.utils.timeseries import TimeSeries
from repro.utils.units import (
    GBPS,
    GiB,
    KiB,
    MBPS,
    MiB,
    TiB,
    bits_to_bytes,
    bytes_to_bits,
    format_rate,
    format_size,
    parse_rate,
    parse_size,
)

__all__ = [
    "ConfigError",
    "ConvergenceError",
    "ReproError",
    "SimulationError",
    "TransferError",
    "RngFactory",
    "as_generator",
    "TimeSeries",
    "GBPS",
    "GiB",
    "KiB",
    "MBPS",
    "MiB",
    "TiB",
    "bits_to_bytes",
    "bytes_to_bits",
    "format_rate",
    "format_size",
    "parse_rate",
    "parse_size",
]
