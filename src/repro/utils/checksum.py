"""Per-chunk checksums: pure-python reference kernels + vectorized fast paths.

The integrity layer (:mod:`repro.transfer.integrity`) digests every chunk of
a transfer manifest with one of these algorithms:

* **CRC32C** (Castagnoli) — the iSCSI/ext4 CRC (polynomial ``0x1EDC6F41``,
  reflected).  This is what GridFTP-era transfer services checksum blocks
  with.
* **XXH32** — the 32-bit xxHash, a non-cryptographic hash; included as the
  alternate manifest algorithm.

Each algorithm ships as a *pair* of bit-identical kernels plus a batch
variant, with automatic selection behind the public :func:`crc32c` /
:func:`xxh32` entry points:

* ``crc32c_py`` / ``xxh32_py`` — the dependency-free pure-python reference
  oracle.  Known-answer vectors are pinned in
  ``tests/utils/test_checksum.py`` (``crc32c(b"123456789") == 0xE3069283``
  is the standard CRC32C check value), and the property suite there holds
  every other kernel to byte-for-byte agreement with these.
* ``crc32c_np`` — a numpy kernel built on the GF(2)-linearity of CRC:
  16-bit slice-by-8 entry tables turn each 8-byte block into an independent
  32-bit contribution, and a logarithmic *fold* combines all block
  contributions with precomputed ``L^(8·2^s)`` shift operators — ~2 gather
  passes per byte instead of a python-level loop, ≥20× the reference on
  megabyte buffers (``benchmarks/bench_dataplane.py`` gates this).
* ``xxh32_np`` — lane-parallel XXH32: the four lane word streams are
  extracted and premultiplied by ``PRIME2`` in one vectorized pass, leaving
  a tight python loop over stripes (the lane recurrence is sequential by
  construction; this kernel is a constant-factor win, not an asymptotic
  one).
* ``crc32c_many`` / ``xxh32_many`` — *buffer-parallel* kernels digesting
  thousands of small records (manifest payload tags) in one vectorized
  sweep over a shared arena: buffers are sorted by length once and each
  byte/stripe position is processed for the whole still-active prefix with
  numpy table gathers.  This is the "one vectorized pass per verification
  sweep" lane the manifest builder uses.
* :class:`Crc32cStream` / :class:`Xxh32Stream` — streaming digests:
  feeding a buffer in arbitrary splits yields exactly the whole-buffer
  digest, so callers can chain ``memoryview`` slices without ever
  concatenating (the zero-copy invariant of the chunk pipeline).

All functions return unsigned 32-bit integers and accept any C-contiguous
bytes-like object (``bytes``, ``bytearray``, ``memoryview``) without
copying it.
"""

from __future__ import annotations

__all__ = [
    "CRC32C_VECTOR_MIN",
    "XXH32_VECTOR_MIN",
    "Crc32cStream",
    "Xxh32Stream",
    "crc32c",
    "crc32c_many",
    "crc32c_np",
    "crc32c_py",
    "digest_many",
    "kernel_info",
    "stream_for",
    "xxh32",
    "xxh32_many",
    "xxh32_np",
    "xxh32_py",
]

try:  # numpy is a core dependency, but the reference kernels must not need it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    _np = None

#: Below these sizes the pure-python kernels win (table setup + numpy call
#: overhead dominates); the dispatchers fall back automatically.
CRC32C_VECTOR_MIN = 256
XXH32_VECTOR_MIN = 2048

#: Batch kernels switch to per-buffer digesting when any record exceeds
#: this — the buffer-parallel sweep iterates python-side over *positions*,
#: so it is built for many small records, not few large ones.
_MANY_MAX_RECORD = 4096

_M32 = 0xFFFFFFFF
_CRC32C_POLY = 0x82F63B78  # 0x1EDC6F41 reflected


# =========================================================================
# Pure-python reference kernels (the oracle every fast kernel must match)
# =========================================================================
def _crc_table() -> tuple[int, ...]:
    table = []
    for n in range(256):
        c = n
        for _ in range(8):
            c = (c >> 1) ^ _CRC32C_POLY if c & 1 else c >> 1
        table.append(c)
    return tuple(table)


_TABLE = _crc_table()


def crc32c_py(data, value: int = 0) -> int:
    """Reference CRC32C of ``data``; ``value`` chains a previous digest."""
    crc = (value & 0xFFFFFFFF) ^ 0xFFFFFFFF
    table = _TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


_P1, _P2, _P3, _P4, _P5 = 2654435761, 2246822519, 3266489917, 668265263, 374761393


def _rotl(x: int, r: int) -> int:
    return ((x << r) | (x >> (32 - r))) & _M32


def xxh32_py(data, seed: int = 0) -> int:
    """Reference XXH32 of ``data`` with ``seed`` (pure python)."""
    seed &= _M32
    n = len(data)
    i = 0
    if n >= 16:
        v1 = (seed + _P1 + _P2) & _M32
        v2 = (seed + _P2) & _M32
        v3 = seed
        v4 = (seed - _P1) & _M32
        while i <= n - 16:
            v1 = (_rotl((v1 + int.from_bytes(data[i : i + 4], "little") * _P2) & _M32, 13) * _P1) & _M32
            v2 = (_rotl((v2 + int.from_bytes(data[i + 4 : i + 8], "little") * _P2) & _M32, 13) * _P1) & _M32
            v3 = (_rotl((v3 + int.from_bytes(data[i + 8 : i + 12], "little") * _P2) & _M32, 13) * _P1) & _M32
            v4 = (_rotl((v4 + int.from_bytes(data[i + 12 : i + 16], "little") * _P2) & _M32, 13) * _P1) & _M32
            i += 16
        acc = (_rotl(v1, 1) + _rotl(v2, 7) + _rotl(v3, 12) + _rotl(v4, 18)) & _M32
    else:
        acc = (seed + _P5) & _M32
    acc = (acc + n) & _M32
    while i <= n - 4:
        acc = (_rotl((acc + int.from_bytes(data[i : i + 4], "little") * _P3) & _M32, 17) * _P4) & _M32
        i += 4
    while i < n:
        acc = (_rotl((acc + data[i] * _P5) & _M32, 11) * _P1) & _M32
        i += 1
    acc ^= acc >> 15
    acc = (acc * _P2) & _M32
    acc ^= acc >> 13
    acc = (acc * _P3) & _M32
    acc ^= acc >> 16
    return acc


# =========================================================================
# Vectorized CRC32C: slice-by-8 entry tables + logarithmic GF(2) fold
# =========================================================================
# CRC over GF(2) is linear: one byte step is crc' = L(crc) ^ T[b] with
# L(c) = T[c & 0xFF] ^ (c >> 8), so an n-byte message folds to
#
#     crc_n = L^n(crc_0)  ^  XOR_i L^(n-1-i)(T[b_i]).
#
# The kernel computes the XOR term blockwise: each 8-byte block contributes
# XOR_j T8[7-j][b_j] (classic slice-by-8, here as four 16-bit-indexed
# tables so a block costs 4 gathers instead of 8), and the per-block
# contributions combine pairwise with precomputed L^(8·2^s) operators —
# log2(m) vectorized levels instead of a sequential walk.
_VTABLES = None  # (_T32, _E16) built lazily on first vectorized call
_OPS8: list = []  # L^(8·2^s) as 4×256 byte-lane tables, index = level s
_OPS16: dict = {}  # same operators as 2×65536 halfword tables (hot levels)


def _build_vtables():
    global _VTABLES
    if _VTABLES is None:
        t8 = _np.empty((8, 256), dtype=_np.uint32)
        t8[0] = _np.array(_TABLE, dtype=_np.uint32)
        for k in range(1, 8):
            prev = t8[k - 1]
            t8[k] = t8[0][prev & 0xFF] ^ (prev >> _np.uint32(8))
        # 16-bit entry tables: block of 8 bytes read as 4 LE uint16 words;
        # word k holds bytes (2k, 2k+1) whose slice-by-8 tables are
        # T8[7-2k] / T8[6-2k].
        w = _np.arange(65536, dtype=_np.uint32)
        lo, hi = w & 0xFF, w >> _np.uint32(8)
        e16 = _np.stack([t8[7 - 2 * k][lo] ^ t8[6 - 2 * k][hi] for k in range(4)])
        _VTABLES = (t8, e16)
    return _VTABLES


def _apply_op8(op, v):
    return (
        op[0][v & 0xFF]
        ^ op[1][(v >> _np.uint32(8)) & 0xFF]
        ^ op[2][(v >> _np.uint32(16)) & 0xFF]
        ^ op[3][v >> _np.uint32(24)]
    )


def _op8(s: int):
    """Byte-lane tables of the linear operator ``L^(8·2^s)`` (lazy)."""
    if not _OPS8:
        t8, _ = _build_vtables()
        base = _np.empty((4, 256), dtype=_np.uint32)
        b = _np.arange(256, dtype=_np.uint32)
        for j in range(4):
            v = b << _np.uint32(8 * j)
            for _ in range(8):  # L^8 = eight zero-byte steps
                v = t8[0][v & 0xFF] ^ (v >> _np.uint32(8))
            base[j] = v
        _OPS8.append(base)
    while len(_OPS8) <= s:  # square: L^(8·2^(s+1)) = (L^(8·2^s))^2
        prev = _OPS8[-1]
        _OPS8.append(_np.stack([_apply_op8(prev, prev[j]) for j in range(4)]))
    return _OPS8[s]


def _op16(s: int):
    """Halfword tables of ``L^(8·2^s)`` — 2 gathers per element (lazy)."""
    op = _OPS16.get(s)
    if op is None:
        op8 = _op8(s)
        w = _np.arange(65536, dtype=_np.uint32)
        lo8, hi8 = w & 0xFF, w >> _np.uint32(8)
        op = _OPS16[s] = (op8[0][lo8] ^ op8[1][hi8], op8[2][lo8] ^ op8[3][hi8])
    return op


def _shift_crc(crc: int, blocks: int) -> int:
    """``L^(8·blocks)`` applied to one scalar crc state (python ints)."""
    s = 0
    while blocks:
        if blocks & 1:
            o0, o1, o2, o3 = _op8(s)
            crc = int(o0[crc & 0xFF]) ^ int(o1[(crc >> 8) & 0xFF]) \
                ^ int(o2[(crc >> 16) & 0xFF]) ^ int(o3[crc >> 24])
        blocks >>= 1
        s += 1
    return crc


def crc32c_np(data, value: int = 0) -> int:
    """Vectorized CRC32C (bit-identical to :func:`crc32c_py`)."""
    n = len(data)
    crc = (value & 0xFFFFFFFF) ^ 0xFFFFFFFF
    mv = memoryview(data)
    head = n % 8  # scalar-align so the block view starts 8-byte-strided
    table = _TABLE
    for byte in mv[:head]:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    m = (n - head) // 8
    if m == 0:
        return crc ^ 0xFFFFFFFF
    _, e16 = _build_vtables()
    words = _np.frombuffer(mv, dtype="<u2", offset=head, count=m * 4).reshape(m, 4)
    x = e16[0][words[:, 0]]
    x ^= e16[1][words[:, 1]]
    x ^= e16[2][words[:, 2]]
    x ^= e16[3][words[:, 3]]
    s = 0
    while len(x) > 64:  # pairwise fold; short tails finish scalar below
        if len(x) & 1:
            # A leading zero block contributes nothing: front-pad to even.
            x = _np.concatenate([_np.zeros(1, dtype=_np.uint32), x])
        lo16, hi16 = _op16(s)
        x = (lo16[x[0::2] & _np.uint16(0xFFFF)] ^ hi16[x[0::2] >> _np.uint32(16)]) ^ x[1::2]
        s += 1
    o0, o1, o2, o3 = (t.tolist() for t in _op8(s))
    acc = 0
    for v in x.tolist():  # XOR_r L^(8·2^s·(len-1-r))(x_r), sequentially
        acc = o0[acc & 0xFF] ^ o1[(acc >> 8) & 0xFF] ^ o2[(acc >> 16) & 0xFF] ^ o3[acc >> 24]
        acc ^= v
    return (_shift_crc(crc, m) ^ acc) ^ 0xFFFFFFFF


# =========================================================================
# Vectorized XXH32: lane-parallel word extraction + premultiply
# =========================================================================
def _lanes_py(v: list[int], data, start: int, stripes: int) -> None:
    """Advance lane state ``v`` over ``stripes`` 16-byte stripes (pure)."""
    v1, v2, v3, v4 = v
    i = start
    for _ in range(stripes):
        v1 = (_rotl((v1 + int.from_bytes(data[i : i + 4], "little") * _P2) & _M32, 13) * _P1) & _M32
        v2 = (_rotl((v2 + int.from_bytes(data[i + 4 : i + 8], "little") * _P2) & _M32, 13) * _P1) & _M32
        v3 = (_rotl((v3 + int.from_bytes(data[i + 8 : i + 12], "little") * _P2) & _M32, 13) * _P1) & _M32
        v4 = (_rotl((v4 + int.from_bytes(data[i + 12 : i + 16], "little") * _P2) & _M32, 13) * _P1) & _M32
        i += 16
    v[0], v[1], v[2], v[3] = v1, v2, v3, v4


def _lanes_np(v: list[int], data, start: int, stripes: int) -> None:
    """Lane-parallel stripe loop: words of all four lanes are extracted and
    premultiplied by ``PRIME2`` in one vectorized pass, so the (inherently
    sequential) recurrence runs over ready-made python ints."""
    mv = memoryview(data)
    words = _np.frombuffer(mv, dtype="<u4", offset=start, count=stripes * 4)
    mw = ((words.astype(_np.uint64) * _P2) & _M32).reshape(stripes, 4)
    l1, l2, l3, l4 = (mw[:, k].tolist() for k in range(4))
    v1, v2, v3, v4 = v
    M, P1 = _M32, _P1
    for w1, w2, w3, w4 in zip(l1, l2, l3, l4):
        a = (v1 + w1) & M
        v1 = (((a << 13) | (a >> 19)) * P1) & M
        a = (v2 + w2) & M
        v2 = (((a << 13) | (a >> 19)) * P1) & M
        a = (v3 + w3) & M
        v3 = (((a << 13) | (a >> 19)) * P1) & M
        a = (v4 + w4) & M
        v4 = (((a << 13) | (a >> 19)) * P1) & M
    v[0], v[1], v[2], v[3] = v1, v2, v3, v4


def _xxh32_tail(acc: int, data, i: int, n: int) -> int:
    """Word/byte tail + avalanche shared by every XXH32 kernel."""
    while i <= n - 4:
        acc = (_rotl((acc + int.from_bytes(data[i : i + 4], "little") * _P3) & _M32, 17) * _P4) & _M32
        i += 4
    while i < n:
        acc = (_rotl((acc + data[i] * _P5) & _M32, 11) * _P1) & _M32
        i += 1
    acc ^= acc >> 15
    acc = (acc * _P2) & _M32
    acc ^= acc >> 13
    acc = (acc * _P3) & _M32
    acc ^= acc >> 16
    return acc


def _lane_init(seed: int) -> list[int]:
    return [(seed + _P1 + _P2) & _M32, (seed + _P2) & _M32, seed, (seed - _P1) & _M32]


def _lane_merge(v: list[int]) -> int:
    return (_rotl(v[0], 1) + _rotl(v[1], 7) + _rotl(v[2], 12) + _rotl(v[3], 18)) & _M32


def xxh32_np(data, seed: int = 0) -> int:
    """Lane-parallel XXH32 (bit-identical to :func:`xxh32_py`)."""
    seed &= _M32
    n = len(data)
    mv = memoryview(data)
    if n >= 16:
        stripes = n // 16
        v = _lane_init(seed)
        _lanes_np(v, mv, 0, stripes)
        acc = _lane_merge(v)
        i = stripes * 16
    else:
        acc = (seed + _P5) & _M32
        i = 0
    return _xxh32_tail((acc + n) & _M32, mv, i, n)


# =========================================================================
# Automatic kernel selection
# =========================================================================
def crc32c(data, value: int = 0) -> int:
    """CRC32C of ``data``; ``value`` chains a previous digest (streaming).

    Dispatches to the vectorized kernel for buffers ≥
    :data:`CRC32C_VECTOR_MIN` bytes when numpy is available; always
    bit-identical to :func:`crc32c_py`.
    """
    if _np is not None and len(data) >= CRC32C_VECTOR_MIN:
        return crc32c_np(data, value)
    return crc32c_py(data, value)


def xxh32(data, seed: int = 0) -> int:
    """XXH32 of ``data`` with ``seed`` (automatic kernel selection)."""
    if _np is not None and len(data) >= XXH32_VECTOR_MIN:
        return xxh32_np(data, seed)
    return xxh32_py(data, seed)


def kernel_info() -> dict:
    """Which kernels the dispatchers select (for benches and docs)."""
    return {
        "numpy": _np is not None,
        "crc32c": "numpy-slice8-fold" if _np is not None else "pure-python",
        "xxh32": "numpy-lane-parallel" if _np is not None else "pure-python",
        "crc32c_vector_min": CRC32C_VECTOR_MIN,
        "xxh32_vector_min": XXH32_VECTOR_MIN,
    }


# =========================================================================
# Buffer-parallel batch kernels (arena + offsets/lengths)
# =========================================================================
def _active_prefix_counts(sorted_lengths, positions):
    """``counts[i]`` = how many sorted-descending lengths exceed
    ``positions[i]`` — the still-active prefix at each sweep position."""
    asc = sorted_lengths[::-1]
    return len(sorted_lengths) - _np.searchsorted(asc, positions, side="right")


def crc32c_many(arena, offsets, lengths):
    """CRC32C of many records of one arena, in one vectorized sweep.

    ``arena`` is any bytes-like; record *i* is
    ``arena[offsets[i] : offsets[i] + lengths[i]]``.  Returns a
    ``uint32`` array (pure-python fallback returns a list).  Records are
    processed byte-position-parallel: buffers are sorted by length once
    and each position updates the whole still-active prefix with one
    table gather — built for thousands of small records (manifest payload
    tags), falling back to the per-buffer kernel when any record exceeds
    ``_MANY_MAX_RECORD`` bytes.
    """
    mv = memoryview(arena)
    if _np is None:
        return [crc32c_py(mv[o : o + ln]) for o, ln in zip(offsets, lengths)]
    offsets = _np.asarray(offsets, dtype=_np.int64)
    lengths = _np.asarray(lengths, dtype=_np.int64)
    n = len(offsets)
    if n == 0:
        return _np.empty(0, dtype=_np.uint32)
    if int(lengths.max()) > _MANY_MAX_RECORD:
        return _np.array(
            [crc32c(mv[o : o + ln]) for o, ln in zip(offsets.tolist(), lengths.tolist())],
            dtype=_np.uint32,
        )
    t32, _ = _build_vtables()
    a8 = _np.frombuffer(mv, dtype=_np.uint8)
    t32 = t32[0]
    order = _np.argsort(-lengths, kind="stable")
    soff, slen = offsets[order], lengths[order]
    maxlen = int(slen[0])
    counts = _active_prefix_counts(slen, _np.arange(maxlen))
    crc = _np.full(n, 0xFFFFFFFF, dtype=_np.uint32)
    m8, s8 = _np.uint32(0xFF), _np.uint32(8)
    for i in range(maxlen):
        k = counts[i]
        c = crc[:k]
        crc[:k] = t32[(c ^ a8[soff[:k] + i]) & m8] ^ (c >> s8)
    crc ^= _np.uint32(0xFFFFFFFF)
    out = _np.empty(n, dtype=_np.uint32)
    out[order] = crc
    return out


def _gather_words(a8, base):
    """Little-endian uint32 words at arbitrary byte offsets ``base``."""
    return (
        a8[base].astype(_np.uint32)
        | (a8[base + 1].astype(_np.uint32) << _np.uint32(8))
        | (a8[base + 2].astype(_np.uint32) << _np.uint32(16))
        | (a8[base + 3].astype(_np.uint32) << _np.uint32(24))
    )


def xxh32_many(arena, offsets, lengths, seed: int = 0):
    """XXH32 of many records of one arena, buffer-parallel (see
    :func:`crc32c_many` for the arena convention and fallback rules)."""
    mv = memoryview(arena)
    if _np is None:
        return [xxh32_py(mv[o : o + ln], seed) for o, ln in zip(offsets, lengths)]
    seed &= _M32
    offsets = _np.asarray(offsets, dtype=_np.int64)
    lengths = _np.asarray(lengths, dtype=_np.int64)
    n = len(offsets)
    if n == 0:
        return _np.empty(0, dtype=_np.uint32)
    if int(lengths.max()) > _MANY_MAX_RECORD:
        return _np.array(
            [xxh32(mv[o : o + ln], seed) for o, ln in zip(offsets.tolist(), lengths.tolist())],
            dtype=_np.uint32,
        )
    a8 = _np.frombuffer(mv, dtype=_np.uint8)
    order = _np.argsort(-lengths, kind="stable")
    soff, slen = offsets[order], lengths[order]
    m32 = _np.uint64(_M32)
    acc = _np.full(n, (seed + _P5) & _M32, dtype=_np.uint64)
    stripes = slen >> 2 >> 2  # // 16, kept as int64
    n16 = int(_np.count_nonzero(slen >= 16))
    if n16:
        max_stripes = int(stripes[0])
        counts = _active_prefix_counts(stripes[:n16], _np.arange(max_stripes))
        init = _lane_init(seed)
        lanes = [_np.full(n16, init[lane], dtype=_np.uint64) for lane in range(4)]
        for s in range(max_stripes):
            k = counts[s]
            base = soff[:k] + 16 * s
            for lane in range(4):
                w = _gather_words(a8, base + 4 * lane).astype(_np.uint64)
                t = (lanes[lane][:k] + w * _np.uint64(_P2)) & m32
                r = ((t << _np.uint64(13)) | (t >> _np.uint64(19))) & m32
                lanes[lane][:k] = (r * _np.uint64(_P1)) & m32
        rot = [1, 7, 12, 18]
        merged = _np.zeros(n16, dtype=_np.uint64)
        for lane in range(4):
            v = lanes[lane]
            merged += ((v << _np.uint64(rot[lane])) | (v >> _np.uint64(32 - rot[lane]))) & m32
        acc[:n16] = merged & m32
    acc = (acc + slen.astype(_np.uint64)) & m32
    word_base = stripes * 16
    words_left = (slen - word_base) >> 2  # 0..3 remaining 4-byte words
    for j in range(3):
        sel = _np.nonzero(words_left > j)[0]
        if len(sel) == 0:
            break
        w = _gather_words(a8, soff[sel] + word_base[sel] + 4 * j).astype(_np.uint64)
        t = (acc[sel] + w * _np.uint64(_P3)) & m32
        r = ((t << _np.uint64(17)) | (t >> _np.uint64(15))) & m32
        acc[sel] = (r * _np.uint64(_P4)) & m32
    byte_base = word_base + 4 * words_left
    bytes_left = slen - byte_base  # 0..3 trailing bytes
    for j in range(3):
        sel = _np.nonzero(bytes_left > j)[0]
        if len(sel) == 0:
            break
        b = a8[soff[sel] + byte_base[sel] + j].astype(_np.uint64)
        t = (acc[sel] + b * _np.uint64(_P5)) & m32
        r = ((t << _np.uint64(11)) | (t >> _np.uint64(21))) & m32
        acc[sel] = (r * _np.uint64(_P1)) & m32
    acc ^= acc >> _np.uint64(15)
    acc = (acc * _np.uint64(_P2)) & m32
    acc ^= acc >> _np.uint64(13)
    acc = (acc * _np.uint64(_P3)) & m32
    acc ^= acc >> _np.uint64(16)
    out = _np.empty(n, dtype=_np.uint64)
    out[order] = acc
    return out.astype(_np.uint32)


def digest_many(buffers, algorithm: str = "crc32c") -> list[int]:
    """Digest a sequence of bytes-like records in one batch pass.

    Convenience wrapper over the arena kernels: concatenates ``buffers``
    into one arena and returns plain python ints.  Callers that already
    hold an arena (the manifest builder) use :func:`crc32c_many` /
    :func:`xxh32_many` directly and skip the copy.
    """
    lengths = [len(b) for b in buffers]
    offsets = [0] * len(lengths)
    total = 0
    for i, ln in enumerate(lengths):
        offsets[i] = total
        total += ln
    arena = b"".join(bytes(b) for b in buffers)
    if algorithm == "crc32c":
        digests = crc32c_many(arena, offsets, lengths)
    elif algorithm == "xxh32":
        digests = xxh32_many(arena, offsets, lengths)
    else:
        raise ValueError(f"unknown digest algorithm {algorithm!r}")
    return [int(d) for d in digests]


# =========================================================================
# Streaming digests (split-invariant; zero-copy update over memoryviews)
# =========================================================================
class Crc32cStream:
    """Streaming CRC32C: ``update`` in any splits == one-shot digest.

    CRC chains natively (``crc32c(a + b) == crc32c(b, crc32c(a))``), so
    the stream is just the running digest; ``init`` seeds it from a known
    prior digest — the zero-copy trick the integrity layer uses to digest
    ``payload + marker`` without touching the payload bytes again.
    """

    __slots__ = ("_digest",)
    algorithm = "crc32c"

    def __init__(self, init: int = 0) -> None:
        self._digest = int(init) & _M32

    def update(self, data) -> "Crc32cStream":
        self._digest = crc32c(data, self._digest)
        return self

    def digest(self) -> int:
        return self._digest


class Xxh32Stream:
    """Streaming XXH32: lane state + a <16-byte tail buffer.

    ``digest()`` is non-destructive — it finalizes a copy of the state, so
    callers can keep feeding data afterwards (the divergent-digest salting
    loop relies on this).
    """

    __slots__ = ("_seed", "_total", "_v", "_tail")
    algorithm = "xxh32"

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed) & _M32
        self._total = 0
        self._v: list[int] | None = None  # lanes start at the first stripe
        self._tail = b""

    def update(self, data) -> "Xxh32Stream":
        mv = memoryview(data)
        n = len(mv)
        if n == 0:
            return self
        self._total += n
        start = 0
        if self._tail:
            take = min(16 - len(self._tail), n)
            self._tail += bytes(mv[:take])
            start = take
            if len(self._tail) < 16:
                return self
            if self._v is None:
                self._v = _lane_init(self._seed)
            _lanes_py(self._v, self._tail, 0, 1)
            self._tail = b""
        stripes = (n - start) // 16
        if stripes:
            if self._v is None:
                self._v = _lane_init(self._seed)
            if _np is not None and stripes * 16 >= XXH32_VECTOR_MIN:
                _lanes_np(self._v, mv, start, stripes)
            else:
                _lanes_py(self._v, mv, start, stripes)
            start += stripes * 16
        if start < n:
            self._tail = bytes(mv[start:])
        return self

    def digest(self) -> int:
        n = self._total
        if self._v is not None:
            acc = _lane_merge(self._v)
        else:
            acc = (self._seed + _P5) & _M32
        return _xxh32_tail((acc + n) & _M32, self._tail, 0, len(self._tail))


def stream_for(algorithm: str, *, init: int = 0, seed: int = 0):
    """A fresh streaming digest for ``algorithm`` (see the stream classes)."""
    if algorithm == "crc32c":
        return Crc32cStream(init)
    if algorithm == "xxh32":
        return Xxh32Stream(seed)
    raise ValueError(f"unknown digest algorithm {algorithm!r}")
