"""Pure-python per-chunk checksums: CRC32C (Castagnoli) and XXH32.

The integrity layer (:mod:`repro.transfer.integrity`) digests every chunk
of a transfer manifest with one of these functions.  Both are dependency-
free and deterministic across platforms:

* :func:`crc32c` — the iSCSI/ext4 CRC (polynomial ``0x1EDC6F41``,
  reflected), table-driven.  This is what GridFTP-era transfer services
  checksum blocks with.
* :func:`xxh32` — the 32-bit xxHash, a non-cryptographic hash several
  times faster than CRC in tight loops; included as the alternate
  manifest algorithm.

Both return unsigned 32-bit integers.  Known-answer vectors are pinned in
``tests/utils/test_checksum.py`` (``crc32c(b"123456789") == 0xE3069283``
is the standard CRC32C check value).
"""

from __future__ import annotations

__all__ = ["crc32c", "xxh32"]

_CRC32C_POLY = 0x82F63B78  # 0x1EDC6F41 reflected


def _crc_table() -> tuple[int, ...]:
    table = []
    for n in range(256):
        c = n
        for _ in range(8):
            c = (c >> 1) ^ _CRC32C_POLY if c & 1 else c >> 1
        table.append(c)
    return tuple(table)


_TABLE = _crc_table()


def crc32c(data: bytes, value: int = 0) -> int:
    """CRC32C of ``data``; ``value`` chains a previous digest (streaming)."""
    crc = (value & 0xFFFFFFFF) ^ 0xFFFFFFFF
    for byte in data:
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


_M32 = 0xFFFFFFFF
_P1, _P2, _P3, _P4, _P5 = 2654435761, 2246822519, 3266489917, 668265263, 374761393


def _rotl(x: int, r: int) -> int:
    return ((x << r) | (x >> (32 - r))) & _M32


def xxh32(data: bytes, seed: int = 0) -> int:
    """XXH32 of ``data`` with ``seed`` (reference algorithm, pure python)."""
    seed &= _M32
    n = len(data)
    i = 0
    if n >= 16:
        v1 = (seed + _P1 + _P2) & _M32
        v2 = (seed + _P2) & _M32
        v3 = seed
        v4 = (seed - _P1) & _M32
        while i <= n - 16:
            v1 =(_rotl((v1 + int.from_bytes(data[i : i + 4], "little") * _P2) & _M32, 13) * _P1) & _M32
            v2 = (_rotl((v2 + int.from_bytes(data[i + 4 : i + 8], "little") * _P2) & _M32, 13) * _P1) & _M32
            v3 = (_rotl((v3 + int.from_bytes(data[i + 8 : i + 12], "little") * _P2) & _M32, 13) * _P1) & _M32
            v4 = (_rotl((v4 + int.from_bytes(data[i + 12 : i + 16], "little") * _P2) & _M32, 13) * _P1) & _M32
            i += 16
        acc = (_rotl(v1, 1) + _rotl(v2, 7) + _rotl(v3, 12) + _rotl(v4, 18)) & _M32
    else:
        acc = (seed + _P5) & _M32
    acc = (acc + n) & _M32
    while i <= n - 4:
        acc = (_rotl((acc + int.from_bytes(data[i : i + 4], "little") * _P3) & _M32, 17) * _P4) & _M32
        i += 4
    while i < n:
        acc = (_rotl((acc + data[i] * _P5) & _M32, 11) * _P1) & _M32
        i += 1
    acc ^= acc >> 15
    acc = (acc * _P2) & _M32
    acc ^= acc >> 13
    acc = (acc * _P3) & _M32
    acc ^= acc >> 16
    return acc
