"""Deterministic drift-soak harness: seeded drift × adaptation invariants.

Each drift-soak **case** derives its whole scenario — drift kind, onset,
severity — from ``derive_seed(root_seed, case_index)``, runs one verified,
supervised transfer under an :class:`~repro.adapt.AdaptiveController`, and
asserts the safe-adaptation invariants:

* **detected** — the drift monitor moves the guard to DRIFT_SUSPECTED
  within ``latency_bound_s`` of the injected drift's onset;
* **acted** — the expected adaptation happened: a shadow-promoted
  correction for correctable (per-stream) drift, a rollback for the
  scenario that hard-stalls the pipeline mid-correction;
* **transitions_legal** — the :class:`~repro.adapt.guard.RollbackGuard`
  audit log re-validates against the legal-transition set;
* **no_data_loss** — the transfer completes verified with zero
  unrecovered chunks (rollback restores guarded-controller service);
* **restored** — the guard ends the case in NOMINAL or CORRECTING, never
  stuck in DRIFT_SUSPECTED or ROLLED_BACK;
* **deterministic** — the case runs twice and both runs produce an
  identical report fingerprint (same-seed reproducibility).

Scenario kinds cycle with the case index:

0. ``network_ramp`` — per-stream bandwidth ramp on the network path; more
   streams can compensate, so the corrector is expected to promote.
1. ``read_step`` — per-stream step change on the read stage; more read
   threads compensate.
2. ``rollback`` — the network ramp *plus* a total read+write stall landing
   inside the correction window; no thread count helps, so the adaptive
   stall watchdog must roll back to guarded control (three intervals,
   before the supervisor's five-interval stall detector).

Cases fan out over :class:`~repro.parallel.pool.ParallelMap`; seeds are a
pure function of ``(root_seed, case_index)``, so parallel results are
bit-identical to serial ones.  ``automdt soak --drift`` is the CLI entry
point and exits non-zero when any invariant fails.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.adapt import (
    CORRECTING,
    DRIFT_SUSPECTED,
    NOMINAL,
    AdaptConfig,
    AdaptiveController,
    SafetyEnvelope,
    transitions_legal,
)
from repro.baselines import StaticController
from repro.emulator.faults import BandwidthRamp, FaultSchedule, StepChange, StorageStall
from repro.emulator.presets import fig5_read_bottleneck
from repro.emulator.testbed import Testbed
from repro.harness.soak import _record_soak_report
from repro.parallel.pool import ParallelMap
from repro.parallel.seeds import derive_seed, spawn_key
from repro.transfer.engine import EngineConfig, ModularTransferEngine
from repro.transfer.files import uniform_dataset
from repro.transfer.integrity import IntegrityConfig, VerifiedTransfer
from repro.transfer.supervisor import SupervisorConfig, TransferSupervisor
from repro.utils.config import dump_json, require_positive

__all__ = [
    "DriftSoakConfig",
    "render_drift_soak_report",
    "run_drift_soak",
]

_SCENARIOS = ("network_ramp", "read_step", "rollback")


@dataclass(frozen=True)
class DriftSoakConfig:
    """Drift-soak knobs; every case is a pure function of its derived seed."""

    cases: int = 6
    root_seed: int = 0
    gigabytes: float = 4.0  # dataset size per case — must outlast onset + correction
    chunk_size: float = 32e6
    max_seconds: float = 900.0
    latency_bound_s: float = 30.0  # max detection delay after drift onset
    determinism_check: bool = True
    workers: int = 1  # ParallelMap fan-out (1 = serial)

    def __post_init__(self) -> None:
        require_positive(self.cases, "cases")
        require_positive(self.gigabytes, "gigabytes")
        require_positive(self.chunk_size, "chunk_size")
        require_positive(self.max_seconds, "max_seconds")
        require_positive(self.latency_bound_s, "latency_bound_s")

    @classmethod
    def quick(cls, root_seed: int = 0) -> "DriftSoakConfig":
        """The CI smoke preset: one case of each scenario kind."""
        return cls(cases=3, root_seed=root_seed)


def _case_scenario(index: int, seed: int) -> dict:
    """The case's seeded drift scenario (pure function of the seed)."""
    rng = np.random.default_rng(spawn_key(seed, (1,)))
    kind = _SCENARIOS[index % len(_SCENARIOS)]
    # The rollback scenario needs headroom after its stall window, so its
    # drift starts early; correctable drift can start anywhere that leaves
    # the detectors their warmup.
    onset = (
        float(rng.uniform(14.0, 16.0))
        if kind == "rollback"
        else float(rng.uniform(14.0, 22.0))
    )
    severity = float(rng.uniform(0.35, 0.5))  # surviving fraction of tpt
    events: list = []
    if kind == "network_ramp":
        events.append(
            BandwidthRamp(
                start=onset,
                duration=float(rng.uniform(6.0, 10.0)),
                to_scale=severity,
                stage="network",
                per_stream=True,
            )
        )
    elif kind == "read_step":
        events.append(
            StepChange(
                start=onset, duration=1.0, to_scale=severity, stage="read", per_stream=True
            )
        )
    else:  # rollback: correctable ramp, then a hard stall mid-correction.
        events.append(
            BandwidthRamp(
                start=onset,
                duration=8.0,
                to_scale=severity,
                stage="network",
                per_stream=True,
            )
        )
        # The shadow evaluation cadence puts promotion ~12-15s after onset
        # (warmup + suspicion + shadow_every); the stall opens inside the
        # correction-hold window and outlasts the rollback watchdog's
        # three intervals.
        stall_start = onset + 18.0
        for stage in ("read", "write"):
            events.append(
                StorageStall(start=stall_start, duration=14.0, factor=0.0, stage=stage)
            )
    return {"kind": kind, "onset": onset, "severity": round(severity, 4), "events": events}


def _fingerprint(record: dict) -> str:
    """sha256 over the stable, physics-determined fields of a case record."""
    stable = {
        key: record[key]
        for key in (
            "scenario",
            "onset",
            "completed",
            "verified",
            "transitions",
            "detections",
            "promotions",
            "rollbacks",
            "residual",
            "supervisor_retries",
            "completion_time_s",
            "total_bytes",
        )
    }
    payload = json.dumps(stable, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


def _run_once(index: int, config: DriftSoakConfig, case_dir: Path) -> dict:
    """One seeded drift case (no invariants yet); returns a JSON-able record."""
    seed = derive_seed(config.root_seed, index)
    scenario = _case_scenario(index, seed)
    case_dir.mkdir(parents=True, exist_ok=True)

    testbed_config = fig5_read_bottleneck()
    testbed = Testbed(
        testbed_config,
        rng=spawn_key(seed, (3,)),
        faults=FaultSchedule(scenario["events"]),
    )
    dataset = uniform_dataset(
        max(1, round(config.gigabytes * 4)), 0.25e9, name=f"drift-{index:03d}"
    )
    adaptive = AdaptiveController(
        StaticController(testbed_config.optimal_threads()),
        AdaptConfig(envelope=SafetyEnvelope.from_testbed_config(testbed_config)),
        name=f"drift-{index:03d}",
    )
    engine = ModularTransferEngine(
        testbed,
        dataset,
        adaptive,
        EngineConfig(max_seconds=config.max_seconds, seed=spawn_key(seed, (4,))),
    )
    supervisor = TransferSupervisor(engine, SupervisorConfig(seed=spawn_key(seed, (5,))))
    verified = VerifiedTransfer.for_supervisor(
        supervisor,
        case_dir,
        IntegrityConfig(
            chunk_size=config.chunk_size,
            seed=spawn_key(seed, (6,)),
            content_seed=seed,
            journal_flush_every=8,
        ),
    )
    result = verified.run()
    verified.journal.close()

    adapt_report = adaptive.report()
    suspects = [
        tr["t"]
        for tr in adapt_report["transitions"]
        if tr["dst"] == DRIFT_SUSPECTED and tr["t"] >= scenario["onset"]
    ]
    detection_latency = suspects[0] - scenario["onset"] if suspects else None
    record = {
        "case": index,
        "seed": seed,
        "dir": str(case_dir),
        "scenario": scenario["kind"],
        "onset": round(scenario["onset"], 3),
        "severity": scenario["severity"],
        "completed": result.completed,
        "verified": result.verified,
        "unrecovered_chunks": list(result.unrecovered_chunk_ids),
        "detection_latency_s": (
            round(detection_latency, 3) if detection_latency is not None else None
        ),
        "detections": adapt_report["detections"],
        "promotions": adapt_report["promotions"],
        "rollbacks": adapt_report["rollbacks"],
        "transitions": adapt_report["transitions"],
        "final_state": adapt_report["state"],
        "residual": adapt_report["residual"],
        "clamps": adapt_report["clamps"],
        "events": adapt_report["events"],
        "supervisor_retries": result.supervised.retries_used,
        "completion_time_s": round(result.supervised.completion_time, 1),
        "effective_mbps": round(result.supervised.effective_throughput, 1),
        "total_bytes": result.supervised.total_bytes,
    }
    record["fingerprint"] = _fingerprint(record)
    return record


def _run_case(index: int, config: DriftSoakConfig, out_dir: str | None) -> dict:
    """One drift case with invariants (and the optional determinism replay)."""
    case_dir = (
        Path(out_dir) / f"drift{index:03d}"
        if out_dir
        else Path(tempfile.mkdtemp(prefix=f"drift-case{index:03d}-"))
    )
    record = _run_once(index, config, case_dir / "run0")

    deterministic = True
    if config.determinism_check:
        replay = _run_once(index, config, case_dir / "run1")
        deterministic = replay["fingerprint"] == record["fingerprint"]

    expect_rollback = record["scenario"] == "rollback"
    invariants = {
        "detected": (
            record["detection_latency_s"] is not None
            and record["detection_latency_s"] <= config.latency_bound_s
        ),
        "acted": (
            record["rollbacks"] >= 1 if expect_rollback else record["promotions"] >= 1
        ),
        "transitions_legal": transitions_legal(
            [(tr["src"], tr["dst"]) for tr in record["transitions"]]
        ),
        "no_data_loss": bool(
            record["completed"]
            and record["verified"]
            and not record["unrecovered_chunks"]
        ),
        "restored": record["final_state"] in (NOMINAL, CORRECTING),
        "deterministic": deterministic,
    }
    record["invariants"] = invariants
    record["passed"] = all(invariants.values())
    dump_json(record, case_dir / "case.json")
    return record


def run_drift_soak(
    config: DriftSoakConfig | None = None, *, out_dir: str | Path | None = None
) -> dict:
    """Run the whole drift soak; returns (and optionally writes) the report."""
    config = config or DriftSoakConfig()
    out = str(out_dir) if out_dir is not None else None
    pool = ParallelMap(
        lambda index: _run_case(index, config, out), workers=max(1, config.workers)
    )
    cases = pool.map_values(list(range(config.cases)))

    failures = [c["case"] for c in cases if not c["passed"]]
    latencies = [
        c["detection_latency_s"] for c in cases if c["detection_latency_s"] is not None
    ]
    report = {
        "config": {
            "cases": config.cases,
            "root_seed": config.root_seed,
            "gigabytes": config.gigabytes,
            "chunk_size": config.chunk_size,
            "latency_bound_s": config.latency_bound_s,
            "determinism_check": config.determinism_check,
            "workers": config.workers,
        },
        "cases": cases,
        "all_passed": not failures,
        "failed_cases": failures,
        "total_detections": sum(c["detections"] for c in cases),
        "total_promotions": sum(c["promotions"] for c in cases),
        "total_rollbacks": sum(c["rollbacks"] for c in cases),
        "max_detection_latency_s": max(latencies) if latencies else None,
    }
    if out_dir is not None:
        path = Path(out_dir) / "drift_soak_report.json"
        dump_json(report, path)
        report["report_path"] = str(path)
    _record_soak_report("drift_soak", report, config.root_seed)
    return report


def render_drift_soak_report(report: dict) -> str:
    """Human-readable drift-soak summary for the CLI."""
    from repro.utils.tables import render_table

    rows = [
        [
            c["case"],
            "PASS" if c["passed"] else "FAIL",
            c["scenario"],
            "-" if c["detection_latency_s"] is None else f"{c['detection_latency_s']:.1f}s",
            c["promotions"],
            c["rollbacks"],
            c["final_state"],
            "".join(
                flag if passed else flag.upper()
                for flag, passed in zip("dalsrf", c["invariants"].values())
            ),
        ]
        for c in report["cases"]
    ]
    table = render_table(
        ["case", "result", "scenario", "latency", "promos", "rollbacks", "state", "inv"],
        rows,
        title=(
            f"drift soak — {len(report['cases'])} case(s), "
            f"root seed {report['config']['root_seed']}"
        ),
    )
    verdict = (
        "ALL INVARIANTS HELD"
        if report["all_passed"]
        else f"FAILED cases: {report['failed_cases']}"
    )
    return (
        f"{table}\n"
        "inv flags: d=detected a=acted l=transitions_legal s=no_data_loss "
        "r=restored f=deterministic (uppercase = violated)\n"
        f"{verdict}\n"
    )
