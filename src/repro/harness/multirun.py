"""Multi-seed experiment aggregation.

The paper's Table I numbers are "averages of those runs" repeated over a
week; this module reproduces that protocol: run an experiment across
several seeds and aggregate every numeric summary field into
mean/std/min/max.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.harness.result import ExperimentResult
from repro.utils.tables import render_table


def _flatten(prefix: str, value, out: dict[str, float]) -> None:
    if isinstance(value, bool):
        out[prefix] = float(value)
    elif isinstance(value, (int, float)) and np.isfinite(value):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for key, sub in value.items():
            _flatten(f"{prefix}.{key}", sub, out)
    elif isinstance(value, (tuple, list)) and all(
        isinstance(v, (int, float, bool)) for v in value
    ):
        for i, sub in enumerate(value):
            _flatten(f"{prefix}[{i}]", sub, out)
    # everything else (strings, None) is skipped


def flatten_summary(summary: dict) -> dict[str, float]:
    """Dotted-key flattening of the numeric parts of a summary dict."""
    out: dict[str, float] = {}
    for key, value in summary.items():
        _flatten(key, value, out)
    return out


@dataclass
class AggregateResult:
    """Per-metric statistics over several seeded runs of one experiment."""

    name: str
    seeds: tuple[int, ...]
    runs: list[ExperimentResult]
    stats: dict[str, dict[str, float]] = field(default_factory=dict)

    def table(self) -> str:
        """Render the aggregated metrics as a text table."""
        rows = [
            [key, round(s["mean"], 3), round(s["std"], 3), round(s["min"], 3),
             round(s["max"], 3), int(s["n"])]
            for key, s in sorted(self.stats.items())
        ]
        return render_table(
            ["metric", "mean", "std", "min", "max", "n"],
            rows,
            title=f"{self.name} over seeds {list(self.seeds)}",
        )

    def mean(self, metric: str) -> float:
        """Mean of one aggregated metric (KeyError if never numeric)."""
        return self.stats[metric]["mean"]


def aggregate(
    name: str, seeds: Sequence[int], runs: Sequence[ExperimentResult]
) -> AggregateResult:
    """Fold per-seed :class:`ExperimentResult` runs into mean/std/min/max.

    Metrics that are missing (e.g. a "time to reach" that is None for some
    seed) are aggregated over the runs where they exist; ``n`` records how
    many runs contributed.
    """
    samples: dict[str, list[float]] = {}
    for run in runs:
        for key, value in flatten_summary(run.summary).items():
            samples.setdefault(key, []).append(value)
    stats = {
        key: {
            "mean": float(np.mean(vals)),
            "std": float(np.std(vals)),
            "min": float(np.min(vals)),
            "max": float(np.max(vals)),
            "n": float(len(vals)),
        }
        for key, vals in samples.items()
    }
    return AggregateResult(
        name=name, seeds=tuple(int(s) for s in seeds), runs=list(runs), stats=stats
    )


def run_seeded(
    experiment: Callable[..., ExperimentResult],
    seeds: Sequence[int],
    *,
    workers: int = 1,
    timeout: float | None = None,
    retries: int = 0,
    store=None,
    **kwargs,
) -> AggregateResult:
    """Run ``experiment(seed=s, **kwargs)`` for each seed and aggregate.

    With ``workers > 1`` (or ``0`` for all cores) the seeds fan out across
    a :class:`repro.parallel.ParallelMap` process pool.  Each experiment is
    already a pure function of its seed, so the parallel aggregate is
    bit-identical to the serial one; any failed seed raises
    :class:`repro.parallel.ParallelMapError` rather than silently shrinking
    the sample.  If a global obs session with a run directory is active,
    workers log to per-worker event files which are merged back afterwards.

    With a results store resolved (``store`` argument, or the process's
    active store) every per-seed run is ingested as one ``experiment``
    row keyed on the current git revision and config fingerprint.
    """
    import time

    if not seeds:
        raise ValueError("need at least one seed")
    seed_list = [int(s) for s in seeds]
    started = time.time()
    if workers == 1:
        runs = [experiment(seed=s, **kwargs) for s in seed_list]
    else:
        from repro import obs
        from repro.parallel import ParallelMap, merge_worker_logs

        sess = obs.active()
        run_dir = sess.run_dir if sess is not None else None

        def call(seed: int) -> ExperimentResult:
            return experiment(seed=seed, **kwargs)

        pool = ParallelMap(
            call, workers=workers, timeout=timeout, retries=retries, obs_dir=run_dir
        )
        try:
            runs = pool.map_values(seed_list)
        finally:
            if run_dir is not None:
                merge_worker_logs(run_dir)

    from repro.obs.store import RunRecord, experiment_config, resolve_store

    sink = resolve_store(store)
    if sink is not None:
        name = runs[0].name
        config = experiment_config(name, **kwargs)
        finished = time.time()
        for seed, run in zip(seed_list, runs):
            sink.ingest(
                RunRecord(
                    kind="experiment",
                    scenario=name,
                    seed=seed,
                    config=config,
                    started=started,
                    finished=finished,
                    metrics=flatten_summary(run.summary),
                )
            )
    return aggregate(runs[0].name, seed_list, runs)
