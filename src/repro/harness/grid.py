"""Experiment grid runner: experiments × seeds over the process pool.

``automdt sweep`` is the CLI face of this module.  A grid flattens to one
task per (experiment, seed) cell and fans the cells out across a
:class:`repro.parallel.ParallelMap` pool — better load balance than
parallelising seeds within one experiment at a time, because a slow cell
(e.g. ``table1``) overlaps with every other experiment's cells instead of
serialising behind its siblings.

Each cell calls the registered experiment exactly as the serial harness
would, so a parallel grid reproduces the serial numbers bit-for-bit; cells
that fail (crash, timeout, exception) are reported per-cell instead of
sinking the sweep.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.harness.multirun import AggregateResult, aggregate
from repro.harness.result import ExperimentResult
from repro.parallel import ParallelMap, TaskOutcome, merge_worker_logs
from repro.utils.tables import render_table

__all__ = ["GridResult", "parse_seeds", "run_grid"]


def parse_seeds(spec: str | Sequence[int]) -> list[int]:
    """Parse a seed spec: ``"0-9"``, ``"0,1,5"``, ``"0-3,8"`` or an int list.

    Ranges are inclusive on both ends, matching how sweep sizes are quoted
    ("seeds 0-9" is a 10-seed sweep).
    """
    if not isinstance(spec, str):
        return [int(s) for s in spec]
    seeds: list[int] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part[1:]:  # allow a leading minus sign
            lo_text, hi_text = part[1:].split("-", 1)
            lo, hi = int(part[0] + lo_text), int(hi_text)
            if hi < lo:
                raise ValueError(f"descending seed range {part!r}")
            seeds.extend(range(lo, hi + 1))
        else:
            seeds.append(int(part))
    if not seeds:
        raise ValueError(f"no seeds in spec {spec!r}")
    return seeds


def _grid_call(cell: tuple[str, int, bool]) -> ExperimentResult:
    """One grid cell — top-level so the pool's fork/serial paths match."""
    from repro.harness.experiments import EXPERIMENTS

    name, seed, fast = cell
    return EXPERIMENTS[name](fast=fast, seed=seed)


@dataclass
class GridResult:
    """Everything one grid sweep produced."""

    experiments: tuple[str, ...]
    seeds: tuple[int, ...]
    #: per-experiment aggregate over the seeds that succeeded
    aggregates: dict[str, AggregateResult] = field(default_factory=dict)
    #: failed cells; ``TaskOutcome.value`` is None, ``.error`` says why
    failures: list[tuple[str, int, TaskOutcome]] = field(default_factory=list)
    workers: int = 1
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def table(self) -> str:
        """One row per experiment: cells, failures, headline wall time."""
        rows = []
        failed_by_name: dict[str, int] = {}
        for name, _seed, _outcome in self.failures:
            failed_by_name[name] = failed_by_name.get(name, 0) + 1
        for name in self.experiments:
            agg = self.aggregates.get(name)
            rows.append([
                name,
                len(agg.runs) if agg is not None else 0,
                failed_by_name.get(name, 0),
                len(agg.stats) if agg is not None else 0,
            ])
        return render_table(
            ["experiment", "runs", "failed", "metrics"],
            rows,
            title=(
                f"sweep over seeds {list(self.seeds)} — "
                f"{self.workers} worker(s), {self.wall_seconds:.1f}s"
            ),
        )


def run_grid(
    experiments: Sequence[str],
    seeds: Sequence[int],
    *,
    fast: bool = True,
    workers: int = 1,
    timeout: float | None = None,
    retries: int = 0,
    out: str | Path | None = None,
) -> GridResult:
    """Run every (experiment, seed) cell, optionally in parallel.

    ``workers`` follows :class:`ParallelMap` semantics (``0`` = all cores,
    ``1`` = serial in-process).  If a global obs session with a run
    directory is active, pool workers write per-worker event logs there and
    they are merged back after the sweep.  With ``out`` set, every
    successful cell is saved as ``<out>/<experiment>_seed<k>.json``.
    """
    from repro import obs
    from repro.harness.experiments import EXPERIMENTS

    unknown = [n for n in experiments if n not in EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiment(s): {unknown}")
    seeds = [int(s) for s in seeds]
    if not seeds:
        raise ValueError("need at least one seed")

    cells = [(name, seed, fast) for name in experiments for seed in seeds]
    sess = obs.active()
    run_dir = sess.run_dir if sess is not None else None

    started = time.perf_counter()
    pool = ParallelMap(
        _grid_call, workers=workers, timeout=timeout, retries=retries, obs_dir=run_dir
    )
    try:
        outcomes = pool.map(cells)
    finally:
        if run_dir is not None:
            merge_worker_logs(run_dir)
    wall = time.perf_counter() - started

    result = GridResult(
        experiments=tuple(experiments),
        seeds=tuple(seeds),
        workers=pool.workers,
        wall_seconds=wall,
    )
    runs_by_name: dict[str, list[tuple[int, ExperimentResult]]] = {}
    for (name, seed, _fast), outcome in zip(cells, outcomes):
        if outcome.ok:
            runs_by_name.setdefault(name, []).append((seed, outcome.value))
        else:
            result.failures.append((name, seed, outcome))
    for name, seeded_runs in runs_by_name.items():
        result.aggregates[name] = aggregate(
            name, [s for s, _ in seeded_runs], [r for _, r in seeded_runs]
        )
    if out is not None:
        for name, seeded_runs in runs_by_name.items():
            for seed, run in seeded_runs:
                run.name = f"{name}_seed{seed}"
                run.save(out)
    return result
