"""Experiment grid runner: experiments × seeds over the process pool.

``automdt sweep`` is the CLI face of this module.  A grid flattens to one
task per (experiment, seed) cell and fans the cells out across a
:class:`repro.parallel.ParallelMap` pool — better load balance than
parallelising seeds within one experiment at a time, because a slow cell
(e.g. ``table1``) overlaps with every other experiment's cells instead of
serialising behind its siblings.

Each cell calls the registered experiment exactly as the serial harness
would, so a parallel grid reproduces the serial numbers bit-for-bit; cells
that fail (crash, timeout, exception) are reported per-cell instead of
sinking the sweep.

With a results store active (``--store`` / ``AUTOMDT_STORE``, see
:mod:`repro.obs.store`) the grid becomes *resumable*: before dispatch it
queries the store for already-completed (cell, seed) pairs at the current
git revision and config fingerprint and skips them, loading their stored
metrics into the aggregates instead of recomputing — the
``run_missing_experiments`` pattern.  Fresh cells are ingested on
completion, so an interrupted sweep re-run finishes only the missing
cells and appends no duplicate rows.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.harness.multirun import AggregateResult, aggregate
from repro.harness.result import ExperimentResult
from repro.parallel import ParallelMap, TaskOutcome, merge_worker_logs
from repro.utils.tables import render_table

__all__ = ["GridResult", "parse_seeds", "run_grid"]


def parse_seeds(spec: str | Sequence[int]) -> list[int]:
    """Parse a seed spec: ``"0-9"``, ``"0,1,5"``, ``"0-3,8"`` or an int list.

    Ranges are inclusive on both ends, matching how sweep sizes are quoted
    ("seeds 0-9" is a 10-seed sweep).
    """
    if not isinstance(spec, str):
        return [int(s) for s in spec]
    seeds: list[int] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part[1:]:  # allow a leading minus sign
            lo_text, hi_text = part[1:].split("-", 1)
            lo, hi = int(part[0] + lo_text), int(hi_text)
            if hi < lo:
                raise ValueError(f"descending seed range {part!r}")
            seeds.extend(range(lo, hi + 1))
        else:
            seeds.append(int(part))
    if not seeds:
        raise ValueError(f"no seeds in spec {spec!r}")
    return seeds


def _grid_call(cell: tuple[str, int, bool]) -> ExperimentResult:
    """One grid cell — top-level so the pool's fork/serial paths match."""
    from repro.harness.experiments import EXPERIMENTS

    name, seed, fast = cell
    return EXPERIMENTS[name](fast=fast, seed=seed)


@dataclass
class GridResult:
    """Everything one grid sweep produced."""

    experiments: tuple[str, ...]
    seeds: tuple[int, ...]
    #: per-experiment aggregate over the seeds that succeeded
    aggregates: dict[str, AggregateResult] = field(default_factory=dict)
    #: failed cells; ``TaskOutcome.value`` is None, ``.error`` says why
    failures: list[tuple[str, int, TaskOutcome]] = field(default_factory=list)
    #: cells found complete in the results store and not re-run
    skipped: list[tuple[str, int]] = field(default_factory=list)
    workers: int = 1
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def table(self) -> str:
        """One row per experiment: cells, failures, headline wall time."""
        rows = []
        failed_by_name: dict[str, int] = {}
        for name, _seed, _outcome in self.failures:
            failed_by_name[name] = failed_by_name.get(name, 0) + 1
        skipped_by_name: dict[str, int] = {}
        for name, _seed in self.skipped:
            skipped_by_name[name] = skipped_by_name.get(name, 0) + 1
        for name in self.experiments:
            agg = self.aggregates.get(name)
            rows.append([
                name,
                len(agg.runs) if agg is not None else 0,
                failed_by_name.get(name, 0),
                skipped_by_name.get(name, 0),
                len(agg.stats) if agg is not None else 0,
            ])
        return render_table(
            ["experiment", "runs", "failed", "skipped", "metrics"],
            rows,
            title=(
                f"sweep over seeds {list(self.seeds)} — "
                f"{self.workers} worker(s), {self.wall_seconds:.1f}s"
            ),
        )


def run_grid(
    experiments: Sequence[str],
    seeds: Sequence[int],
    *,
    fast: bool = True,
    workers: int = 1,
    timeout: float | None = None,
    retries: int = 0,
    out: str | Path | None = None,
    store=None,
    resume: bool = True,
) -> GridResult:
    """Run every (experiment, seed) cell, optionally in parallel.

    ``workers`` follows :class:`ParallelMap` semantics (``0`` = all cores,
    ``1`` = serial in-process).  If a global obs session with a run
    directory is active, pool workers write per-worker event logs there and
    they are merged back after the sweep.  With ``out`` set, every
    successful cell is saved as ``<out>/<experiment>_seed<k>.json``.

    ``store`` is a results database (path or
    :class:`~repro.obs.store.ResultsStore`; defaults to the process's
    active store, if any).  Fresh cells are ingested as they complete;
    with ``resume`` (default) cells the store already holds — same
    experiment, seed, config fingerprint and git revision — are skipped
    and their stored metrics join the aggregates, so re-running an
    interrupted sweep computes only what is missing and never duplicates
    rows.
    """
    import time as wall_clock

    from repro import obs
    from repro.harness.experiments import EXPERIMENTS
    from repro.harness.multirun import flatten_summary
    from repro.obs.store import RunRecord, experiment_config, fingerprint_config
    from repro.obs.store import resolve_store as _resolve_store

    unknown = [n for n in experiments if n not in EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiment(s): {unknown}")
    seeds = [int(s) for s in seeds]
    if not seeds:
        raise ValueError("need at least one seed")

    sink = _resolve_store(store)
    cells = [(name, seed, fast) for name in experiments for seed in seeds]
    fingerprints = {
        name: fingerprint_config(experiment_config(name, fast=fast))
        for name in experiments
    }

    result = GridResult(experiments=tuple(experiments), seeds=tuple(seeds))
    runs_by_name: dict[str, list[tuple[int, ExperimentResult]]] = {}

    pending = cells
    if sink is not None and resume:
        pending = []
        for name, seed, fast_flag in cells:
            run_id = sink.completed_run("experiment", name, seed, fingerprints[name])
            if run_id is None:
                pending.append((name, seed, fast_flag))
            else:
                # Rebuild the cell's result from its stored flat metrics —
                # flattening is idempotent, so the aggregate is identical.
                stored = ExperimentResult(name, summary=sink.run_metrics(run_id))
                runs_by_name.setdefault(name, []).append((seed, stored))
                result.skipped.append((name, seed))

    sess = obs.active()
    run_dir = sess.run_dir if sess is not None else None

    started = time.perf_counter()
    sweep_started = wall_clock.time()
    pool = ParallelMap(
        _grid_call, workers=workers, timeout=timeout, retries=retries, obs_dir=run_dir
    )
    try:
        outcomes = pool.map(pending) if pending else []
    finally:
        if run_dir is not None:
            merge_worker_logs(run_dir)
    result.workers = pool.workers
    result.wall_seconds = time.perf_counter() - started

    fresh: list[tuple[str, int, ExperimentResult]] = []
    for (name, seed, _fast), outcome in zip(pending, outcomes):
        if outcome.ok:
            runs_by_name.setdefault(name, []).append((seed, outcome.value))
            fresh.append((name, seed, outcome.value))
        else:
            result.failures.append((name, seed, outcome))
    if sink is not None:
        finished = wall_clock.time()
        for name, seed, run in fresh:
            sink.ingest(
                RunRecord(
                    kind="experiment",
                    scenario=name,
                    seed=seed,
                    config=experiment_config(name, fast=fast),
                    started=sweep_started,
                    finished=finished,
                    metrics=flatten_summary(run.summary),
                )
            )
    for name, seeded_runs in runs_by_name.items():
        result.aggregates[name] = aggregate(
            name, [s for s, _ in seeded_runs], [r for _, r in seeded_runs]
        )
    if out is not None:
        for name, seed, run in fresh:
            run.name = f"{name}_seed{seed}"
            run.save(out)
    return result
