"""Deterministic chaos-soak harness: seeded faults × crashes × invariants.

Each soak **case** derives everything — fault schedule, crash instants,
corruption draws — from ``derive_seed(root_seed, case_index)``, runs one
:class:`~repro.transfer.integrity.VerifiedTransfer` under a
:class:`~repro.transfer.supervisor.TransferSupervisor`, kills it at the
scheduled crash points (losing the journal's unflushed buffer, optionally
leaving a torn tail), resumes with journal replay + verification, and then
asserts the integrity invariants:

* **all_verified** — every manifest chunk digest matches at the
  destination when the case ends;
* **no_double_count** — journal claims cover exactly the manifest's chunk
  ids, every chunk was sent at least once, and verified bytes equal the
  dataset size exactly once (the ledger additionally raises
  :class:`~repro.utils.errors.IntegrityError` mid-run if a pass ever
  writes beyond its pending chunk set);
* **replay_idempotent** — replaying the journal twice yields identical
  claims;
* **conservation** — across all passes the destination durably applied at
  least the dataset size (you cannot verify bytes that never arrived) and
  the final supervised pass landed on the full byte count.

Cases fan out over :class:`repro.parallel.pool.ParallelMap`; seeds are a
pure function of ``(root_seed, case_index)``, so parallel soak results are
bit-identical to serial ones.  ``automdt soak`` is the CLI entry point and
exits non-zero when any invariant fails.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.baselines import StaticController
from repro.emulator.faults import (
    DataCorruption,
    FaultSchedule,
    SilentTruncation,
    TornWrite,
)
from repro.emulator.presets import fig5_read_bottleneck
from repro.emulator.testbed import Testbed
from repro.parallel.pool import ParallelMap
from repro.parallel.seeds import derive_seed, spawn_key
from repro.transfer.engine import EngineConfig, ModularTransferEngine
from repro.transfer.files import uniform_dataset
from repro.transfer.integrity import IntegrityConfig, VerifiedTransfer
from repro.transfer.supervisor import SupervisorConfig, TransferSupervisor
from repro.utils.config import dump_json, require_non_negative, require_positive

__all__ = [
    "FleetSoakConfig",
    "SoakConfig",
    "render_fleet_soak_report",
    "render_soak_report",
    "run_fleet_soak",
    "run_soak",
]


@dataclass(frozen=True)
class SoakConfig:
    """Chaos-soak knobs; every case is a pure function of its derived seed."""

    cases: int = 8
    root_seed: int = 0
    gigabytes: float = 2.0  # dataset size per case
    chunk_size: float = 32e6
    max_seconds: float = 900.0
    corruption: bool = True  # in-flight + at-rest DataCorruption
    torn_writes: bool = True
    truncation: bool = True
    crashes: bool = True  # mid-transfer process kills
    max_crashes: int = 2  # per case
    workers: int = 1  # ParallelMap fan-out (1 = serial)

    def __post_init__(self) -> None:
        require_positive(self.cases, "cases")
        require_positive(self.gigabytes, "gigabytes")
        require_positive(self.chunk_size, "chunk_size")
        require_positive(self.max_seconds, "max_seconds")
        require_non_negative(self.max_crashes, "max_crashes")

    @classmethod
    def quick(cls, root_seed: int = 0) -> "SoakConfig":
        """The CI smoke preset: 3 small seeded cases, corruption + crashes."""
        return cls(cases=3, root_seed=root_seed, gigabytes=1.0, max_crashes=1)


def _record_soak_report(kind: str, report: dict, root_seed: int) -> None:
    """Ingest a soak/fleet-soak report into the active results store, if any.

    One run per soak: scalar report fields become plain metrics, each
    case's pass/fail becomes a labelled ``case.passed`` metric, and the
    written report file (when present) is attached as an artifact.
    """
    from repro.obs.store import flatten_numeric, record_report, resolve_store

    sink = resolve_store(None)
    if sink is None:
        return
    metrics = flatten_numeric(
        {k: v for k, v in report.items() if k not in ("cases", "config")}
    )
    labelled = [
        ("case.passed", float(case["passed"]), {"case": str(case["case"])})
        for case in report["cases"]
    ]
    artifacts = [report["report_path"]] if "report_path" in report else []
    record_report(
        kind,
        kind,
        seed=root_seed,
        config=report["config"],
        metrics=metrics,
        labelled_metrics=labelled,
        artifacts=artifacts,
        store=sink,
    )


class _SimulatedCrash(Exception):
    """Raised by the soak observer at a scheduled crash instant."""

    def __init__(self, t: float) -> None:
        super().__init__(f"simulated crash at t={t:.1f}s")
        self.t = t


def _case_faults(config: SoakConfig, seed: int) -> FaultSchedule:
    """The case's seeded data-plane fault schedule."""
    rng = np.random.default_rng(spawn_key(seed, (1,)))
    events = []
    if config.corruption:
        events.append(
            DataCorruption(
                start=float(rng.uniform(2.0, 8.0)),
                duration=float(rng.uniform(5.0, 15.0)),
                rate=float(rng.uniform(0.1, 0.3)),
                site="network",
            )
        )
        events.append(
            DataCorruption(
                start=float(rng.uniform(10.0, 20.0)),
                duration=1.0,
                rate=float(rng.uniform(0.05, 0.2)),
                site="storage",
            )
        )
    if config.torn_writes:
        events.append(TornWrite(at=float(rng.uniform(3.0, 15.0))))
    if config.truncation:
        events.append(
            SilentTruncation(
                at=float(rng.uniform(5.0, 18.0)), chunks=1 + int(rng.integers(3))
            )
        )
    return FaultSchedule(events)


def _crash_plan(config: SoakConfig, seed: int) -> tuple[list[float], list[bool]]:
    """Virtual crash instants and whether each leaves a torn journal tail."""
    if not config.crashes or config.max_crashes == 0:
        return [], []
    rng = np.random.default_rng(spawn_key(seed, (2,)))
    count = 1 + int(rng.integers(config.max_crashes))
    times = sorted(float(rng.uniform(4.0, 20.0)) for _ in range(count))
    torn = [bool(rng.random() < 0.5) for _ in range(count)]
    return times, torn


def _run_case(index: int, config: SoakConfig, out_dir: str | None) -> dict:
    """One seeded soak case; returns a JSON-able case record."""
    seed = derive_seed(config.root_seed, index)
    case_dir = (
        Path(out_dir) / f"case{index:03d}"
        if out_dir
        else Path(tempfile.mkdtemp(prefix=f"soak-case{index:03d}-"))
    )
    case_dir.mkdir(parents=True, exist_ok=True)

    testbed_config = fig5_read_bottleneck()
    testbed = Testbed(
        testbed_config, rng=spawn_key(seed, (3,)), faults=_case_faults(config, seed)
    )
    dataset = uniform_dataset(
        max(1, round(config.gigabytes * 4)), 0.25e9, name=f"soak-{index:03d}"
    )
    engine = ModularTransferEngine(
        testbed,
        dataset,
        StaticController(testbed_config.optimal_threads()),
        EngineConfig(max_seconds=config.max_seconds, seed=spawn_key(seed, (4,))),
    )
    supervisor = TransferSupervisor(engine, SupervisorConfig(seed=spawn_key(seed, (5,))))
    verified = VerifiedTransfer.for_supervisor(
        supervisor,
        case_dir,
        IntegrityConfig(
            chunk_size=config.chunk_size,
            seed=spawn_key(seed, (6,)),
            content_seed=seed,
            journal_flush_every=8,
        ),
    )

    crash_times, crash_torn = _crash_plan(config, seed)
    pending = list(crash_times)

    def crasher(observation) -> None:
        if pending and observation.elapsed >= pending[0]:
            pending.pop(0)
            raise _SimulatedCrash(observation.elapsed)

    crashes_done = 0
    resumed = False
    resume_t = 0.0
    while True:
        try:
            result = verified.run(
                resume=resumed, resume_elapsed=resume_t, observer=crasher
            )
            break
        except _SimulatedCrash as crash:
            # Process death: the journal's unflushed buffer is lost, the
            # destination (ledger) and the virtual clock survive.
            verified.journal.crash(torn_tail=crash_torn[crashes_done])
            crashes_done += 1
            resumed = True
            resume_t = crash.t
    verified.journal.flush()

    # ------------------------------------------------------------ invariants
    manifest, ledger, journal = verified.manifest, verified.ledger, verified.journal
    claims = journal.replay()
    total = manifest.total_bytes
    all_verified = bool(result.verified and not ledger.verify())
    no_double_count = bool(
        set(claims) == {c.chunk_id for c in manifest.chunks}
        and all(count >= 1 for count in ledger.send_counts.values())
        and abs(ledger.verified_bytes - total) < 1.0
    )
    replay_idempotent = journal.replay() == claims
    last_pass_bytes = (
        result.supervised.attempts[-1].end_bytes if result.supervised.attempts else 0.0
    )
    # The testbed's read counter resets per engine pass, so conservation is
    # checked on the ledger's cross-pass applied-byte total: every dataset
    # byte became durable at least once, and the final pass landed exactly
    # on the full byte count.
    conservation = bool(
        ledger.bytes_applied_total >= total - 1.0 and abs(last_pass_bytes - total) < 1.0
    )
    invariants = {
        "all_verified": all_verified,
        "no_double_count": no_double_count,
        "replay_idempotent": replay_idempotent,
        "conservation": conservation,
    }

    journal.close()
    manifest.save(case_dir / "manifest.json")
    ledger.save(case_dir / "destination.json")
    record = {
        "case": index,
        "seed": seed,
        "dir": str(case_dir),
        "completed": result.completed,
        "verified": result.verified,
        "passed": all(invariants.values()),
        "invariants": invariants,
        "chunks_total": result.chunks_total,
        "crashes": crashes_done,
        "crash_times": crash_times[:crashes_done],
        "resume_verified_chunks": result.resumed_verified_chunks,
        "resent_chunks": sorted(set(result.resent_chunk_ids)),
        "repair_rounds": result.repair_rounds,
        "unrecovered_chunks": list(result.unrecovered_chunk_ids),
        "destination": ledger.status_counts(),
        "total_bytes": total,
        "source_read_bytes": testbed.total_read,
        "supervisor_retries": result.supervised.retries_used,
        "completion_time_s": round(result.supervised.completion_time, 1),
    }
    dump_json(record, case_dir / "case.json")
    return record


def run_soak(config: SoakConfig | None = None, *, out_dir: str | Path | None = None) -> dict:
    """Run the whole soak; returns (and optionally writes) the report.

    With ``out_dir`` each case leaves its artifacts (``manifest.json``,
    ``journal.jsonl``, ``destination.json``, ``case.json``) under
    ``out_dir/caseNNN/`` — each directory is `automdt verify`-able — and
    the aggregate lands in ``out_dir/soak_report.json``.
    """
    config = config or SoakConfig()
    out = str(out_dir) if out_dir is not None else None
    pool = ParallelMap(
        lambda index: _run_case(index, config, out), workers=max(1, config.workers)
    )
    cases = pool.map_values(list(range(config.cases)))

    failures = [c["case"] for c in cases if not c["passed"]]
    report = {
        "config": {
            "cases": config.cases,
            "root_seed": config.root_seed,
            "gigabytes": config.gigabytes,
            "chunk_size": config.chunk_size,
            "corruption": config.corruption,
            "torn_writes": config.torn_writes,
            "truncation": config.truncation,
            "crashes": config.crashes,
            "workers": config.workers,
        },
        "cases": cases,
        "all_passed": not failures,
        "failed_cases": failures,
        "total_crashes": sum(c["crashes"] for c in cases),
        "total_resent_chunks": sum(len(c["resent_chunks"]) for c in cases),
        "total_repair_rounds": sum(c["repair_rounds"] for c in cases),
    }
    if out_dir is not None:
        path = Path(out_dir) / "soak_report.json"
        dump_json(report, path)
        report["report_path"] = str(path)
    _record_soak_report("soak", report, config.root_seed)
    return report


# --------------------------------------------------------------------- fleet


@dataclass(frozen=True)
class FleetSoakConfig:
    """Fleet-level chaos soak: many tenants × many transfers per case.

    Each case builds a :class:`~repro.fleet.scheduler.FleetScheduler` over
    ``transfers`` concurrent requests spread across ``tenants`` equal-weight
    tenants, injects the usual seeded chaos (stalls, corruption, crashes)
    into every job, and checks the fleet invariants on the report:

    * **no_data_loss / all_recovered** — every admitted transfer finishes
      verified with zero unrecovered chunks;
    * **no_starvation** — every admitted job got at least one slice;
    * **capacity_respected** — no round's total allocation exceeded the
      link capacity;
    * **breaker_transitions_legal** — every circuit-breaker log re-validates
      against the legal-transition set;
    * **fair_goodput** — equal-weight tenants with identical workloads land
      within ``fairness_bound`` of each other (max/min verified-goodput);
    * **deterministic** — with ``determinism_check`` the whole case runs
      twice and the two report fingerprints must be identical.
    """

    cases: int = 4
    root_seed: int = 0
    tenants: int = 4
    transfers: int = 32
    gigabytes: float = 0.25
    quantum: float = 10.0
    max_parallel: int = 8
    horizon: float = 2400.0
    stalls: bool = True
    corruption: bool = True
    crashes: bool = True
    fairness_bound: float = 2.5
    determinism_check: bool = True
    workers: int = 1

    def __post_init__(self) -> None:
        require_positive(self.cases, "cases")
        require_positive(self.tenants, "tenants")
        require_positive(self.transfers, "transfers")
        require_positive(self.gigabytes, "gigabytes")
        require_positive(self.quantum, "quantum")
        require_positive(self.max_parallel, "max_parallel")
        require_positive(self.horizon, "horizon")
        require_positive(self.fairness_bound, "fairness_bound")

    @classmethod
    def quick(cls, root_seed: int = 0) -> "FleetSoakConfig":
        """The CI smoke preset: one 32-transfer case across 4 tenants."""
        return cls(cases=1, root_seed=root_seed, transfers=32, tenants=4)


def _fleet_case_config(config: FleetSoakConfig, seed: int):
    """The per-case fleet configuration (pure function of the seed)."""
    from repro.fleet import FleetConfig, JobFaultProfile, TenantSpec

    per_tenant = max(2, config.max_parallel // config.tenants + 1)
    tenants = tuple(
        TenantSpec(f"tenant{i}", max_concurrency=per_tenant)
        for i in range(config.tenants)
    )
    return FleetConfig(
        tenants=tenants,
        seed=seed,
        quantum=config.quantum,
        max_parallel=config.max_parallel,
        horizon=config.horizon,
        stall_intervals=4,
        admission_limit=max(64, config.transfers),
        per_tenant_queue=max(32, config.transfers),
        faults=JobFaultProfile(
            stalls=config.stalls,
            corruption=config.corruption,
            crashes=config.crashes,
            stall_probability=0.6,
            corruption_probability=0.5,
            max_crashes=1,
        ),
    )


def _fleet_requests(config: FleetSoakConfig, case: int) -> list:
    """The case's request list: equal workloads, round-robin tenants."""
    from repro.fleet import Priority, TransferRequest

    return [
        TransferRequest(
            tenant=f"tenant{i % config.tenants}",
            gigabytes=config.gigabytes,
            priority=Priority.BATCH,
            name=f"case{case:03d}-r{i:03d}",
        )
        for i in range(config.transfers)
    ]


def _fair_goodput_ratio(report: dict) -> float:
    """max/min verified-goodput over tenants that completed work."""
    rates = [
        stats["goodput_bytes_per_s"]
        for stats in report["tenants"].values()
        if stats["completed"] > 0
    ]
    if len(rates) < 2 or min(rates) <= 0:
        return float("inf") if rates else 0.0
    return max(rates) / min(rates)


def _run_fleet_case(index: int, config: FleetSoakConfig, out_dir: str | None) -> dict:
    """One seeded fleet case; returns a JSON-able case record."""
    from repro.fleet import FleetScheduler

    seed = derive_seed(config.root_seed, index)
    case_dir = (
        Path(out_dir) / f"fleet{index:03d}"
        if out_dir
        else Path(tempfile.mkdtemp(prefix=f"fleet-case{index:03d}-"))
    )
    case_dir.mkdir(parents=True, exist_ok=True)

    report = FleetScheduler(
        _fleet_case_config(config, seed),
        _fleet_requests(config, index),
        case_dir / "run0",
    ).run()

    deterministic = True
    if config.determinism_check:
        replay = FleetScheduler(
            _fleet_case_config(config, seed),
            _fleet_requests(config, index),
            case_dir / "run1",
        ).run()
        deterministic = replay["fingerprint"] == report["fingerprint"]

    ratio = _fair_goodput_ratio(report)
    invariants = dict(report["invariants"])
    invariants["fair_goodput"] = bool(ratio <= config.fairness_bound)
    invariants["deterministic"] = deterministic
    record = {
        "case": index,
        "seed": seed,
        "dir": str(case_dir),
        "passed": all(invariants.values()),
        "invariants": invariants,
        "admitted": report["admission"]["admitted"],
        "rejected": report["admission"]["rejected"],
        "completed": sum(1 for j in report["jobs"] if j["state"] == "completed"),
        "failed": sum(1 for j in report["jobs"] if j["state"] == "failed"),
        "incidents": sum(len(j["incidents"]) for j in report["jobs"]),
        "crashes": sum(j["crashes"] for j in report["jobs"]),
        "breakers_opened": sum(j["breaker"]["times_opened"] for j in report["jobs"]),
        "unrecovered_jobs": report["unrecovered_jobs"],
        "fair_goodput_ratio": round(ratio, 3),
        "duration_s": report["duration_s"],
        "rounds": report["rounds"],
        "fingerprint": report["fingerprint"],
    }
    dump_json(report, case_dir / "fleet_report.json")
    dump_json(record, case_dir / "case.json")
    return record


def run_fleet_soak(
    config: FleetSoakConfig | None = None, *, out_dir: str | Path | None = None
) -> dict:
    """Run the fleet soak; returns (and optionally writes) the report.

    Case seeds are ``derive_seed(root_seed, case_index)``, each case is
    internally serial, and cases fan out over
    :class:`~repro.parallel.pool.ParallelMap` — so parallel results are
    bit-identical to serial ones, exactly like :func:`run_soak`.
    """
    config = config or FleetSoakConfig()
    out = str(out_dir) if out_dir is not None else None
    pool = ParallelMap(
        lambda index: _run_fleet_case(index, config, out),
        workers=max(1, config.workers),
    )
    cases = pool.map_values(list(range(config.cases)))

    failures = [c["case"] for c in cases if not c["passed"]]
    report = {
        "config": {
            "cases": config.cases,
            "root_seed": config.root_seed,
            "tenants": config.tenants,
            "transfers": config.transfers,
            "gigabytes": config.gigabytes,
            "quantum": config.quantum,
            "max_parallel": config.max_parallel,
            "stalls": config.stalls,
            "corruption": config.corruption,
            "crashes": config.crashes,
            "fairness_bound": config.fairness_bound,
            "determinism_check": config.determinism_check,
            "workers": config.workers,
        },
        "cases": cases,
        "all_passed": not failures,
        "failed_cases": failures,
        "total_incidents": sum(c["incidents"] for c in cases),
        "total_crashes": sum(c["crashes"] for c in cases),
        "total_breakers_opened": sum(c["breakers_opened"] for c in cases),
    }
    if out_dir is not None:
        path = Path(out_dir) / "fleet_soak_report.json"
        dump_json(report, path)
        report["report_path"] = str(path)
    _record_soak_report("fleet_soak", report, config.root_seed)
    return report


def render_fleet_soak_report(report: dict) -> str:
    """Human-readable fleet-soak summary for the CLI."""
    from repro.utils.tables import render_table

    rows = [
        [
            c["case"],
            "PASS" if c["passed"] else "FAIL",
            f"{c['completed']}/{c['admitted']}",
            c["incidents"],
            c["crashes"],
            c["breakers_opened"],
            f"{c['fair_goodput_ratio']:.2f}",
            "".join(
                flag if passed else flag.upper()
                for flag, passed in zip("lrscbfd", c["invariants"].values())
            ),
        ]
        for c in report["cases"]
    ]
    table = render_table(
        ["case", "result", "done", "incidents", "crashes", "opened", "fair", "inv"],
        rows,
        title=(
            f"fleet soak — {len(report['cases'])} case(s) × "
            f"{report['config']['transfers']} transfers / "
            f"{report['config']['tenants']} tenants, "
            f"root seed {report['config']['root_seed']}"
        ),
    )
    verdict = (
        "ALL INVARIANTS HELD"
        if report["all_passed"]
        else f"FAILED cases: {report['failed_cases']}"
    )
    return (
        f"{table}\n"
        "inv flags: l=no_data_loss r=all_recovered s=no_starvation "
        "c=capacity_respected b=breaker_transitions_legal f=fair_goodput "
        "d=deterministic (uppercase = violated)\n"
        f"{verdict}\n"
    )


def render_soak_report(report: dict) -> str:
    """Human-readable soak summary for the CLI."""
    from repro.utils.tables import render_table

    rows = [
        [
            c["case"],
            "PASS" if c["passed"] else "FAIL",
            c["crashes"],
            c["resume_verified_chunks"],
            len(c["resent_chunks"]),
            c["repair_rounds"],
            "".join(
                flag if passed else flag.upper()
                for flag, passed in zip("vdrc", c["invariants"].values())
            ),
        ]
        for c in report["cases"]
    ]
    table = render_table(
        ["case", "result", "crashes", "resumed-ok", "resent", "repairs", "inv"],
        rows,
        title=(
            f"chaos soak — {len(report['cases'])} case(s), "
            f"root seed {report['config']['root_seed']}"
        ),
    )
    verdict = (
        "ALL INVARIANTS HELD"
        if report["all_passed"]
        else f"FAILED cases: {report['failed_cases']}"
    )
    return (
        f"{table}\n"
        "inv flags: v=all_verified d=no_double_count r=replay_idempotent "
        "c=conservation (uppercase = violated)\n"
        f"{verdict}\n"
    )

