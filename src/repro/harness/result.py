"""Experiment result container shared by all harness experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.utils.config import dump_json
from repro.utils.timeseries import TimeSeries


@dataclass
class ExperimentResult:
    """Everything one experiment produced.

    ``summary`` holds the headline numbers (what EXPERIMENTS.md records),
    ``tables`` pre-rendered text tables, ``series`` the raw curves for
    anyone who wants to re-plot a figure.
    """

    name: str
    summary: dict = field(default_factory=dict)
    tables: list[str] = field(default_factory=list)
    series: dict[str, TimeSeries] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable report block."""
        parts = [f"=== {self.name} ==="]
        if self.summary:
            width = max(len(k) for k in self.summary)
            parts.extend(
                f"{k.ljust(width)} : {v}" for k, v in self.summary.items()
            )
        parts.extend(self.tables)
        parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)

    def save(self, directory: str | Path) -> Path:
        """Dump summary + series to ``<directory>/<name>.json``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.name}.json"
        dump_json(
            {
                "name": self.name,
                "summary": self.summary,
                "notes": self.notes,
                "series": {k: s.to_dict() for k, s in self.series.items()},
            },
            path,
        )
        return path
