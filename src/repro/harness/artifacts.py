"""Train-once artifact cache for AutoMDT checkpoints.

Offline training is the expensive step of the pipeline (minutes at the
scaled-down budget, ~45 wall-minutes at paper scale).  The evaluation
harness therefore trains each (testbed, budget, seed) combination once and
caches the checkpoint + exploration profile on disk; benchmark runs and
examples reload it exactly as a production deployment would load the best
checkpoint (§IV-F).

Cache location: ``$REPRO_ARTIFACTS`` if set, else ``.artifacts/`` under the
repository root (falling back to the current directory).
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Callable
from pathlib import Path

from repro.core.agent import AutoMDT
from repro.core.ppo import PPOConfig
from repro.core.training import TrainingConfig
from repro.emulator.testbed import Testbed, TestbedConfig
from repro.utils.config import to_jsonable


def artifacts_dir() -> Path:
    """Resolve the artifact cache directory."""
    env = os.environ.get("REPRO_ARTIFACTS")
    if env:
        return Path(env)
    # src/repro/harness/artifacts.py -> repo root is three parents above
    # the package directory when installed from a source checkout.
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / "pyproject.toml").exists():
        return candidate / ".artifacts"
    return Path.cwd() / ".artifacts"


def _cache_key(
    label: str,
    ppo: PPOConfig,
    training: TrainingConfig,
    *,
    k: float,
    seed: int,
    exploration_seconds: float,
) -> str:
    blob = json.dumps(
        {
            "label": label,
            "ppo": to_jsonable(ppo),
            "training": to_jsonable(training),
            "k": k,
            "seed": seed,
            "exploration": exploration_seconds,
            "version": 1,
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def trained_automdt(
    testbed_config: TestbedConfig,
    *,
    ppo_config: PPOConfig | None = None,
    training_config: TrainingConfig | None = None,
    k: float = 1.02,
    seed: int = 0,
    exploration_seconds: float = 120.0,
    force_retrain: bool = False,
    cache_dir: str | Path | None = None,
    on_train: Callable[[AutoMDT], None] | None = None,
) -> AutoMDT:
    """Return an AutoMDT pipeline trained for ``testbed_config``.

    Runs explore→train on first use and caches the checkpoint; later calls
    reload it.  ``on_train`` is invoked (with the pipeline) only when an
    actual training run happened — used by benches that want to record
    training statistics.
    """
    ppo_config = ppo_config or PPOConfig()
    training_config = training_config or TrainingConfig()
    cache = Path(cache_dir) if cache_dir is not None else artifacts_dir()
    key = _cache_key(
        testbed_config.label or repr(testbed_config),
        ppo_config,
        training_config,
        k=k,
        seed=seed,
        exploration_seconds=exploration_seconds,
    )
    base = cache / f"automdt-{key}"

    pipeline = AutoMDT(
        k=k, ppo_config=ppo_config, training_config=training_config, seed=seed
    )
    if not force_retrain and base.with_suffix(".npz").exists():
        pipeline.load(base)
        return pipeline

    exploration_testbed = Testbed(testbed_config, rng=seed)
    pipeline.explore(exploration_testbed, duration=exploration_seconds)
    pipeline.train_offline()
    cache.mkdir(parents=True, exist_ok=True)
    _publish(pipeline, base)
    if on_train is not None:
        on_train(pipeline)
    return pipeline


def _publish(pipeline: AutoMDT, base: Path) -> None:
    """Atomically install a checkpoint under its cache key.

    Parallel sweep workers may train the same (testbed, budget, seed)
    combination concurrently; training is deterministic so their outputs
    are identical, but a reader must never observe a half-written file.
    Each worker saves under a private prefix and renames into place, with
    the ``.npz`` — the existence check's gate — renamed last.
    """
    tmp = base.with_name(f"{base.name}.tmp{os.getpid()}")
    pipeline.save(tmp)
    for suffix in (".profile.json", ".json", ".npz"):
        os.replace(tmp.with_suffix(suffix), base.with_suffix(suffix))
