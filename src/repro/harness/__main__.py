"""``python -m repro.harness`` entry point."""

from repro.harness.cli import main

raise SystemExit(main())
