"""The paper's experiments, one function per table/figure.

Every function accepts a ``fast`` flag: ``fast=True`` (default) uses the
scaled-down budgets documented in EXPERIMENTS.md so the whole suite runs on
one CPU core in minutes; ``fast=False`` uses paper-scale budgets.
Randomness is fully seeded; repeated calls with the same arguments return
identical numbers (training results additionally go through the artifact
cache, see :mod:`repro.harness.artifacts`).
"""

from __future__ import annotations

import numpy as np

from repro.baselines import GlobusController, MarlinController, StaticController
from repro.core.agent import AutoMDT
from repro.core.discrete import DiscreteActionAdapter, DiscretePPOAgent
from repro.core.env import SimulatorEnv, TestbedEnv
from repro.core.finetune import finetune_online
from repro.core.ppo import PPOAgent, PPOConfig
from repro.core.training import TrainingConfig, train
from repro.core.utility import UtilityFunction
from repro.emulator.presets import (
    fabric_ncsa_tacc,
    fig5_network_bottleneck,
    fig5_read_bottleneck,
    fig5_write_bottleneck,
)
from repro.emulator.testbed import Testbed, TestbedConfig
from repro.harness.artifacts import trained_automdt
from repro.harness.result import ExperimentResult
from repro.parallel.seeds import spawn_key
from repro.transfer.engine import EngineConfig, ModularTransferEngine, TransferResult
from repro.transfer.files import Dataset
from repro.utils.tables import render_table
from repro.utils.timeseries import TimeSeries
from repro.workloads import fig3_dataset, large_dataset, mixed_dataset

FAST_TRAINING = TrainingConfig(max_episodes=4000, stagnation_episodes=800)
PAPER_TRAINING = TrainingConfig(max_episodes=30000, stagnation_episodes=1000)


def _training_config(fast: bool) -> TrainingConfig:
    return FAST_TRAINING if fast else PAPER_TRAINING


#: Decision interval for gradient-estimating online optimizers (Marlin,
#: joint GD).  §IV: "we have to wait at least 3 to 5 seconds to get stable
#: metrics for that configuration" — finite-difference gradients on 1 s
#: probes are dominated by noise.  AutoMDT's policy does not estimate
#: gradients online, so it acts on 1 s probes.
GRADIENT_PROBE_INTERVAL = 3.0


def _run_transfer(
    testbed_config: TestbedConfig,
    dataset: Dataset,
    controller,
    *,
    seed: int,
    probe_noise: float = 0.02,
    max_seconds: float = 3600.0,
    utility: UtilityFunction | None = None,
    decision_interval: float = 1.0,
) -> TransferResult:
    testbed = Testbed(testbed_config, rng=seed)
    engine = ModularTransferEngine(
        testbed,
        dataset,
        controller,
        EngineConfig(
            max_seconds=max_seconds,
            probe_noise=probe_noise,
            seed=seed,
            decision_interval=decision_interval,
        ),
        utility_fn=utility or UtilityFunction(),
    )
    return engine.run()


# --------------------------------------------------------------------- Fig. 1
def experiment_figure1(*, fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Fig. 1: read/network/write throughputs are coupled through the buffers.

    Drives the read-bottleneck testbed through three regimes — balanced,
    read-over-provisioned (sender buffer fills, read throttles itself), and
    write-starved (receiver drains) — and records the per-stage throughput
    and buffer series that the figure sketches.
    """
    config = fig5_read_bottleneck()
    testbed = Testbed(config, rng=seed)
    phases = [((13, 7, 5), 20), ((28, 4, 5), 40), ((13, 7, 2), 30)]
    series = {
        name: TimeSeries(name)
        for name in ("t_read", "t_network", "t_write", "sender_fill", "receiver_fill")
    }
    t = 0.0
    for threads, duration in phases:
        for _ in range(duration):
            flows = testbed.advance(threads)
            t += 1.0
            series["t_read"].append(t, flows.throughput_read)
            series["t_network"].append(t, flows.throughput_network)
            series["t_write"].append(t, flows.throughput_write)
            series["sender_fill"].append(t, testbed.sender_buffer.fill_fraction)
            series["receiver_fill"].append(t, testbed.receiver_buffer.fill_fraction)

    # During the over-read phase the buffer fills and read falls back to the
    # drain rate — the central coupling the figure illustrates.
    overread_read_early = series["t_read"].mean(t_start=21, t_end=30)
    overread_read_late = series["t_read"].mean(t_start=50, t_end=60)
    summary = {
        "balanced_read_mbps": round(series["t_read"].mean(t_start=5, t_end=20), 1),
        "overread_initial_mbps": round(overread_read_early, 1),
        "overread_after_buffer_full_mbps": round(overread_read_late, 1),
        "sender_fill_at_60s": round(series["sender_fill"].values[59], 3),
        "coupling_demonstrated": bool(overread_read_late < overread_read_early * 0.8),
    }
    return ExperimentResult(
        name="figure1",
        summary=summary,
        series=series,
        notes=[
            "Over-provisioned read runs at device speed only until the sender "
            "buffer fills, then collapses to the network drain rate (Fig. 1 coupling)."
        ],
    )


# --------------------------------------------------------------------- Fig. 3
def experiment_figure3(*, fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Fig. 3: AutoMDT vs Marlin on NCSA→TACC, 100 × 1 GB.

    Paper: Marlin 74 s vs AutoMDT 44 s (~1.7x); AutoMDT reaches network
    concurrency 20 in ~7 s, Marlin reaches 14 only at ~62 s.
    """
    config = fabric_ncsa_tacc(noise_sigma=0.02)
    dataset = fig3_dataset()
    target_net = config.optimal_threads()[1]

    pipeline = trained_automdt(
        config, training_config=_training_config(fast), seed=seed
    )
    automdt_result = _run_transfer(
        config, dataset, pipeline.controller(), seed=seed, utility=pipeline.utility
    )
    marlin_result = _run_transfer(
        config,
        dataset,
        MarlinController(rng=seed),
        seed=seed,
        decision_interval=GRADIENT_PROBE_INTERVAL,
    )

    auto_reach = automdt_result.metrics.time_to_network_concurrency(target_net)
    marlin_reach = marlin_result.metrics.time_to_network_concurrency(target_net - 6)
    speedup = marlin_result.completion_time / automdt_result.completion_time
    summary = {
        "automdt_completion_s": round(automdt_result.completion_time, 1),
        "marlin_completion_s": round(marlin_result.completion_time, 1),
        "marlin_vs_automdt_ratio": round(speedup, 2),
        "automdt_time_to_net20_s": auto_reach,
        "marlin_time_to_net14_s": marlin_reach,
        "automdt_throughput_mbps": round(automdt_result.effective_throughput, 1),
        "marlin_throughput_mbps": round(marlin_result.effective_throughput, 1),
        "paper_ratio": 74 / 44,
    }
    series = {
        "automdt_net_threads": automdt_result.metrics.threads_network,
        "marlin_net_threads": marlin_result.metrics.threads_network,
        "automdt_write_tput": automdt_result.metrics.throughput_write,
        "marlin_write_tput": marlin_result.metrics.throughput_write,
    }
    table = render_table(
        ["tool", "completion (s)", "avg Mbps", f"reach net≈{target_net} (s)"],
        [
            ["AutoMDT", summary["automdt_completion_s"], summary["automdt_throughput_mbps"],
             auto_reach if auto_reach is not None else "never"],
            ["Marlin", summary["marlin_completion_s"], summary["marlin_throughput_mbps"],
             marlin_reach if marlin_reach is not None else "never"],
        ],
        title="Fig. 3 — NCSA→TACC, 100 x 1 GB",
    )
    return ExperimentResult("figure3", summary=summary, tables=[table], series=series)


# --------------------------------------------------------------------- Fig. 4
def experiment_figure4(*, fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Fig. 4: the discrete action space fails to converge.

    Trains three agents on the same simulator scenario and budget:

    * the continuous Gaussian agent (the paper's choice) — converges;
    * a **joint** categorical over all ``n_max³`` thread triples — the
      naive exponential action space the paper's §IV remark describes;
      this is the variant that fails;
    * a *factorized* categorical (one head per stage) — a smarter discrete
      design; its behaviour is reported as a reproduction finding.
    """
    from repro.core.discrete import JointDiscreteActionAdapter, JointDiscretePPOAgent
    from repro.simulator.config import SimulatorConfig

    # The fig5-read scenario with n_max = 20 keeps the joint space (8,000
    # actions) trainable in minutes on one core while staying exponential
    # relative to the 3 × 20 factorized one.
    sim_config = SimulatorConfig(
        tpt_read=80.0, tpt_network=160.0, tpt_write=200.0,
        bandwidth_read=1000.0, bandwidth_network=1000.0, bandwidth_write=1000.0,
        max_threads=20, label="figure4",
    )
    n_max = sim_config.max_threads

    episodes = 1200 if fast else 30000
    training = TrainingConfig(max_episodes=episodes, stagnation_episodes=episodes)

    cont_env = SimulatorEnv(sim_config, rng=seed)
    cont_agent = PPOAgent(config=PPOConfig(), rng=seed)
    cont = train(cont_agent, cont_env, training)

    joint_env = JointDiscreteActionAdapter(SimulatorEnv(sim_config, rng=seed), n_max)
    joint_agent = JointDiscretePPOAgent(max_threads=n_max, rng=seed)
    joint = train(joint_agent, joint_env, training)

    disc_env = DiscreteActionAdapter(SimulatorEnv(sim_config, rng=seed))
    disc_agent = DiscretePPOAgent(max_threads=n_max, rng=seed)
    disc = train(disc_agent, disc_env, training)

    def curve(result) -> TimeSeries:
        rewards = result.episode_rewards
        window = max(1, len(rewards) // 100)
        smooth = np.convolve(rewards, np.ones(window) / window, mode="valid")
        return TimeSeries("reward", [(float(i), float(v)) for i, v in enumerate(smooth)])

    def rolling_convergence(result, window: int = 100) -> int | None:
        """First episode where the *rolling-mean* reward crosses 90% R_max.

        Single-episode maxima are a noisy max statistic (a lucky random
        initialization can score high once even under a bad policy); the
        figure's notion of convergence is about the sustained level.
        """
        from repro.analysis.convergence import rolling_convergence_episode

        return rolling_convergence_episode(
            result.episode_rewards, 0.9 * result.max_episode_reward, window=window
        )

    summary = {
        "continuous_best_reward": round(cont.best_reward, 2),
        "joint_discrete_best_reward": round(joint.best_reward, 2),
        "factorized_discrete_best_reward": round(disc.best_reward, 2),
        "continuous_rolling_convergence": rolling_convergence(cont),
        "joint_discrete_rolling_convergence": rolling_convergence(joint),
        "factorized_discrete_rolling_convergence": rolling_convergence(disc),
        "continuous_tail_mean": round(float(cont.episode_rewards[-200:].mean()), 2),
        "joint_discrete_tail_mean": round(float(joint.episode_rewards[-200:].mean()), 2),
        "factorized_discrete_tail_mean": round(float(disc.episode_rewards[-200:].mean()), 2),
        "max_episode_reward": cont.max_episode_reward,
    }
    return ExperimentResult(
        "figure4",
        summary=summary,
        series={
            "continuous_reward": curve(cont),
            "joint_discrete_reward": curve(joint),
            "factorized_discrete_reward": curve(disc),
        },
        notes=[
            "Paper §V-A claims 'the discrete action space failed miserably'. "
            "NOT REPRODUCED at tractable scales: with batched, advantage-"
            "normalized PPO updates, both discrete designs (factorized and "
            "even the joint n_max³ space at n_max=20) converge — often "
            "faster than the continuous agent, whose sampled σ keeps "
            "injecting reward noise. The paper's observation is plausibly "
            "an artifact of its one-update-per-episode training regime "
            "and/or a larger joint space; see EXPERIMENTS.md.",
        ],
    )


# --------------------------------------------------------------------- Fig. 5
_FIG5_SCENARIOS = {
    "read": (fig5_read_bottleneck, "§V-B1 col 1: throttles (80,160,200) Mbps"),
    "network": (fig5_network_bottleneck, "§V-B1 col 2: throttles (205,75,195) Mbps"),
    "write": (fig5_write_bottleneck, "§V-B1 col 3: throttles (200,150,70) Mbps"),
}


def experiment_figure5(
    scenario: str = "read", *, fast: bool = True, seed: int = 0, dataset_gb: float = 25.0
) -> ExperimentResult:
    """Fig. 5: bottleneck scenarios — AutoMDT vs Marlin concurrency traces.

    For the requested bottleneck the paper reports AutoMDT reaching the
    optimal stream count within a few seconds while Marlin takes tens of
    seconds and keeps fluctuating, so AutoMDT finishes earlier.
    """
    if scenario not in _FIG5_SCENARIOS:
        raise ValueError(f"scenario must be one of {sorted(_FIG5_SCENARIOS)}")
    factory, description = _FIG5_SCENARIOS[scenario]
    config = factory()
    optimal = config.optimal_threads()
    stage_index = {"read": 0, "network": 1, "write": 2}[scenario]
    target = optimal[stage_index]
    from repro.transfer.files import uniform_dataset

    dataset = uniform_dataset(int(dataset_gb), 1e9, name=f"fig5-{scenario}")

    pipeline = trained_automdt(config, training_config=_training_config(fast), seed=seed)
    auto = _run_transfer(config, dataset, pipeline.controller(), seed=seed,
                         utility=pipeline.utility)
    marlin = _run_transfer(
        config, dataset, MarlinController(rng=seed), seed=seed,
        decision_interval=GRADIENT_PROBE_INTERVAL,
    )

    stage_series = ("threads_read", "threads_network", "threads_write")[stage_index]
    auto_reach = getattr(auto.metrics, stage_series).time_to_reach(target, sustain=3)
    marlin_reach = getattr(marlin.metrics, stage_series).time_to_reach(target - 1, sustain=3)

    summary = {
        "scenario": scenario,
        "optimal_threads": optimal,
        "automdt_completion_s": round(auto.completion_time, 1),
        "marlin_completion_s": round(marlin.completion_time, 1),
        "automdt_finishes_earlier_s": round(marlin.completion_time - auto.completion_time, 1),
        f"automdt_reach_{scenario}{target}_s": auto_reach,
        f"marlin_reach_{scenario}{target - 1}_s": marlin_reach,
        "automdt_stability_std": round(auto.metrics.stability(stage_series, t_start=10), 2),
        "marlin_stability_std": round(marlin.metrics.stability(stage_series, t_start=10), 2),
        "automdt_mean_total_threads": round(auto.metrics.concurrency_cost(), 1),
        "marlin_mean_total_threads": round(marlin.metrics.concurrency_cost(), 1),
    }
    series = {
        "automdt_bottleneck_threads": getattr(auto.metrics, stage_series),
        "marlin_bottleneck_threads": getattr(marlin.metrics, stage_series),
        "automdt_write_tput": auto.metrics.throughput_write,
        "marlin_write_tput": marlin.metrics.throughput_write,
    }
    table = render_table(
        ["tool", "completion (s)", f"reach {scenario}*{target} (s)", "stability σ", "mean Σthreads"],
        [
            ["AutoMDT", summary["automdt_completion_s"],
             auto_reach if auto_reach is not None else "never",
             summary["automdt_stability_std"], summary["automdt_mean_total_threads"]],
            ["Marlin", summary["marlin_completion_s"],
             marlin_reach if marlin_reach is not None else "never",
             summary["marlin_stability_std"], summary["marlin_mean_total_threads"]],
        ],
        title=f"Fig. 5 ({scenario} bottleneck) — {description}",
    )
    return ExperimentResult(f"figure5_{scenario}", summary=summary, tables=[table], series=series)


# -------------------------------------------------------------------- Table I
def experiment_table1(
    *, fast: bool = True, seed: int = 0, dataset_scale: float | None = None
) -> ExperimentResult:
    """Table I: end-to-end transfer speed, Globus vs Marlin vs AutoMDT.

    Paper (Mbps): Large 3,652.2 / 18,066.8 / 23,988.0; Mixed 2,325.9 /
    13,721.5 / 16,915.8 — AutoMDT 6.57x/1.33x (Large) and 7.28x/1.23x
    (Mixed) over Globus/Marlin.
    """
    scale = dataset_scale if dataset_scale is not None else (0.1 if fast else 1.0)
    config = fabric_ncsa_tacc(noise_sigma=0.02)
    datasets = {
        "A (Large)": large_dataset(total_bytes=1e12 * scale),
        "B (Mixed)": mixed_dataset(total_bytes=1e12 * scale, rng=seed),
    }
    pipeline = trained_automdt(config, training_config=_training_config(fast), seed=seed)

    rows = []
    measured: dict[str, dict[str, float]] = {}
    for ds_name, dataset in datasets.items():
        speeds = {}
        for tool, controller, interval in (
            ("Globus", GlobusController(), 1.0),
            ("Marlin", MarlinController(rng=seed), GRADIENT_PROBE_INTERVAL),
            ("AutoMDT", pipeline.controller(), 1.0),
        ):
            result = _run_transfer(
                config, dataset, controller, seed=seed, max_seconds=36000.0,
                utility=pipeline.utility, decision_interval=interval,
            )
            speeds[tool] = result.effective_throughput
        measured[ds_name] = speeds
        rows.append(
            [ds_name, f"{dataset.total_bytes / 1e12:.2f} TB",
             round(speeds["Globus"], 1), round(speeds["Marlin"], 1),
             round(speeds["AutoMDT"], 1)]
        )

    large, mixed = measured["A (Large)"], measured["B (Mixed)"]
    summary = {
        "large_speed_mbps": {k: round(v, 1) for k, v in large.items()},
        "mixed_speed_mbps": {k: round(v, 1) for k, v in mixed.items()},
        "large_automdt_vs_globus": round(large["AutoMDT"] / large["Globus"], 2),
        "large_automdt_vs_marlin": round(large["AutoMDT"] / large["Marlin"], 2),
        "mixed_automdt_vs_globus": round(mixed["AutoMDT"] / mixed["Globus"], 2),
        "mixed_automdt_vs_marlin": round(mixed["AutoMDT"] / mixed["Marlin"], 2),
        "paper_large_ratios": (6.57, 1.33),
        "paper_mixed_ratios": (7.28, 1.23),
        "dataset_scale": scale,
    }
    table = render_table(
        ["Dataset", "Total Size", "Globus", "Marlin", "AutoMDT"],
        rows,
        title="Table I — end-to-end transfer speed (Mbps)",
    )
    return ExperimentResult("table1", summary=summary, tables=[table])


# ------------------------------------------------------------------- Training
def experiment_training(*, fast: bool = True, seed: int = 0) -> ExperimentResult:
    """§V-A: offline training cost vs hypothetical online training.

    The paper: ~45 min offline (simulator) vs ~7 days online; ~20,150
    episodes to convergence; online training would burn ≈5.6 PB on a
    100 Gbps link.
    """
    config = fabric_ncsa_tacc()
    stats: dict = {}

    def capture(pipeline: AutoMDT) -> None:
        stats["result"] = pipeline.training_result

    pipeline = trained_automdt(
        config,
        training_config=_training_config(fast),
        seed=seed,
        force_retrain=True,
        on_train=capture,
    )
    result = stats["result"]
    online_seconds = result.episodes_run * result.steps_per_episode * 3.0
    bottleneck_mbps = pipeline.profile.bottleneck
    online_bytes = online_seconds * bottleneck_mbps * 1e6 / 8.0
    summary = {
        "episodes_run": result.episodes_run,
        "convergence_episode": result.convergence_episode,
        "converged": result.converged,
        "best_reward": round(result.best_reward, 2),
        "max_episode_reward": result.max_episode_reward,
        "offline_wall_seconds": round(result.wall_seconds, 1),
        "online_equivalent_seconds": round(online_seconds),
        "online_equivalent_days": round(online_seconds / 86400.0, 2),
        "offline_speedup_x": round(online_seconds / max(result.wall_seconds, 1e-9)),
        "online_wasted_bytes_tb": round(online_bytes / 1e12, 2),
    }
    return ExperimentResult(
        "training",
        summary=summary,
        notes=[
            "Offline simulator training replaces days of online exploration; "
            "the online estimate uses the paper's 3 s per iteration.",
        ],
    )


# ------------------------------------------------------------------ Fine-tune
def experiment_finetune(*, fast: bool = True, seed: int = 0) -> ExperimentResult:
    """§V-C: online fine-tuning gains ≈1% concurrency at equal speed."""
    config = fig5_read_bottleneck()
    pipeline = trained_automdt(config, training_config=_training_config(fast), seed=seed)
    env = TestbedEnv(
        Testbed(config, rng=seed + 1),
        utility=pipeline.utility,
        rng=seed + 1,
    )
    episodes = 120 if fast else 120  # the paper's budget
    comparison = finetune_online(pipeline.agent, env, episodes=episodes)
    summary = {
        "base_mean_reward": round(comparison.base_mean_reward, 3),
        "tuned_mean_reward": round(comparison.tuned_mean_reward, 3),
        "reward_change_pct": round(100 * comparison.reward_change, 2),
        "base_mean_concurrency": round(comparison.base_mean_concurrency, 1),
        "tuned_mean_concurrency": round(comparison.tuned_mean_concurrency, 1),
        "concurrency_reduction_pct": round(100 * comparison.concurrency_reduction, 2),
        "paper_concurrency_reduction_pct": 1.0,
    }
    return ExperimentResult(
        "finetune",
        summary=summary,
        notes=["Paper: fine-tuned model used ~1% less concurrency at the same speed."],
    )


# ------------------------------------------------------------- parallelism
def experiment_parallelism(*, fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Extension: intra-file parallelism vs the straggler tail.

    Related work ([14], [45]) tunes per-file TCP parallelism alongside
    concurrency; the paper's modular design tunes stream *counts* only.
    This experiment shows why parallelism exists: with few large files the
    last file drains at single-stream speed, and splitting files into ``p``
    segments recovers the lost bandwidth — until per-segment overheads bite
    on small files.
    """
    from repro.baselines import StaticController
    from repro.transfer.filelevel import FileLevelConfig, FileLevelEngine
    from repro.transfer.files import uniform_dataset

    config = fig5_read_bottleneck()
    optimal = config.optimal_threads()
    straggler_set = uniform_dataset(14, 2e9, name="stragglers")  # 14 files, 13 readers
    small_set = uniform_dataset(2800, 1e7, name="small")  # same bytes, 10 MB files

    sweep: dict[int, float] = {}
    rows = []
    for p in (1, 2, 4, 8):
        result = FileLevelEngine(
            config, straggler_set, StaticController(optimal), FileLevelConfig(parallelism=p)
        ).run()
        sweep[p] = result.effective_throughput
        rows.append(["14 x 2 GB", p, round(result.effective_throughput, 1),
                     round(result.completion_time, 1)])
    small_p1 = FileLevelEngine(
        config, small_set, StaticController(optimal), FileLevelConfig(parallelism=1)
    ).run()
    small_p8 = FileLevelEngine(
        config, small_set, StaticController(optimal), FileLevelConfig(parallelism=8)
    ).run()
    rows.append(["2800 x 10 MB", 1, round(small_p1.effective_throughput, 1),
                 round(small_p1.completion_time, 1)])
    rows.append(["2800 x 10 MB", 8, round(small_p8.effective_throughput, 1),
                 round(small_p8.completion_time, 1)])

    summary = {
        "straggler_mbps_by_p": {str(p): round(v, 1) for p, v in sweep.items()},
        "p8_vs_p1_speedup": round(sweep[8] / sweep[1], 2),
        "small_files_p1_mbps": round(small_p1.effective_throughput, 1),
        "small_files_p8_mbps": round(small_p8.effective_throughput, 1),
        "small_files_p8_helps": bool(
            small_p8.effective_throughput > small_p1.effective_throughput * 1.02
        ),
    }
    table = render_table(
        ["dataset", "parallelism p", "Mbps", "completion (s)"],
        rows,
        title="intra-file parallelism vs the straggler tail",
    )
    return ExperimentResult(
        "parallelism",
        summary=summary,
        tables=[table],
        notes=["Splitting files across streams recovers straggler bandwidth; "
               "small files gain little (per-segment overhead dominates)."],
    )


# -------------------------------------------------------------- online DRL
def experiment_online_drl(*, fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Offline-trained AutoMDT vs the online-learning DRL predecessor [17].

    The paper's headline "up to 8× faster convergence" is against online
    optimizers: a single-parameter DRL agent that must *explore during the
    transfer* (Hasibul et al. needed ~28 h of online training per link).
    Here both run the same transfer; we measure how long each needs to
    first sustain ≥90% of the bottleneck bandwidth.
    """
    from repro.baselines import OnlineDRLController
    from repro.transfer.files import uniform_dataset

    config = fig5_read_bottleneck()
    bottleneck = config.bottleneck_bandwidth
    dataset = uniform_dataset(40 if fast else 200, 1e9, name="online-drl")

    pipeline = trained_automdt(config, training_config=_training_config(fast), seed=seed)
    auto = _run_transfer(
        config, dataset, pipeline.controller(), seed=seed, utility=pipeline.utility
    )
    online = _run_transfer(
        config,
        dataset,
        OnlineDRLController(
            max_threads=config.max_threads,
            throughput_scale=bottleneck,
            rng=seed,
        ),
        seed=seed,
        max_seconds=36000.0,
    )

    target = 0.9 * bottleneck
    auto_reach = auto.metrics.throughput_write.time_to_reach(target, sustain=5)
    online_reach = online.metrics.throughput_write.time_to_reach(target, sustain=5)
    speedup = (
        round(online_reach / auto_reach, 1)
        if auto_reach is not None and online_reach is not None
        else None
    )
    summary = {
        "bottleneck_mbps": bottleneck,
        "automdt_time_to_90pct_s": auto_reach,
        "online_drl_time_to_90pct_s": online_reach,
        "utilization_speedup_x": speedup,
        "automdt_completion_s": round(auto.completion_time, 1),
        "online_drl_completion_s": round(online.completion_time, 1),
        "paper_claim": "up to 8x faster convergence",
    }
    table = render_table(
        ["tool", "reach 90% util (s)", "completion (s)"],
        [
            ["AutoMDT (offline-trained)",
             auto_reach if auto_reach is not None else "never",
             summary["automdt_completion_s"]],
            ["online single-param DRL [17]",
             online_reach if online_reach is not None else "never",
             summary["online_drl_completion_s"]],
        ],
        title="offline vs online DRL — convergence during a live transfer",
    )
    return ExperimentResult("online_drl", summary=summary, tables=[table])


# ------------------------------------------------------------- file latency
def experiment_filelevel(*, fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Beyond the paper: per-file latency on the chunk-granular data plane.

    The paper reports only aggregate Mbps; the file-level engine exposes the
    per-file completion distribution, making the Mixed-dataset penalty and
    the straggler tail visible directly.  Compares the modular optimum
    against Globus's static monolithic configuration on both workloads.
    """
    from repro.baselines import StaticController
    from repro.transfer.filelevel import FileLevelEngine

    config = fabric_ncsa_tacc()
    optimal = config.optimal_threads()
    scale = 0.05 if fast else 1.0
    datasets = {
        "large": large_dataset(total_bytes=1e12 * scale),
        "mixed": mixed_dataset(total_bytes=1e12 * scale, rng=seed),
    }
    rows = []
    summary: dict = {"optimal_threads": optimal, "dataset_scale": scale}
    for ds_name, dataset in datasets.items():
        for tool, controller in (
            ("modular-optimal", StaticController(optimal)),
            ("globus", GlobusController()),
        ):
            result = FileLevelEngine(config, dataset, controller).run()
            q = result.file_latency_quantiles((0.5, 0.9, 0.99))
            rows.append(
                [ds_name, tool, round(result.effective_throughput, 1),
                 round(q[0.5], 1), round(q[0.9], 1), round(q[0.99], 1)]
            )
            summary[f"{ds_name}_{tool.replace('-', '_')}_mbps"] = round(
                result.effective_throughput, 1
            )
            summary[f"{ds_name}_{tool.replace('-', '_')}_p99_s"] = round(q[0.99], 1)
    table = render_table(
        ["dataset", "tool", "Mbps", "p50 (s)", "p90 (s)", "p99 (s)"],
        rows,
        title="file-level engine — per-file completion latency",
    )
    return ExperimentResult(
        "filelevel",
        summary=summary,
        tables=[table],
        notes=[
            "Per-file latency from the chunk-granular engine; the fluid "
            "testbed cannot resolve these distributions."
        ],
    )


# ------------------------------------------------------------------- faults
def _fault_schedule(fault: str, seed: int, horizon: float):
    """Fresh schedule per run — schedules carry restart state."""
    from repro.emulator.faults import (
        FaultSchedule,
        LinkFlap,
        ProbeDropout,
        ReceiverRestart,
        ReportLoss,
        StorageStall,
    )

    builders = {
        "link_flap": lambda: FaultSchedule([LinkFlap(start=10.0, duration=8.0)]),
        "storage_stall": lambda: FaultSchedule(
            [StorageStall(start=10.0, duration=20.0, stage="read")]
        ),
        "receiver_restart": lambda: FaultSchedule([ReceiverRestart(at=15.0)]),
        "probe_dropout": lambda: FaultSchedule([ProbeDropout(start=8.0, duration=15.0)]),
        "report_loss": lambda: FaultSchedule([ReportLoss(start=5.0, duration=30.0)]),
        "random": lambda: FaultSchedule.random(seed, horizon=horizon * 0.5),
    }
    if fault not in builders:
        raise ValueError(f"fault must be one of {sorted(builders)}")
    return builders[fault]()


def experiment_faults(fault: str = "link_flap", *, fast: bool = True, seed: int = 0):
    """Robustness extension: supervised vs unsupervised engines under faults.

    For each fault class (see :mod:`repro.emulator.faults`) the same seeded
    schedule is injected into two identical testbeds: one driven by the bare
    engine, one by :class:`~repro.transfer.supervisor.TransferSupervisor`
    (for ``probe_dropout`` the supervised side additionally wraps its
    controller in :class:`~repro.transfer.guarded.GuardedController`).
    Connection-killing faults (link flap, receiver restart) hang the bare
    engine until ``max_seconds``; the supervisor detects the stall, backs
    off, and resumes from checkpoint without re-transferring completed
    bytes.
    """
    from repro.transfer.guarded import GuardedController
    from repro.transfer.files import uniform_dataset
    from repro.transfer.supervisor import SupervisorConfig, TransferSupervisor

    config = fig5_read_bottleneck()
    optimal = config.optimal_threads()
    dataset = uniform_dataset(5 if fast else 25, 1e9, name=f"faults-{fault}")
    max_seconds = 240.0 if fast else 900.0

    def make_controller():
        if fault == "probe_dropout":
            # An (untrained) policy controller: the realistic victim of NaN
            # probe readings; training is irrelevant to the robustness claim.
            from repro.core.networks import PolicyNetwork
            from repro.core.production import AutoMDTController

            return AutoMDTController(
                PolicyNetwork(8, 3, hidden_dim=32, num_blocks=1, rng=seed),
                max_threads=config.max_threads,
                throughput_scale=config.bottleneck_bandwidth,
                deterministic=True,
                rng=seed,
            )
        return StaticController(optimal)

    def make_engine(controller):
        testbed = Testbed(config, rng=seed, faults=_fault_schedule(fault, seed, max_seconds))
        return ModularTransferEngine(
            testbed,
            dataset,
            controller,
            EngineConfig(max_seconds=max_seconds, probe_noise=0.02, seed=seed),
        )

    unsupervised = make_engine(make_controller()).run()

    supervised_controller = make_controller()
    guard = None
    if fault == "probe_dropout":
        guard = GuardedController(supervised_controller, max_threads=config.max_threads)
        supervised_controller = guard
    supervised = TransferSupervisor(
        make_engine(supervised_controller), SupervisorConfig(seed=seed)
    ).run()

    recoveries = supervised.metrics.recoveries
    summary = {
        "fault": fault,
        "unsupervised_completed": unsupervised.completed,
        "unsupervised_timed_out": unsupervised.timed_out,
        "unsupervised_time_s": round(unsupervised.completion_time, 1),
        "unsupervised_bytes_gb": round(unsupervised.bytes_transferred / 1e9, 3),
        "supervised_completed": supervised.completed,
        "supervised_time_s": round(supervised.completion_time, 1),
        "supervised_attempts": len(supervised.attempts),
        "supervised_retries": supervised.retries_used,
        "incidents_detected": len(supervised.metrics.fault_events),
        "incidents_recovered": len(recoveries),
        "mean_time_to_detect_s": round(
            float(np.mean([e.time_to_detect for e in supervised.metrics.fault_events])), 2
        )
        if supervised.metrics.fault_events
        else None,
        "mean_time_to_recover_s": round(
            float(np.mean([r.time_to_recover for r in recoveries])), 2
        )
        if recoveries
        else None,
        "goodput_lost_mb": round(sum(r.goodput_lost_bytes for r in recoveries) / 1e6, 1),
        "guard_degraded_intervals": guard.degraded_intervals if guard is not None else 0,
        "supervised_budget_exhausted": supervised.budget_exhausted,
    }
    table = render_table(
        ["engine", "completed", "time (s)", "bytes (GB)", "retries"],
        [
            ["unsupervised", unsupervised.completed, summary["unsupervised_time_s"],
             summary["unsupervised_bytes_gb"], 0],
            ["supervised", supervised.completed, summary["supervised_time_s"],
             round(supervised.total_bytes / 1e9, 3) if supervised.completed
             else round(supervised.attempts[-1].end_bytes / 1e9, 3),
             supervised.retries_used],
        ],
        title=f"fault injection — {fault}",
    )
    series = {
        "unsupervised_bytes_written": unsupervised.metrics.bytes_written,
        "supervised_bytes_written": supervised.metrics.bytes_written,
        "supervised_threads_network": supervised.metrics.threads_network,
    }
    return ExperimentResult(
        f"faults_{fault}",
        summary=summary,
        tables=[table],
        series=series,
        notes=[
            "Connection-killing faults (link_flap, receiver_restart) hang the "
            "bare engine on dead connections / lost staged bytes; the supervisor "
            "detects the stall, backs off, and resumes from checkpoint without "
            "re-transferring completed bytes.",
        ],
    )


# ---------------------------------------------------------------- integrity
def experiment_integrity(*, fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Robustness extension: end-to-end integrity under data-plane faults.

    Injects silent data damage — in-flight and at-rest
    :class:`~repro.emulator.faults.DataCorruption`, a
    :class:`~repro.emulator.faults.TornWrite` and a
    :class:`~repro.emulator.faults.SilentTruncation` — that no byte count
    ever reflects, then compares a checkpoint-trusting supervised transfer
    against :class:`~repro.transfer.integrity.VerifiedTransfer` on the
    same seeded schedule.  The supervisor alone reports success with a
    damaged destination; the verified transfer detects every bad chunk,
    re-transfers only those, and ends with all manifest digests matching.
    """
    import tempfile

    from repro.emulator.faults import (
        DataCorruption,
        FaultSchedule,
        SilentTruncation,
        TornWrite,
    )
    from repro.transfer.files import uniform_dataset
    from repro.transfer.integrity import IntegrityConfig, VerifiedTransfer
    from repro.transfer.supervisor import SupervisorConfig, TransferSupervisor

    config = fig5_read_bottleneck()
    optimal = config.optimal_threads()
    dataset = uniform_dataset(5 if fast else 25, 1e9, name="integrity")
    max_seconds = 600.0 if fast else 1800.0

    def fault_schedule():
        return FaultSchedule(
            [
                DataCorruption(start=5.0, duration=15.0, rate=0.25, site="network"),
                DataCorruption(start=25.0, duration=1.0, rate=0.15, site="storage"),
                TornWrite(at=12.0),
                SilentTruncation(at=20.0, chunks=2),
            ]
        )

    def make_supervisor():
        testbed = Testbed(config, rng=seed, faults=fault_schedule())
        engine = ModularTransferEngine(
            testbed,
            dataset,
            StaticController(optimal),
            EngineConfig(max_seconds=max_seconds, probe_noise=0.02, seed=seed),
        )
        return TransferSupervisor(engine, SupervisorConfig(seed=seed))

    # Baseline: supervision without verification trusts every counted byte.
    # Its ledger exists only to *measure* the damage it cannot see.
    baseline_sup = make_supervisor()
    with tempfile.TemporaryDirectory() as tmp:
        baseline_vt = VerifiedTransfer.for_supervisor(
            baseline_sup, tmp, IntegrityConfig(chunk_size=64e6, seed=seed)
        )
        baseline_vt.ledger.begin_pass(
            [c.chunk_id for c in baseline_vt.manifest.chunks], start_bytes=0.0
        )
        baseline = baseline_sup.run(
            observer=lambda o: baseline_vt.ledger.sync(
                o.bytes_written_total, o.elapsed
            )
        )
        if baseline.attempts:
            baseline_vt.ledger.sync(
                baseline.attempts[-1].end_bytes, baseline.completion_time
            )
        baseline_bad = baseline_vt.ledger.verify()
        baseline_vt.journal.close()

        verified_sup = make_supervisor()
        verified_vt = VerifiedTransfer.for_supervisor(
            verified_sup, tmp + "-verified", IntegrityConfig(chunk_size=64e6, seed=seed)
        )
        result = verified_vt.run()
        verified_vt.journal.close()

    summary = {
        "supervised_completed": baseline.completed,
        "supervised_claims_success": bool(baseline.completed),
        "supervised_bad_chunks": len(baseline_bad),
        "supervised_time_s": round(baseline.completion_time, 1),
        "verified": result.verified,
        "verified_completed": result.completed,
        "verified_time_s": round(result.supervised.completion_time, 1),
        "chunks_total": result.chunks_total,
        "chunks_resent": len(set(result.resent_chunk_ids)),
        "repair_rounds": result.repair_rounds,
        "verification_time_cost_s": round(
            result.supervised.completion_time - baseline.completion_time, 1
        ),
    }
    table = render_table(
        ["engine", "claims success", "bad chunks at dest", "time (s)"],
        [
            ["supervised (no verify)", baseline.completed, len(baseline_bad),
             summary["supervised_time_s"]],
            ["verified", result.completed, len(result.unrecovered_chunk_ids),
             summary["verified_time_s"]],
        ],
        title="end-to-end integrity — silent data damage",
    )
    return ExperimentResult(
        "integrity_corruption",
        summary=summary,
        tables=[table],
        notes=[
            "Data-plane faults never change a byte count, so the checkpoint-"
            "trusting supervisor reports success while the destination holds "
            "corrupt/torn/missing chunks; the verified transfer re-sends "
            "exactly the damaged chunks and ends fully verified.",
        ],
    )


# -------------------------------------------------------- baseline matrix
def experiment_baseline_matrix(
    scenario: str = "read", *, fast: bool = True, seed: int = 0
) -> ExperimentResult:
    """One bottleneck scenario × every controller family, on equal terms.

    The report's comparison rows come from here: AutoMDT, Marlin
    (univariate gradient probing), the joint multivariate
    gradient-descent baseline, and a monolithic single-knob controller
    all move the same dataset through the same seeded testbed.  Summary
    keys follow the ``<policy>_<measure>`` convention that ``automdt
    report`` parses (goodput / completion / mean threads / ramp time), so
    a sweep over the ``baselines_*`` experiments fully populates the
    policy × measure table from store queries alone.
    """
    from repro.baselines import MultivariateGDController
    from repro.transfer.files import uniform_dataset
    from repro.transfer.monolithic import MonolithicController

    if scenario not in _FIG5_SCENARIOS:
        raise ValueError(f"scenario must be one of {sorted(_FIG5_SCENARIOS)}")
    factory, description = _FIG5_SCENARIOS[scenario]
    config = factory()
    files = 4 if fast else 12
    dataset = uniform_dataset(files, 1e9, name=f"baselines-{scenario}")

    pipeline = trained_automdt(config, training_config=_training_config(fast), seed=seed)
    contenders = (
        ("automdt", pipeline.controller(), 1.0),
        ("marlin", MarlinController(rng=seed), GRADIENT_PROBE_INTERVAL),
        ("multivariate_gd", MultivariateGDController(rng=seed), GRADIENT_PROBE_INTERVAL),
        ("monolithic", MonolithicController(), 1.0),
    )

    ramp_target = 0.9 * config.bottleneck_bandwidth
    summary: dict = {"scenario": scenario}
    rows = []
    for policy, controller, interval in contenders:
        result = _run_transfer(
            config, dataset, controller, seed=seed,
            utility=pipeline.utility, decision_interval=interval,
        )
        reach = result.metrics.throughput_write.time_to_reach(ramp_target, sustain=5)
        summary[f"{policy}_throughput_mbps"] = round(result.effective_throughput, 1)
        summary[f"{policy}_completion_s"] = round(result.completion_time, 1)
        summary[f"{policy}_mean_threads"] = round(result.metrics.concurrency_cost(), 1)
        if reach is not None:
            summary[f"{policy}_reach_90pct_s"] = round(reach, 1)
        rows.append(
            [policy, summary[f"{policy}_throughput_mbps"],
             summary[f"{policy}_completion_s"], summary[f"{policy}_mean_threads"],
             round(reach, 1) if reach is not None else "never"]
        )

    table = render_table(
        ["policy", "goodput (Mbps)", "completion (s)", "mean Σthreads", "reach 90% (s)"],
        rows,
        title=f"baseline matrix ({scenario} bottleneck) — {description}",
    )
    return ExperimentResult(
        f"baselines_{scenario}", summary=summary, tables=[table],
        notes=[
            "Gradient-family controllers decide on 3 s probes "
            "(GRADIENT_PROBE_INTERVAL); AutoMDT and the monolithic baseline "
            "act on 1 s probes, matching the per-experiment conventions.",
        ],
    )


# -------------------------------------------------------------- adaptation
def experiment_adapt_drift(
    *, fast: bool = True, seed: int = 0, adapt: bool = False
) -> ExperimentResult:
    """Robustness extension: a frozen policy under WAN drift vs safe adaptation.

    A per-stream bandwidth ramp degrades the network path mid-transfer —
    the production scenario the paper's offline-trained, frozen deployment
    cannot answer.  The frozen supervised transfer completes (supervision
    still works) but at the drifted rate; with ``adapt=True`` (CLI:
    ``automdt run adapt_drift --adapt``) the same seeded scenario runs
    under an :class:`~repro.adapt.AdaptiveController`, which detects the
    drift, shadow-evaluates a bounded residual correction and recovers
    most of the lost throughput — or rolls back to guarded control if the
    correction regresses (see ``automdt soak --drift`` for the invariant
    suite).
    """
    from repro.adapt import AdaptConfig, AdaptiveController, SafetyEnvelope
    from repro.emulator.faults import BandwidthRamp, FaultSchedule
    from repro.transfer.files import uniform_dataset
    from repro.transfer.supervisor import SupervisorConfig, TransferSupervisor

    config = fig5_read_bottleneck()
    optimal = config.optimal_threads()
    rng = np.random.default_rng(spawn_key(seed, (31,)))
    onset = 18.0
    severity = float(rng.uniform(0.35, 0.5))
    dataset = uniform_dataset(24 if fast else 64, 0.25e9, name="adapt-drift")
    max_seconds = 600.0 if fast else 1800.0

    def run_once(enabled: bool):
        testbed = Testbed(
            config,
            rng=seed,
            faults=FaultSchedule(
                [
                    BandwidthRamp(
                        start=onset,
                        duration=8.0,
                        to_scale=severity,
                        stage="network",
                        per_stream=True,
                    )
                ]
            ),
        )
        controller = AdaptiveController(
            StaticController(optimal),
            AdaptConfig(
                enabled=enabled, envelope=SafetyEnvelope.from_testbed_config(config)
            ),
        )
        engine = ModularTransferEngine(
            testbed,
            dataset,
            controller,
            EngineConfig(max_seconds=max_seconds, probe_noise=0.02, seed=seed),
        )
        return TransferSupervisor(engine, SupervisorConfig(seed=seed)).run(), controller

    frozen, _ = run_once(False)
    summary = {
        "seed": seed,
        "adapt": adapt,
        "drift_onset_s": onset,
        "drift_severity": round(severity, 4),
        "frozen_completed": frozen.completed,
        "frozen_time_s": round(frozen.completion_time, 1),
        "frozen_mbps": round(frozen.effective_throughput, 1),
        "supervised_completed": frozen.completed,
        "supervised_budget_exhausted": frozen.budget_exhausted,
    }
    rows = [
        ["frozen", frozen.completed, summary["frozen_time_s"], summary["frozen_mbps"],
         "-", "-", "-"],
    ]
    series = {"frozen_bytes_written": frozen.metrics.bytes_written}
    notes = [
        "The frozen policy keeps its training-time concurrency through the "
        "drift and pays the full slowdown; supervision guarantees completion, "
        "not throughput.",
    ]
    if adapt:
        adaptive, controller = run_once(True)
        report = controller.report()
        suspects = [
            tr["t"] for tr in report["transitions"]
            if tr["dst"] == "drift_suspected" and tr["t"] >= onset
        ]
        summary.update(
            {
                "adaptive_completed": adaptive.completed,
                "adaptive_time_s": round(adaptive.completion_time, 1),
                "adaptive_mbps": round(adaptive.effective_throughput, 1),
                "speedup_vs_frozen": round(
                    frozen.completion_time / max(adaptive.completion_time, 1e-9), 3
                ),
                "detection_latency_s": (
                    round(suspects[0] - onset, 2) if suspects else None
                ),
                "detections": report["detections"],
                "promotions": report["promotions"],
                "rollbacks": report["rollbacks"],
                "final_state": report["state"],
                "supervised_completed": frozen.completed and adaptive.completed,
                "supervised_budget_exhausted": frozen.budget_exhausted
                or adaptive.budget_exhausted,
            }
        )
        rows.append(
            ["adaptive", adaptive.completed, summary["adaptive_time_s"],
             summary["adaptive_mbps"], summary["detection_latency_s"],
             report["promotions"], report["rollbacks"]]
        )
        series["adaptive_bytes_written"] = adaptive.metrics.bytes_written
        notes.append(
            "The adaptive controller detects the drift, promotes a "
            "shadow-evaluated residual and recovers throughput inside the "
            "safety envelope; every guard transition is audited.",
        )
    else:
        notes.append(
            "Re-run with --adapt to overlay the adaptive controller on the "
            "same seeded drift.",
        )
    table = render_table(
        ["controller", "completed", "time (s)", "Mbps", "detect (s)", "promos",
         "rollbacks"],
        rows,
        title=f"drift adaptation — ramp to {severity:.2f}x at t={onset:.0f}s",
    )
    return ExperimentResult(
        "adapt_drift", summary=summary, tables=[table], series=series, notes=notes
    )


# ---------------------------------------------------------------- ablations
from repro.harness.ablations import (  # noqa: E402  (registry assembly)
    experiment_k_sweep,
    experiment_monolithic,
    experiment_sim2real,
    experiment_state_ablation,
)

EXPERIMENTS = {
    "figure1": experiment_figure1,
    "figure3": experiment_figure3,
    "figure4": experiment_figure4,
    "figure5_read": lambda **kw: experiment_figure5("read", **kw),
    "figure5_network": lambda **kw: experiment_figure5("network", **kw),
    "figure5_write": lambda **kw: experiment_figure5("write", **kw),
    "table1": experiment_table1,
    "training": experiment_training,
    "finetune": experiment_finetune,
    "k_sweep": experiment_k_sweep,
    "state_ablation": experiment_state_ablation,
    "monolithic": experiment_monolithic,
    "sim2real": experiment_sim2real,
    "filelevel": experiment_filelevel,
    "online_drl": experiment_online_drl,
    "parallelism": experiment_parallelism,
    "faults_link_flap": lambda **kw: experiment_faults("link_flap", **kw),
    "faults_storage_stall": lambda **kw: experiment_faults("storage_stall", **kw),
    "faults_receiver_restart": lambda **kw: experiment_faults("receiver_restart", **kw),
    "faults_probe_dropout": lambda **kw: experiment_faults("probe_dropout", **kw),
    "faults_report_loss": lambda **kw: experiment_faults("report_loss", **kw),
    "faults_random": lambda **kw: experiment_faults("random", **kw),
    "adapt_drift": experiment_adapt_drift,
    "integrity_corruption": experiment_integrity,
    "baselines_read": lambda **kw: experiment_baseline_matrix("read", **kw),
    "baselines_network": lambda **kw: experiment_baseline_matrix("network", **kw),
    "baselines_write": lambda **kw: experiment_baseline_matrix("write", **kw),
}
