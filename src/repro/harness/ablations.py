"""Ablations for the design choices DESIGN.md calls out.

* :func:`experiment_k_sweep` — the §IV-B claim that the utility penalty
  base has its sweet spot "just above 1" (k = 1.02).
* :func:`experiment_state_ablation` — §IV-D1: without the buffer-occupancy
  state components "the agent may get confused because the same state can
  yield different rewards".
* :func:`experiment_monolithic` — §III: a throttled link that needs ~100
  network streams forces a monolithic tool to 100 read/write threads too,
  degrading everything; the modular engine keeps I/O concurrency small.
"""

from __future__ import annotations



import numpy as np

from repro.core.env import SimulatorEnv
from repro.core.ppo import PPOAgent, PPOConfig
from repro.core.training import TrainingConfig, train
from repro.core.utility import UtilityFunction
from repro.emulator.network import NetworkConfig
from repro.emulator.storage import StorageConfig
from repro.emulator.testbed import Testbed, TestbedConfig
from repro.harness.result import ExperimentResult
from repro.simulator.config import SimulatorConfig
from repro.transfer.engine import EngineConfig, ModularTransferEngine
from repro.transfer.files import uniform_dataset
from repro.transfer.monolithic import MonolithicController
from repro.baselines import StaticController
from repro.utils.tables import render_table
from repro.utils.units import GiB


# -------------------------------------------------------------------- k sweep
def _steady_state_throughputs(config: SimulatorConfig, threads) -> tuple[float, float, float]:
    """Analytic steady-state stage throughputs for a thread triple.

    End-to-end flow settles at the minimum stage capacity; upstream stages
    cannot sustainably exceed it once buffers fill.
    """
    capacities = [
        min(n * tpt, bw) for n, tpt, bw in zip(threads, config.tpt, config.bandwidth)
    ]
    flow = min(capacities)
    return (flow, flow, flow)


def optimal_threads_for_k(
    config: SimulatorConfig, k: float, *, max_threads: int | None = None
) -> tuple[tuple[int, int, int], float, float]:
    """Grid-search the utility-optimal triple for penalty base ``k``.

    Returns ``(triple, achieved_throughput, utility)``.  The per-stage
    utility is separable given the flow, so the search is exact.
    """
    utility = UtilityFunction(k)
    n_max = max_threads or config.max_threads
    best = (1, 1, 1)
    best_utility = -np.inf
    # Separability trick: for a target flow f, each stage independently
    # needs the smallest n with min(n*tpt, bw) >= f, so enumerate candidate
    # flows induced by each stage's thread count.
    candidate_flows = sorted(
        {
            min(n * tpt, bw)
            for tpt, bw in zip(config.tpt, config.bandwidth)
            for n in range(1, n_max + 1)
        }
    )
    for flow in candidate_flows:
        threads = []
        feasible = True
        for tpt, bw in zip(config.tpt, config.bandwidth):
            if min(n_max * tpt, bw) < flow - 1e-9:
                feasible = False
                break
            n = int(np.ceil(flow / tpt))
            threads.append(min(max(1, n), n_max))
        if not feasible:
            continue
        triple = tuple(threads)
        value = utility(_steady_state_throughputs(config, triple), triple)
        if value > best_utility:
            best_utility = value
            best = triple  # type: ignore[assignment]
    flow = min(
        min(n * tpt, bw) for n, tpt, bw in zip(best, config.tpt, config.bandwidth)
    )
    return best, flow, float(best_utility)


def experiment_k_sweep(*, fast: bool = True, seed: int = 0) -> ExperimentResult:
    """§IV-B: sweep the penalty base k across 1–25 Gbps links.

    Shows the trade: k → 1 buys the last percent of throughput with many
    extra threads; large k sacrifices throughput to save threads; just above
    1 (1.02) takes nearly all the throughput at near-minimal concurrency.
    """
    ks = [1.001, 1.005, 1.01, 1.02, 1.05, 1.1, 1.2]
    links = {
        "1 Gbps": SimulatorConfig(
            tpt_read=80, tpt_network=160, tpt_write=200,
            bandwidth_read=1000, bandwidth_network=1000, bandwidth_write=1000,
            max_threads=40,
        ),
        "25 Gbps": SimulatorConfig(
            tpt_read=1000, tpt_network=1250, tpt_write=1100,
            bandwidth_read=26000, bandwidth_network=25000, bandwidth_write=25500,
            max_threads=40,
        ),
    }
    rows = []
    per_k_score: dict[float, list[float]] = {k: [] for k in ks}
    for link_name, config in links.items():
        bottleneck = config.bottleneck
        for k in ks:
            triple, flow, _ = optimal_threads_for_k(config, k)
            utilization = flow / bottleneck
            thread_total = sum(triple)
            rows.append(
                [link_name, f"{k:g}", str(triple), thread_total, round(100 * utilization, 1)]
            )
            # Composite desirability: utilization minus a mild thread cost —
            # the qualitative "sweet spot" criterion.
            per_k_score[k].append(utilization - 0.002 * thread_total)
    mean_scores = {k: float(np.mean(v)) for k, v in per_k_score.items()}
    # The sweet spot is "just above 1": the *largest* k that still attains
    # the best score — bigger k means fewer threads whenever utilization ties.
    best_score = max(mean_scores.values())
    best_k = max(k for k, v in mean_scores.items() if v >= best_score - 1e-9)
    table = render_table(
        ["link", "k", "optimal threads", "Σ threads", "utilization %"],
        rows,
        title="k sweep — utility-optimal operating points",
    )
    return ExperimentResult(
        "k_sweep",
        summary={
            "swept_k": ks,
            "scores": {str(k): round(v, 4) for k, v in mean_scores.items()},
            "best_k": best_k,
            "paper_k": 1.02,
        },
        tables=[table],
        notes=["Paper: 'the sweet spot was just above 1 (specifically 1.02)'."],
    )


# ----------------------------------------------------------- state ablation
class MaskedStateEnv:
    """Env wrapper that zeroes the buffer-occupancy state components.

    Reproduces the §IV-D1 ablation: without the unused-buffer inputs the
    same (threads, throughputs) observation maps to different rewards
    depending on hidden buffer state, so the policy faces aliased states.
    """

    def __init__(self, env: SimulatorEnv) -> None:
        self.env = env
        self.state_dim = env.state_dim
        self.action_dim = env.action_dim

    @staticmethod
    def _mask(state: np.ndarray) -> np.ndarray:
        masked = np.asarray(state, dtype=float).copy()
        masked[6:8] = 0.0  # sender/receiver unused-buffer components
        return masked

    def reset(self) -> np.ndarray:
        """Reset and mask."""
        return self._mask(self.env.reset())

    def step(self, action):
        """Step and mask."""
        state, reward, done, info = self.env.step(action)
        return self._mask(state), reward, done, info


def experiment_state_ablation(*, fast: bool = True, seed: int = 0) -> ExperimentResult:
    """§IV-D1: train with vs without the buffer-occupancy states."""
    config = SimulatorConfig(
        tpt_read=80, tpt_network=160, tpt_write=200,
        bandwidth_read=1000, bandwidth_network=1000, bandwidth_write=1000,
        max_threads=30,
    )
    episodes = 2500 if fast else 15000
    training = TrainingConfig(max_episodes=episodes, stagnation_episodes=episodes)

    full_env = SimulatorEnv(config, rng=seed)
    full_agent = PPOAgent(config=PPOConfig(), rng=seed)
    full = train(full_agent, full_env, training)

    masked_env = MaskedStateEnv(SimulatorEnv(config, rng=seed))
    masked_agent = PPOAgent(config=PPOConfig(), rng=seed)
    masked = train(masked_agent, masked_env, training)

    summary = {
        "full_best_reward": round(full.best_reward, 2),
        "masked_best_reward": round(masked.best_reward, 2),
        "full_tail_mean": round(float(full.episode_rewards[-200:].mean()), 2),
        "masked_tail_mean": round(float(masked.episode_rewards[-200:].mean()), 2),
        "full_convergence_episode": full.convergence_episode,
        "masked_convergence_episode": masked.convergence_episode,
        "buffer_states_help": bool(
            float(full.episode_rewards[-200:].mean())
            >= float(masked.episode_rewards[-200:].mean())
        ),
    }
    return ExperimentResult(
        "state_ablation",
        summary=summary,
        notes=["Without buffer occupancy the same visible state aliases different dynamics."],
    )


# ------------------------------------------------------------- sim-to-real
def experiment_sim2real(*, fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Simulator-fidelity ablation: how wrong can the exploration profile be?

    The paper's premise is that an agent trained purely in the Algorithm-1
    simulator (seeded from a 10-minute probe run) deploys well on the real
    system.  Here we train three agents — on the measured profile, on a
    mildly mis-measured profile (±25% rate errors), and on a severely
    mis-measured one (±60%) — and evaluate all three on the *true* testbed.
    The mild agent should stay close to the matched one (the paper's
    sim-to-real gap), while severe mismatch costs real performance.
    """
    from repro.core.agent import AutoMDT
    from repro.core.training import TrainingConfig
    from repro.emulator.presets import fig5_read_bottleneck
    from repro.transfer.engine import EngineConfig as _EngineConfig

    config = fig5_read_bottleneck()
    episodes = 3000 if fast else 30000
    rng = np.random.default_rng(seed)

    def distorted(profile, magnitude: float):
        from repro.core.exploration import ExplorationProfile

        if magnitude == 0.0:
            return profile
        factors = rng.uniform(1.0 - magnitude, 1.0 + magnitude, size=6)
        return ExplorationProfile(
            bandwidth=tuple(b * f for b, f in zip(profile.bandwidth, factors[:3])),
            tpt=tuple(t * f for t, f in zip(profile.tpt, factors[3:])),
            sender_buffer_capacity=profile.sender_buffer_capacity,
            receiver_buffer_capacity=profile.receiver_buffer_capacity,
            max_threads=profile.max_threads,
            samples=profile.samples,
        )

    measured = None
    completion: dict[str, float] = {}
    dataset = uniform_dataset(15, 1e9, name="sim2real")
    for name, magnitude in (("matched", 0.0), ("mild (±25%)", 0.25), ("severe (±60%)", 0.6)):
        pipeline = AutoMDT(
            seed=seed,
            training_config=TrainingConfig(max_episodes=episodes, stagnation_episodes=600),
        )
        if measured is None:
            measured = pipeline.explore(Testbed(config, rng=seed), duration=120.0)
        pipeline.set_profile(distorted(measured, magnitude))
        pipeline.train_offline()
        # Deploy with the *distorted* profile's scale, as a real mis-measured
        # deployment would.
        engine = ModularTransferEngine(
            Testbed(config, rng=seed + 1),
            dataset,
            pipeline.controller(),
            _EngineConfig(max_seconds=3600, probe_noise=0.02, seed=seed),
        )
        completion[name] = engine.run().completion_time

    summary = {
        "completion_s": {k: round(v, 1) for k, v in completion.items()},
        "mild_overhead_pct": round(
            100 * (completion["mild (±25%)"] / completion["matched"] - 1.0), 1
        ),
        "severe_overhead_pct": round(
            100 * (completion["severe (±60%)"] / completion["matched"] - 1.0), 1
        ),
    }
    table = render_table(
        ["training profile", "completion (s)"],
        [[k, round(v, 1)] for k, v in completion.items()],
        title="sim-to-real: profile mismatch vs transfer time",
    )
    return ExperimentResult(
        "sim2real",
        summary=summary,
        tables=[table],
        notes=[
            "The offline-training premise tolerates moderate probe error; "
            "severe mis-measurement degrades the deployed policy."
        ],
    )


# -------------------------------------------------------------- monolithic
def experiment_monolithic(*, fast: bool = True, seed: int = 0) -> ExperimentResult:
    """§III: per-stream throttle forces monolithic tools to over-subscribe I/O.

    A 1 Gbps path throttled to 10 Mbps/stream needs ~100 network streams.
    A monolithic tool then also runs ~100 read and ~100 write threads
    (8–10 would do), paying the over-concurrency penalty; the modular
    engine keeps I/O small and wins.
    """
    config = TestbedConfig(
        source=StorageConfig(tpt=125.0, bandwidth=1200.0),
        destination=StorageConfig(tpt=110.0, bandwidth=1100.0),
        network=NetworkConfig(tpt=10.0, capacity=1000.0, degradation_knee=110),
        sender_buffer_capacity=2.0 * GiB,
        receiver_buffer_capacity=2.0 * GiB,
        max_threads=120,
        label="throttled-10mbps-per-stream",
    )
    optimal = config.optimal_threads()
    dataset = uniform_dataset(20, 1e9, name="monolithic-demo")

    def run(controller):
        testbed = Testbed(config, rng=seed)
        engine = ModularTransferEngine(
            testbed, dataset, controller, EngineConfig(max_seconds=3600, seed=seed)
        )
        return engine.run()

    modular = run(StaticController(optimal))
    monolithic = run(MonolithicController(concurrency=100, parallelism=1))

    summary = {
        "optimal_threads": optimal,
        "modular_completion_s": round(modular.completion_time, 1),
        "monolithic_completion_s": round(monolithic.completion_time, 1),
        "modular_mean_total_threads": round(modular.metrics.concurrency_cost(), 1),
        "monolithic_mean_total_threads": round(monolithic.metrics.concurrency_cost(), 1),
        "modular_throughput_mbps": round(modular.effective_throughput, 1),
        "monolithic_throughput_mbps": round(monolithic.effective_throughput, 1),
        "io_threads_saved": round(
            (monolithic.metrics.concurrency_cost() - modular.metrics.concurrency_cost())
        ),
    }
    table = render_table(
        ["architecture", "threads (r,n,w)", "mean Σthreads", "Mbps", "completion (s)"],
        [
            ["modular", str(optimal), summary["modular_mean_total_threads"],
             summary["modular_throughput_mbps"], summary["modular_completion_s"]],
            ["monolithic", "(100, 100, 100)", summary["monolithic_mean_total_threads"],
             summary["monolithic_throughput_mbps"], summary["monolithic_completion_s"]],
        ],
        title="§III — monolithic over-subscription on a throttled link",
    )
    return ExperimentResult("monolithic", summary=summary, tables=[table])
