"""Command-line interface: ``python -m repro.harness`` / ``automdt``.

Commands::

    automdt list                                   # experiments + presets
    automdt run figure3 [--full] [--seed N] [--seeds 0,1,2] [--out DIR]
    automdt run all [--full]                       # everything, in order
    automdt sweep all --seeds 0-9 --workers 4      # grid over a process pool
    automdt sweep figure1,faults_random --seeds 0-4 --workers 0   # 0 = all cores
    automdt explore --preset fig5-read [--duration 120] [--out profile.json]
    automdt train --preset fig5-read [--episodes 4000] --out ckpt
    automdt transfer --preset fig5-read --checkpoint ckpt [--gb 25] [--mixed]
    automdt soak [--quick] [--cases 8] [--seed 0] [--out DIR]   # chaos soak
    automdt soak --drift [--quick] [--latency-bound 30]         # drift/adaptation soak
    automdt run adapt_drift --adapt                # drift experiment, adaptation on
    automdt fleet [--tenants 4] [--transfers 32] [--seed 0] [--out DIR]
    automdt fleet --soak [--quick] [--cases 4]     # multi-tenant fleet chaos soak
    automdt verify RUN_DIR                         # offline integrity check
    automdt obs summary RUN_DIR                    # inspect an instrumented run
    automdt obs tail RUN_DIR [-n 20]
    automdt obs diff RUN_A RUN_B
    automdt store ingest BENCH_*.json              # backfill the results store
    automdt report --store automdt.db [--out report.md]
    automdt regress BENCH_*.json --store automdt.db

``run`` and ``transfer`` accept ``--obs RUN_DIR`` to record a telemetry
event log (spans, PPO losses, per-interval transfer samples, supervisor
incidents) that the ``obs`` subcommands reconstruct.  ``run``, ``sweep``,
``soak`` and ``fleet`` accept ``--store DB`` (or ``AUTOMDT_STORE``) to
append every run's metrics to the results store (see
:mod:`repro.obs.store`); with a store, ``sweep`` also *resumes* — cells
already completed at the current revision are skipped.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import nullcontext

from repro import obs
from repro.harness.experiments import EXPERIMENTS
from repro.obs.cli import add_obs_parser, run_obs
from repro.obs.store.cli import (
    add_store_parsers,
    run_regress_command,
    run_report_command,
    run_store_command,
)


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition."""
    parser = argparse.ArgumentParser(
        prog="automdt",
        description="AutoMDT reproduction: experiments and pipeline tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments and presets")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment name from 'list', or 'all'")
    run.add_argument("--full", action="store_true", help="paper-scale budgets (slow)")
    run.add_argument("--seed", type=int, default=0, help="root RNG seed")
    run.add_argument(
        "--seeds", default=None,
        help="seed list/range ('0,1,2' or '0-9'); aggregates mean/std over runs",
    )
    run.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size for --seeds sweeps (0 = all cores)",
    )
    run.add_argument("--out", default=None, help="directory for JSON result dumps")
    run.add_argument(
        "--adapt", action="store_true",
        help="enable safe online adaptation (drift detection + shadow-evaluated "
             "correction + rollback) in experiments that support it",
    )
    run.add_argument(
        "--obs", default=None, metavar="DIR",
        help="record a telemetry event log into DIR (see 'automdt obs')",
    )
    _add_store_flag(run)

    sweep = sub.add_parser(
        "sweep", help="run an experiments × seeds grid over a process pool"
    )
    sweep.add_argument(
        "experiments",
        help="comma-separated experiment names from 'list', or 'all'",
    )
    sweep.add_argument(
        "--seeds", default="0",
        help="seed list/range, e.g. '0-9' or '0,1,5' (default: 0)",
    )
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size; 0 = all cores, 1 = serial (default)",
    )
    sweep.add_argument("--full", action="store_true", help="paper-scale budgets (slow)")
    sweep.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell wall-clock budget in seconds",
    )
    sweep.add_argument(
        "--retries", type=int, default=0,
        help="extra attempts per failed cell (crash/timeout/exception)",
    )
    sweep.add_argument("--out", default=None, help="directory for per-cell JSON dumps")
    sweep.add_argument(
        "--obs", default=None, metavar="DIR",
        help="record telemetry (per-worker logs merged after the sweep)",
    )
    _add_store_flag(sweep)
    sweep.add_argument(
        "--no-resume", action="store_true",
        help="with --store: re-run cells even when the store holds them",
    )

    explore = sub.add_parser("explore", help="run the §IV-A logging phase on a preset")
    explore.add_argument("--preset", required=True)
    explore.add_argument("--duration", type=float, default=120.0)
    explore.add_argument("--seed", type=int, default=0)
    explore.add_argument("--out", default=None, help="write the profile JSON here")

    trainp = sub.add_parser("train", help="explore + offline-train for a preset")
    trainp.add_argument("--preset", required=True)
    trainp.add_argument("--episodes", type=int, default=4000)
    trainp.add_argument("--exploration", type=float, default=120.0)
    trainp.add_argument("--seed", type=int, default=0)
    trainp.add_argument("--out", required=True, help="checkpoint path (no extension)")

    transfer = sub.add_parser("transfer", help="run a transfer with a trained checkpoint")
    transfer.add_argument("--preset", required=True)
    transfer.add_argument("--checkpoint", required=True)
    transfer.add_argument("--gb", type=float, default=25.0, help="dataset size in GB")
    transfer.add_argument("--mixed", action="store_true", help="mixed file sizes")
    transfer.add_argument("--seed", type=int, default=1)
    transfer.add_argument("--deterministic", action="store_true")
    transfer.add_argument(
        "--obs", default=None, metavar="DIR",
        help="record a telemetry event log into DIR (see 'automdt obs')",
    )

    soak = sub.add_parser(
        "soak", help="deterministic chaos soak: seeded faults × crashes × invariants"
    )
    soak.add_argument("--cases", type=int, default=8, help="number of seeded cases")
    soak.add_argument("--seed", type=int, default=0, help="root seed (cases derive from it)")
    soak.add_argument("--gb", type=float, default=2.0, help="dataset size per case (GB)")
    soak.add_argument("--workers", type=int, default=1, help="process fan-out (1 = serial)")
    soak.add_argument(
        "--quick", action="store_true",
        help="CI smoke preset: 3 small cases, corruption + crash faults",
    )
    soak.add_argument(
        "--drift", action="store_true",
        help="run the drift soak instead: seeded bandwidth drift × adaptation "
             "invariants (detection latency, legal rollback, zero data loss)",
    )
    soak.add_argument(
        "--latency-bound", type=float, default=30.0,
        help="--drift: max allowed detection delay after drift onset (s)",
    )
    soak.add_argument("--no-crashes", action="store_true", help="disable simulated crashes")
    soak.add_argument(
        "--no-corruption", action="store_true", help="disable DataCorruption faults"
    )
    soak.add_argument(
        "--out", default=None,
        help="directory for per-case artifacts and soak_report.json",
    )
    _add_store_flag(soak)

    fleet = sub.add_parser(
        "fleet",
        help="multi-tenant fleet control plane: admission, fair share, breakers",
    )
    fleet.add_argument("--tenants", type=int, default=4, help="equal-weight tenant count")
    fleet.add_argument("--transfers", type=int, default=32, help="total transfer requests")
    fleet.add_argument("--gb", type=float, default=0.25, help="dataset size per transfer (GB)")
    fleet.add_argument("--seed", type=int, default=0, help="root seed")
    fleet.add_argument(
        "--capacity-mbps", type=float, default=None,
        help="shared link capacity (default: the testbed bottleneck)",
    )
    fleet.add_argument("--quantum", type=float, default=10.0, help="scheduling round (s)")
    fleet.add_argument(
        "--max-parallel", type=int, default=8, help="global dispatch slots per round"
    )
    fleet.add_argument(
        "--horizon", type=float, default=3600.0,
        help="virtual-time budget for the whole fleet (s)",
    )
    fleet.add_argument("--no-stalls", action="store_true", help="disable stall faults")
    fleet.add_argument(
        "--no-corruption", action="store_true", help="disable DataCorruption faults"
    )
    fleet.add_argument("--no-crashes", action="store_true", help="disable simulated crashes")
    fleet.add_argument(
        "--soak", action="store_true",
        help="run the fleet chaos soak (per-case invariants + determinism check)",
    )
    fleet.add_argument("--cases", type=int, default=4, help="fleet-soak cases (--soak)")
    fleet.add_argument(
        "--quick", action="store_true",
        help="CI smoke preset for --soak: one 32-transfer case across 4 tenants",
    )
    fleet.add_argument("--workers", type=int, default=1, help="--soak case fan-out")
    fleet.add_argument(
        "--out", default=None, help="directory for per-job artifacts and the report JSON"
    )
    _add_store_flag(fleet)

    verify = sub.add_parser(
        "verify", help="offline-verify a run directory's integrity artifacts"
    )
    verify.add_argument(
        "run_dir", help="directory holding manifest.json (+ journal.jsonl, destination.json)"
    )

    add_obs_parser(sub)
    add_store_parsers(sub)
    return parser


def _add_store_flag(parser) -> None:
    parser.add_argument(
        "--store", default=None, metavar="DB",
        help="append results to this store (also: $AUTOMDT_STORE)",
    )


def _resolve_preset(name: str):
    from repro.emulator.presets import PRESETS

    if name not in PRESETS:
        print(f"unknown preset {name!r}; available: {sorted(PRESETS)}", file=sys.stderr)
        return None
    return PRESETS[name]()


def _cmd_list() -> int:
    from repro.emulator.presets import PRESETS

    print("experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    print("presets:")
    for name in PRESETS:
        print(f"  {name}")
    return 0


#: Exit code for a supervised transfer abandoned on its wall-clock retry
#: budget (distinct from 1 = stall/retry failure, 2 = usage error).
EXIT_BUDGET_EXHAUSTED = 3


def _failure_mode(summary: dict) -> str | None:
    """Classify an experiment summary's transfer outcome.

    Returns ``None`` (healthy), ``"budget_exhausted"`` (the supervisor
    abandoned the transfer because the next resume would land past its
    wall-clock ``max_elapsed`` budget — a capacity-planning signal, not a
    stall) or ``"failed"`` (stall timeout / retry exhaustion / failed
    verification).  A bare-engine ``unsupervised_completed=False`` is an
    expected demonstration (that is the point of the fault experiments);
    only the *supervised* transfer's outcome counts.
    """
    if summary.get("supervised_completed") is False:
        if summary.get("supervised_budget_exhausted") is True:
            return "budget_exhausted"
        return "failed"
    if summary.get("verified") is False:
        return "failed"
    return None


def _transfer_failed(summary: dict) -> bool:
    """Whether an experiment summary reports a failed supervised/verified transfer."""
    return _failure_mode(summary) is not None


def _report_failure(name: str, mode: str) -> None:
    if mode == "budget_exhausted":
        print(
            f"BUDGET EXHAUSTED {name}: the supervisor abandoned the transfer at its "
            "wall-clock retry budget (max_elapsed) — raise the budget or provision "
            "more capacity; this is not a stall timeout",
            file=sys.stderr,
        )
    else:
        print(f"FAILED {name}: the supervised transfer did not complete", file=sys.stderr)


def _experiment_fn(name: str, args):
    """The experiment callable, with ``--adapt`` applied where supported."""
    fn = EXPERIMENTS[name]
    if getattr(args, "adapt", False):
        import functools
        import inspect

        if "adapt" in inspect.signature(fn).parameters:
            fn = functools.partial(fn, adapt=True)
        else:
            print(f"note: {name} does not support --adapt; running as-is",
                  file=sys.stderr)
    return fn


def _merge_exit(current: int, mode: str) -> int:
    """Fold one failure mode into the run exit code (generic 1 wins over 3)."""
    if mode == "budget_exhausted":
        return current if current == 1 else EXIT_BUDGET_EXHAUSTED
    return 1


def _cmd_run(args) -> int:
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'automdt list'", file=sys.stderr)
        return 2

    exit_code = 0
    for name in names:
        started = time.perf_counter()
        fn = _experiment_fn(name, args)
        if args.seeds:
            from repro.harness.grid import parse_seeds
            from repro.harness.multirun import run_seeded

            seeds = parse_seeds(args.seeds)
            aggregate = run_seeded(fn, seeds, workers=args.workers, fast=not args.full)
            print(aggregate.table())
            modes = [_failure_mode(run.summary) for run in aggregate.runs]
            for mode in (m for m in modes if m):
                exit_code = _merge_exit(exit_code, mode)
            if any(modes):
                _report_failure(name, next(m for m in modes if m))
            if args.out:
                for run in aggregate.runs:
                    run.name = f"{run.name}_seed{run.summary.get('seed', '')}"
        else:
            wall_start = time.time()
            result = fn(fast=not args.full, seed=args.seed)
            print(result.render())
            mode = _failure_mode(result.summary)
            if mode:
                _report_failure(name, mode)
                exit_code = _merge_exit(exit_code, mode)
            if args.out:
                print(f"saved {result.save(args.out)}")

            from repro.harness.multirun import flatten_summary
            from repro.obs.store import experiment_config, record_report

            record_report(
                "experiment",
                name,
                seed=args.seed,
                # ``adapt`` joins the cell identity only when on, so runs
                # without --adapt keep their pre-adaptation fingerprints.
                config=experiment_config(
                    name,
                    fast=not args.full,
                    **({"adapt": True} if getattr(args, "adapt", False) else {}),
                ),
                metrics=flatten_summary(result.summary),
                started=wall_start,
            )
        print(f"[{name} finished in {time.perf_counter() - started:.1f}s]\n")
    return exit_code


def _cmd_sweep(args) -> int:
    from repro.harness.grid import parse_seeds, run_grid

    names = (
        list(EXPERIMENTS)
        if args.experiments == "all"
        else [n.strip() for n in args.experiments.split(",") if n.strip()]
    )
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'automdt list'", file=sys.stderr)
        return 2
    try:
        seeds = parse_seeds(args.seeds)
    except ValueError as exc:
        print(f"bad --seeds: {exc}", file=sys.stderr)
        return 2

    result = run_grid(
        names,
        seeds,
        fast=not args.full,
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
        out=args.out,
        resume=not args.no_resume,
    )
    for name in names:
        agg = result.aggregates.get(name)
        if agg is not None:
            print(agg.table())
    print(result.table())
    if args.out:
        print(f"per-cell results saved under {args.out}")
    for name, seed, outcome in result.failures:
        print(
            f"FAILED {name} seed {seed}: {outcome.error} "
            f"({outcome.attempts} attempt(s))",
            file=sys.stderr,
        )
    return 0 if result.ok else 1


def _cmd_explore(args) -> int:
    from repro.core.exploration import run_exploration
    from repro.emulator.testbed import Testbed
    from repro.utils.tables import render_kv

    config = _resolve_preset(args.preset)
    if config is None:
        return 2
    profile = run_exploration(
        Testbed(config, rng=args.seed), duration=args.duration, rng=args.seed
    )
    print(
        render_kv(
            {
                "bandwidth (r,n,w) Mbps": tuple(round(b, 1) for b in profile.bandwidth),
                "TPT (r,n,w) Mbps": tuple(round(t, 1) for t in profile.tpt),
                "bottleneck": round(profile.bottleneck, 1),
                "optimal threads": profile.optimal_threads(),
            },
            title=f"exploration profile for {args.preset}",
        )
    )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(profile.to_dict(), fh, indent=2)
        print(f"saved {args.out}")
    return 0


def _cmd_train(args) -> int:
    from repro.core.agent import AutoMDT
    from repro.core.training import TrainingConfig
    from repro.emulator.testbed import Testbed

    config = _resolve_preset(args.preset)
    if config is None:
        return 2
    pipeline = AutoMDT(
        seed=args.seed,
        training_config=TrainingConfig(
            max_episodes=args.episodes,
            stagnation_episodes=max(100, args.episodes // 5),
        ),
    )
    pipeline.explore(Testbed(config, rng=args.seed), duration=args.exploration)
    print(f"profile: optimal threads {pipeline.profile.optimal_threads()}; training...")
    result = pipeline.train_offline()
    print(
        f"episodes={result.episodes_run} best={result.best_reward:.2f}/"
        f"{result.max_episode_reward} converged={result.converged} "
        f"wall={result.wall_seconds:.0f}s"
    )
    pipeline.save(args.out)
    print(f"checkpoint saved to {args.out}.npz")
    return 0


def _cmd_transfer(args) -> int:
    from repro.core.agent import AutoMDT
    from repro.emulator.testbed import Testbed
    from repro.transfer.engine import EngineConfig, ModularTransferEngine
    from repro.utils.units import format_rate
    from repro.workloads import large_dataset, mixed_dataset

    config = _resolve_preset(args.preset)
    if config is None:
        return 2
    pipeline = AutoMDT(seed=args.seed)
    pipeline.load(args.checkpoint)
    total_bytes = args.gb * 1e9
    dataset = (
        mixed_dataset(total_bytes=total_bytes, rng=args.seed)
        if args.mixed
        else large_dataset(total_bytes=total_bytes)
    )
    engine = ModularTransferEngine(
        Testbed(config, rng=args.seed),
        dataset,
        pipeline.controller(deterministic=args.deterministic),
        EngineConfig(max_seconds=86400.0, probe_noise=0.02, seed=args.seed),
        utility_fn=pipeline.utility,
    )
    result = engine.run()
    print(
        f"completed={result.completed} time={result.completion_time:.1f}s "
        f"throughput={format_rate(result.effective_throughput)} "
        f"mean threads={result.metrics.concurrency_cost():.1f}"
    )
    return 0 if result.completed else 1


def _cmd_soak(args) -> int:
    from repro.harness.soak import SoakConfig, render_soak_report, run_soak

    if args.drift:
        import dataclasses

        from repro.harness.drift import (
            DriftSoakConfig,
            render_drift_soak_report,
            run_drift_soak,
        )

        if args.quick:
            config = DriftSoakConfig.quick(root_seed=args.seed)
        else:
            config = DriftSoakConfig(
                cases=args.cases, root_seed=args.seed, workers=args.workers
            )
        config = dataclasses.replace(config, latency_bound_s=args.latency_bound)
        report = run_drift_soak(config, out_dir=args.out)
        print(render_drift_soak_report(report), end="")
        if args.out:
            print(f"report saved to {report['report_path']}")
        return 0 if report["all_passed"] else 1

    if args.quick:
        config = SoakConfig.quick(root_seed=args.seed)
    else:
        config = SoakConfig(
            cases=args.cases,
            root_seed=args.seed,
            gigabytes=args.gb,
            workers=args.workers,
        )
    if args.no_crashes:
        import dataclasses

        config = dataclasses.replace(config, crashes=False)
    if args.no_corruption:
        import dataclasses

        config = dataclasses.replace(config, corruption=False)
    report = run_soak(config, out_dir=args.out)
    print(render_soak_report(report), end="")
    if args.out:
        print(f"report saved to {report['report_path']}")
    return 0 if report["all_passed"] else 1


def _cmd_fleet(args) -> int:
    import dataclasses
    import tempfile
    from pathlib import Path

    from repro.fleet import (
        FleetConfig,
        FleetScheduler,
        JobFaultProfile,
        TenantSpec,
        TransferRequest,
        render_fleet_report,
    )
    from repro.harness.soak import (
        FleetSoakConfig,
        render_fleet_soak_report,
        run_fleet_soak,
    )
    from repro.utils.config import dump_json

    if args.soak:
        if args.quick:
            config = FleetSoakConfig.quick(root_seed=args.seed)
        else:
            config = FleetSoakConfig(
                cases=args.cases,
                root_seed=args.seed,
                tenants=args.tenants,
                transfers=args.transfers,
                gigabytes=args.gb,
                quantum=args.quantum,
                max_parallel=args.max_parallel,
                workers=args.workers,
            )
        config = dataclasses.replace(
            config,
            stalls=not args.no_stalls,
            corruption=not args.no_corruption,
            crashes=not args.no_crashes,
        )
        report = run_fleet_soak(config, out_dir=args.out)
        print(render_fleet_soak_report(report), end="")
        if args.out:
            print(f"report saved to {report['report_path']}")
        return 0 if report["all_passed"] else 1

    out_dir = Path(args.out) if args.out else Path(tempfile.mkdtemp(prefix="fleet-"))
    tenants = tuple(
        TenantSpec(f"tenant{i}", max_concurrency=max(2, args.max_parallel))
        for i in range(args.tenants)
    )
    requests = [
        TransferRequest(
            tenant=f"tenant{i % args.tenants}", gigabytes=args.gb, name=f"r{i:03d}"
        )
        for i in range(args.transfers)
    ]
    config = FleetConfig(
        tenants=tenants,
        seed=args.seed,
        quantum=args.quantum,
        capacity_mbps=args.capacity_mbps,
        max_parallel=args.max_parallel,
        horizon=args.horizon,
        stall_intervals=4,
        admission_limit=max(64, args.transfers),
        per_tenant_queue=max(32, args.transfers),
        faults=JobFaultProfile(
            stalls=not args.no_stalls,
            corruption=not args.no_corruption,
            crashes=not args.no_crashes,
        ),
    )
    report = FleetScheduler(config, requests, out_dir / "jobs").run()
    print(render_fleet_report(report), end="")
    path = out_dir / "fleet_report.json"
    dump_json(report, path)
    print(f"report saved to {path}")

    from repro.obs.store import flatten_numeric, record_report

    record_report(
        "fleet",
        "fleet",
        seed=args.seed,
        config={
            "v": 1,
            "tenants": args.tenants,
            "transfers": args.transfers,
            "gigabytes": args.gb,
            "quantum": args.quantum,
            "max_parallel": args.max_parallel,
        },
        metrics=flatten_numeric(
            {k: v for k, v in report.items() if k not in ("jobs", "tenants")}
        ),
        labelled_metrics=[
            ("tenant.goodput_bytes_per_s", float(stats["goodput_bytes_per_s"]),
             {"tenant": tenant})
            for tenant, stats in report["tenants"].items()
        ],
        artifacts=[path],
    )
    # A fleet run fails loudly: any admitted transfer that did not end
    # verified-and-recovered, or any violated invariant, is exit code 1.
    return 0 if report["all_passed"] else 1


def _cmd_verify(args) -> int:
    from repro.transfer.integrity import verify_artifacts
    from repro.utils.tables import render_kv

    try:
        report = verify_artifacts(args.run_dir)
    except (FileNotFoundError, ValueError) as exc:
        print(f"cannot verify {args.run_dir}: {exc}", file=sys.stderr)
        return 2
    print(render_kv(report, title=f"integrity verification — {args.run_dir}"))
    ok = bool(report["all_verified"] and report["replay_idempotent"])
    print("VERIFIED" if ok else "VERIFICATION FAILED")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "store", None) and args.command not in ("store", "report", "regress"):
        from repro.obs.store import set_default_store

        set_default_store(args.store)
    obs_dir = getattr(args, "obs", None)
    target = (
        getattr(args, "experiment", None)
        or getattr(args, "experiments", None)
        or getattr(args, "preset", None)
        or ""
    )
    telemetry = (
        obs.session(obs_dir, label=f"{args.command}:{target}") if obs_dir else nullcontext()
    )
    with telemetry:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "explore":
            return _cmd_explore(args)
        if args.command == "train":
            return _cmd_train(args)
        if args.command == "transfer":
            return _cmd_transfer(args)
        if args.command == "soak":
            return _cmd_soak(args)
        if args.command == "fleet":
            return _cmd_fleet(args)
        if args.command == "verify":
            return _cmd_verify(args)
        if args.command == "obs":
            return run_obs(args)
        if args.command == "store":
            return run_store_command(args)
        if args.command == "report":
            return run_report_command(args)
        if args.command == "regress":
            return run_regress_command(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
