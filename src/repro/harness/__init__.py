"""Experiment harness: one entry point per paper table/figure.

Each experiment function is pure-Python callable (used by the benchmark
suite) and registered with the CLI::

    python -m repro.harness run figure3 --fast
    python -m repro.harness list

Results print as the same rows/series the paper reports and can be dumped
to JSON.
"""

from repro.harness.artifacts import trained_automdt
from repro.harness.grid import GridResult, parse_seeds, run_grid
from repro.harness.multirun import AggregateResult, aggregate, run_seeded
from repro.harness.soak import SoakConfig, render_soak_report, run_soak
from repro.harness.experiments import (
    EXPERIMENTS,
    experiment_faults,
    experiment_integrity,
    experiment_figure1,
    experiment_figure3,
    experiment_figure4,
    experiment_figure5,
    experiment_filelevel,
    experiment_finetune,
    experiment_k_sweep,
    experiment_monolithic,
    experiment_online_drl,
    experiment_parallelism,
    experiment_sim2real,
    experiment_state_ablation,
    experiment_table1,
    experiment_training,
)

__all__ = [
    "trained_automdt",
    "AggregateResult",
    "GridResult",
    "aggregate",
    "parse_seeds",
    "run_grid",
    "run_seeded",
    "SoakConfig",
    "render_soak_report",
    "run_soak",
    "EXPERIMENTS",
    "experiment_faults",
    "experiment_integrity",
    "experiment_figure1",
    "experiment_figure3",
    "experiment_figure4",
    "experiment_figure5",
    "experiment_table1",
    "experiment_training",
    "experiment_finetune",
    "experiment_k_sweep",
    "experiment_state_ablation",
    "experiment_monolithic",
    "experiment_sim2real",
    "experiment_filelevel",
    "experiment_online_drl",
    "experiment_parallelism",
]
