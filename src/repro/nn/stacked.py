"""Population-vectorized policy engine: stacked-K forward/backward/Adam.

``train_population(batched=True)`` fused the K member *simulators* into one
vectorized ``step_second`` (PR 8), leaving the neural side as K independent
batch-1 networks: every population step paid K·layers Python dispatches, and
every update re-walked K autograd graphs.  This module stores the whole
population's weights as stacked ``(K, in, out)`` / ``(K, out)`` arrays and
advances all members with **one ``np.matmul`` per layer** — forward,
hand-rolled backward, and a stacked-K Adam step.

Bit-identity contract (DESIGN §17)
----------------------------------
Results are bit-identical per member to the scalar
:class:`~repro.core.ppo.PPOAgent` path, because every stacked operation is
either

* elementwise (tanh, exp, clip, Adam's in-place update sequence) — batching
  does not change per-element float arithmetic;
* a batched ``np.matmul`` over a leading stack axis, which numpy computes as
  the identical per-slice GEMM (``np.einsum`` is *not* used: its different
  reduction order breaks bit-identity);
* a row-contiguous reduction (``sum``/``mean``/``std`` over the batch or
  feature axis), which performs the same pairwise accumulation per row as
  the member-local reduction.

The hand-rolled backward replays the scalar autograd engine's exact
gradient-accumulation order (the reversed depth-first topological order of
``Tensor.backward``): the PPO ratio accumulates its unclipped-surrogate
contribution before the clipped one; the clamped log-std accumulates its
log-prob, σ-path and entropy contributions in that order; each residual
block's input takes the skip contribution before the matmul path; and the
``z·z`` / ``diff·diff`` duplicate-parent nodes accumulate as ``t + t``.
Per-member gradient clipping reproduces ``clip_grad_norm``'s Python-float
norm accumulation in optimizer parameter order, and unclipped members are
scaled by exactly 1.0 (a bitwise identity).

Partial populations (members that converged and deactivated) are handled by
*gathering* the active rows into contiguous stacks, updating, and scattering
back — never by zero-masking gradients, since ``x + 0.0`` is not a bitwise
identity for ``-0.0``.  Active members always share one Adam step count
(members deactivate monotonically and never rejoin), which the engine
asserts.

Member :class:`~repro.nn.module.Parameter` objects are rebound to row views
of the stacks, so per-member ``state_dict`` / ``load_state_dict`` /
checkpointing and the compiled inference plans (:mod:`repro.nn.plan`) keep
working unchanged and stay in sync with the stacked storage.  ``policy_old``
is *not* re-synced after stacked updates: nothing in the update reads it
(the ratio uses stored rollout log-probs), and the population evaluation
phase reloads checkpoints via ``load_state_dict``, which re-syncs it.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro import obs
from repro.core.ppo import PPOAgent, PPOConfig

__all__ = ["StackedPPOAgent"]

_LOG_2PI = math.log(2.0 * math.pi)
_ENTROPY_CONST = 0.5 + 0.5 * _LOG_2PI


def _ln_forward(x: np.ndarray, scale: np.ndarray, shift: np.ndarray, eps: float):
    """Stacked fused layernorm forward; returns (out, xhat, inv_std)."""
    mu = x.mean(axis=-1, keepdims=True)
    centered = x - mu
    var = (centered * centered).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = centered * inv_std
    return xhat * scale[:, None, :] + shift[:, None, :], xhat, inv_std


def _ln_backward(grad: np.ndarray, scale: np.ndarray, xhat: np.ndarray,
                 inv_std: np.ndarray):
    """Stacked layernorm backward; returns (dx, dscale, dshift)."""
    dxhat = grad * scale[:, None, :]
    dx = (
        dxhat
        - dxhat.mean(axis=-1, keepdims=True)
        - xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
    ) * inv_std
    dscale = (grad * xhat).sum(axis=1)
    dshift = grad.sum(axis=1)
    return dx, dscale, dshift


def _mm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Batched matmul over the stack axis (per-slice GEMM, bit-identical)."""
    return np.matmul(a, b)


def _mm_t(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Batched ``a^T @ b`` per stack slice via a transpose view."""
    return np.matmul(a.transpose(0, 2, 1), b)


class StackedPPOAgent:
    """K :class:`PPOAgent` members sharing stacked parameter storage.

    Parameters
    ----------
    state_dim, action_dim, config:
        Forwarded to each member agent.
    rngs:
        One RNG seed/generator per member — exactly what the scalar
        population path passes to each ``PPOAgent``, so member init weight
        draws (and later action noise) replay the identical streams.
    """

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        config: PPOConfig | None = None,
        *,
        rngs: Sequence,
    ) -> None:
        if not len(rngs):
            raise ValueError("StackedPPOAgent needs at least one member rng")
        self.members = [
            PPOAgent(state_dim, action_dim, config, rng=rng) for rng in rngs
        ]
        self.config = self.members[0].config
        self.k = len(self.members)
        self.lr = self.config.learning_rate
        self._stack_parameters()
        self._build_structure_index()
        n_params = len(self._params)
        self._flat_m = np.zeros_like(self._flat_params)
        self._flat_v = np.zeros_like(self._flat_params)
        self._flat_scratch = np.empty_like(self._flat_params)
        self._step_counts = np.zeros(self.k, dtype=np.int64)
        self._n_params = n_params

    # ------------------------------------------------------------ construction
    def _stack_parameters(self) -> None:
        """Stack member params to (K, …) and rebind members to row views.

        Every (K, *shape) stack is a segment view of ONE contiguous flat
        buffer, so the Adam epoch can run its in-place op sequence over
        the whole population's parameters/moments with ~a dozen numpy
        calls total instead of 12 × n_params — elementwise arithmetic is
        position-independent, so the fused sweep stays bit-identical.
        """
        param_lists = [m.optimizer.parameters for m in self.members]
        n = len(param_lists[0])
        if any(len(lst) != n for lst in param_lists):
            raise ValueError("members disagree on parameter count")
        shapes: list[tuple[int, ...]] = []
        fordered: list[bool] = []
        for j in range(n):
            d = param_lists[0][j].data
            shape = d.shape
            if any(lst[j].data.shape != shape for lst in param_lists):
                raise ValueError(f"parameter {j} shape mismatch across members")
            # BLAS kernels pick different accumulation orders per memory
            # layout, so bit-identity demands each stacked row keep the
            # scalar array's exact strides.  orthogonal() leaves wide
            # (in < out) weights Fortran-ordered; store those segments
            # transposed and expose (K, in, out) views over them.
            fordered.append(
                d.ndim == 2
                and d.flags["F_CONTIGUOUS"]
                and not d.flags["C_CONTIGUOUS"]
            )
            shapes.append(shape)
        self._shapes = shapes
        self._fordered = fordered
        sizes = [int(np.prod(s)) if s else 1 for s in shapes]
        self._sizes = sizes
        self._offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(int)
        self._member_size = int(self._offsets[-1])

        self._flat_params = np.empty(self.k * self._member_size)
        stacks = self._segment_views(self._flat_params, self.k)
        for j, stacked in enumerate(stacks):
            for i, lst in enumerate(param_lists):
                stacked[i] = lst[j].data
                # Row views: member state_dict/load_state_dict (in-place
                # writes) and inference plans stay synced with the stack.
                lst[j].data = stacked[i]
        self._params = stacks

    def _segment_views(self, flat: np.ndarray, rows: int) -> list[np.ndarray]:
        """Per-parameter (rows, *shape) views over one flat buffer.

        Fortran-ordered scalar weights get their segment stored transposed
        and exposed through ``transpose(0, 2, 1)`` so every row view has
        the scalar array's exact strides (see _stack_parameters).
        """
        views = []
        for a, b, shape, f in zip(
            self._offsets, self._offsets[1:], self._shapes, self._fordered
        ):
            if f:
                seg = flat[rows * a: rows * b].reshape((rows,) + shape[::-1])
                views.append(seg.transpose(0, 2, 1))
            else:
                views.append(flat[rows * a: rows * b].reshape((rows,) + shape))
        return views

    def _build_structure_index(self) -> None:
        """Map network structure to optimizer-order stack indices."""
        member = self.members[0]
        index_of = {id(p): j for j, p in enumerate(member.optimizer.parameters)}

        def ix(param) -> int:
            return index_of[id(param)]

        pol, val = member.policy, member.value
        self._ix_log_std = ix(pol.log_std)
        self._ix_p_embed = (ix(pol.embed.weight), ix(pol.embed.bias))
        self._ix_p_blocks = [
            (
                ix(b.fc1.weight), ix(b.fc1.bias), ix(b.fc2.weight), ix(b.fc2.bias),
                ix(b.norm1.scale), ix(b.norm1.shift), ix(b.norm2.scale), ix(b.norm2.shift),
            )
            for b in pol.blocks
        ]
        self._ix_p_mean = (ix(pol.mean_head.weight), ix(pol.mean_head.bias))
        self._ix_v_embed = (ix(val.embed.weight), ix(val.embed.bias))
        self._ix_v_blocks = [
            (ix(b.fc1.weight), ix(b.fc1.bias), ix(b.fc2.weight), ix(b.fc2.bias))
            for b in val.trunk if hasattr(b, "fc1")
        ]
        self._ix_v_head = (ix(val.head.weight), ix(val.head.bias))
        self._ln_eps = pol.blocks[0].norm1.eps if len(self._ix_p_blocks) else 1e-5
        self._log_std_lo, self._log_std_hi = pol.log_std_range
        self._mean_span = float(pol.mean_span)
        self._mean_center = float(pol.mean_center)

    # ---------------------------------------------------------------- forward
    def _policy_forward(self, P: list[np.ndarray], x: np.ndarray, cache: dict | None):
        """Stacked policy trunk: states (A,B,S) → (mean (A,B,3), lsc (A,3)).

        When ``cache`` is a dict, stores every intermediate the backward
        pass needs.
        """
        ew, eb = self._ix_p_embed
        e1 = _mm(x, P[ew]) + P[eb][:, None, :]
        h = np.tanh(e1)
        if cache is not None:
            cache["x"] = x
            cache["h0"] = h
            cache["blocks"] = []
        for bix in self._ix_p_blocks:
            w1, b1, w2, b2, s1, sh1, s2, sh2 = bix
            a1 = _mm(h, P[w1]) + P[b1][:, None, :]
            n1, xhat1, inv1 = _ln_forward(a1, P[s1], P[sh1], self._ln_eps)
            mask = n1 > 0
            r = np.where(mask, n1, 0.0)
            a2 = _mm(r, P[w2]) + P[b2][:, None, :]
            n2, xhat2, inv2 = _ln_forward(a2, P[s2], P[sh2], self._ln_eps)
            h_out = h + n2
            if cache is not None:
                cache["blocks"].append(
                    {"h_in": h, "xhat1": xhat1, "inv1": inv1, "mask": mask,
                     "r": r, "xhat2": xhat2, "inv2": inv2}
                )
            h = h_out
        t2 = np.tanh(h)
        mw, mb = self._ix_p_mean
        mh = _mm(t2, P[mw]) + P[mb][:, None, :]
        th = np.tanh(mh)
        mean = th * self._mean_span + self._mean_center
        lsc = np.clip(P[self._ix_log_std], self._log_std_lo, self._log_std_hi)
        if cache is not None:
            cache["t2"] = t2
            cache["th"] = th
            cache["lsc_mask"] = (
                (P[self._ix_log_std] >= self._log_std_lo)
                & (P[self._ix_log_std] <= self._log_std_hi)
            )
        return mean, lsc

    def _value_forward(self, P: list[np.ndarray], x: np.ndarray, cache: dict | None):
        """Stacked value trunk: states (A,B,S) → values (A,B)."""
        ew, eb = self._ix_v_embed
        e1 = _mm(x, P[ew]) + P[eb][:, None, :]
        h = np.tanh(e1)
        if cache is not None:
            cache["t0"] = h
            cache["blocks"] = []
        for w1, b1, w2, b2 in self._ix_v_blocks:
            a1 = _mm(h, P[w1]) + P[b1][:, None, :]
            t1 = np.tanh(a1)
            a2 = _mm(t1, P[w2]) + P[b2][:, None, :]
            h_out = h + a2
            if cache is not None:
                cache["blocks"].append({"h_in": h, "t1": t1})
            h = h_out
        hw, hb = self._ix_v_head
        out = _mm(h, P[hw]) + P[hb][:, None, :]
        if cache is not None:
            cache["hN"] = h
        return out[:, :, 0]

    # ----------------------------------------------------------------- acting
    def act_all(
        self,
        states: np.ndarray,
        *,
        active=None,
        deterministic: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """All members act on their own state: ``(K, S) → ((K, 3), (K,))``.

        Replays the scalar per-member draw order exactly: action noise is
        drawn from each *active* member's own RNG in ascending member
        order, one ``standard_normal(action_dim)`` call per member (none
        for inactive members or deterministic mode).  Inactive members'
        rows are computed but carry no side effects — callers ignore them,
        matching the scalar loop that skips those members entirely.
        """
        x = np.asarray(states, dtype=float)[:, None, :]
        mean_b, lsc = self._policy_forward(self._params, x, None)
        mean = mean_b[:, 0, :]
        if deterministic:
            actions = mean.copy()
        else:
            std = np.exp(lsc)
            noise = np.zeros_like(mean)
            indices = range(self.k) if active is None else np.flatnonzero(active)
            for i in indices:
                noise[i] = self.members[i].rng.standard_normal(mean.shape[-1:])
            actions = mean + std * noise
        std_lp = np.exp(lsc)
        z = (actions - mean) / std_lp
        per_dim = (z * z) * -0.5 - lsc - 0.5 * _LOG_2PI
        return actions, per_dim.sum(axis=-1)

    def set_lr_progress(self, fraction: float) -> None:
        """Linearly anneal the shared learning rate (scalar-path formula)."""
        fraction = min(1.0, max(0.0, fraction))
        cfg = self.config
        self.lr = cfg.learning_rate + fraction * (
            cfg.final_learning_rate - cfg.learning_rate
        )

    # ----------------------------------------------------------------- update
    def update_all(self, active_indices) -> list[dict[str, float]]:
        """One PPO update for every member in ``active_indices`` at once.

        Equivalent to calling ``members[i].update()`` for each active ``i``
        (same epochs, loss, gradient clipping, Adam arithmetic — see the
        module docstring's bit-identity argument), executed as stacked
        array programs.  Returns the per-member diagnostics dicts and
        emits the same ``ppo/<key>`` metric series the scalar agents do.
        """
        idx = np.asarray(active_indices, dtype=np.int64)
        if idx.size == 0:
            return []
        counts = self._step_counts[idx]
        if not np.all(counts == counts[0]):
            raise RuntimeError(
                "active members have diverged Adam step counts; the stacked "
                "engine requires the monotone-deactivation population cadence"
            )
        batches = [self.members[i].memory.arrays() for i in idx]
        lengths = {b[0].shape[0] for b in batches}
        if len(lengths) != 1:
            raise RuntimeError(
                f"active members hold unequal rollout lengths {sorted(lengths)}"
            )
        states = np.stack([b[0] for b in batches])
        actions = np.stack([b[1] for b in batches])
        old_log_probs = np.stack([b[2] for b in batches])
        returns = np.stack([b[3] for b in batches])

        rows = int(idx.size)
        full = rows == self.k and np.array_equal(idx, np.arange(self.k))
        if full:
            flat_p, flat_m, flat_v = self._flat_params, self._flat_m, self._flat_v
            flat_scr = self._flat_scratch
            params = self._params
            m_views = v_views = None
        else:
            # Gather the active rows into contiguous flat buffers — never
            # zero-mask: x + 0.0 is not a bitwise identity for -0.0.
            flat_p = np.empty(rows * self._member_size)
            flat_m = np.empty_like(flat_p)
            flat_v = np.empty_like(flat_p)
            flat_scr = np.empty_like(flat_p)
            params = self._segment_views(flat_p, rows)
            m_views = self._segment_views(flat_m, rows)
            v_views = self._segment_views(flat_v, rows)
            full_m = self._segment_views(self._flat_m, self.k)
            full_v = self._segment_views(self._flat_v, self.k)
            for j in range(self._n_params):
                params[j][...] = self._params[j][idx]
                m_views[j][...] = full_m[j][idx]
                v_views[j][...] = full_v[j][idx]
        flat_g = np.empty_like(flat_p)
        grad_views = self._segment_views(flat_g, rows)

        base_count = int(counts[0])
        transitions = int(states.shape[0] * states.shape[1])
        with obs.span("ppo/update_all", members=rows, transitions=transitions):
            for epoch in range(self.config.update_epochs):
                stats_rows = self._update_epoch(
                    params, states, actions, old_log_probs, returns,
                    grad_views, flat_p, flat_g, flat_m, flat_v, flat_scr,
                    base_count + epoch + 1,
                )

        if not full:
            for j in range(self._n_params):
                self._params[j][idx] = params[j]
                full_m[j][idx] = m_views[j]
                full_v[j][idx] = v_views[j]
        self._step_counts[idx] += self.config.update_epochs

        sess = obs.active()
        results: list[dict[str, float]] = []
        for row, i in enumerate(idx):
            member = self.members[i]
            member.updates += 1
            stats = {key: float(col[row]) for key, col in stats_rows.items()}
            if sess is not None:
                for key, value in stats.items():
                    sess.metric(f"ppo/{key}", value, t=float(member.updates))
            results.append(stats)
        return results

    def _update_epoch(
        self,
        P: list[np.ndarray],
        states: np.ndarray,
        actions: np.ndarray,
        old_log_probs: np.ndarray,
        returns: np.ndarray,
        grad_views: list[np.ndarray],
        flat_p: np.ndarray,
        flat_g: np.ndarray,
        flat_m: np.ndarray,
        flat_v: np.ndarray,
        flat_scr: np.ndarray,
        step_count: int,
    ) -> dict[str, np.ndarray]:
        """One stacked epoch: forward, loss, backward, clip, Adam."""
        cfg = self.config
        A, B = returns.shape
        inv_b = 1.0 / float(B)

        # ------------------------------------------------------------ forward
        pcache: dict = {}
        vcache: dict = {}
        mean, lsc = self._policy_forward(P, states, pcache)
        values = self._value_forward(P, states, vcache)
        std = np.exp(lsc)
        std_b = std[:, None, :]
        diff_a = actions - mean
        z = diff_a / std_b
        zz = z * z
        p3 = zz * -0.5 - lsc[:, None, :] - 0.5 * _LOG_2PI
        log_probs = p3.sum(axis=-1)
        entropy = (lsc + _ENTROPY_CONST).sum(axis=-1)

        advantages = returns - values
        if cfg.normalize_advantages and B > 1:
            advantages = (advantages - advantages.mean(axis=1, keepdims=True)) / (
                advantages.std(axis=1, keepdims=True) + 1e-8
            )

        d = log_probs - old_log_probs
        ratio = np.exp(d)
        surr1 = ratio * advantages
        clip_mask = (ratio >= 1.0 - cfg.clip_epsilon) & (ratio <= 1.0 + cfg.clip_epsilon)
        surr2 = np.clip(ratio, 1.0 - cfg.clip_epsilon, 1.0 + cfg.clip_epsilon) * advantages
        take_a = surr1 <= surr2
        mn = np.where(take_a, surr1, surr2)
        actor_loss = -(mn.sum(axis=1) * inv_b)
        diff_v = values - returns
        c1 = diff_v * diff_v
        critic_loss = (c1.sum(axis=1) * inv_b) * 0.5
        loss = (actor_loss + critic_loss * cfg.critic_coef) - entropy * cfg.entropy_coef

        # ----------------------------------------------------------- backward
        # Gradient flow replays the scalar engine's reversed depth-first
        # topological order; every accumulation below happens in the same
        # sequence (and with the same float expressions) as Tensor.backward.
        # Each gradient lands in its segment of the contiguous ``flat_g``
        # buffer so clip + Adam can run on one 1-D array (see _adam_step).
        grads = grad_views

        g_mn = np.full((A, B), -1.0 * inv_b)
        g_surr1 = g_mn * take_a
        g_surr2 = g_mn * ~take_a
        g_ratio = g_surr1 * advantages          # unclipped surrogate first,
        g_ratio = g_ratio + (g_surr2 * advantages) * clip_mask  # then the clip path
        g_d = g_ratio * ratio
        g_p3 = np.broadcast_to(g_d[:, :, None], p3.shape).copy()
        lsc_acc = (-g_p3).sum(axis=1)           # log-prob contribution
        g_zz = g_p3 * -0.5
        t_dup = g_zz * z
        g_z = t_dup + t_dup                     # duplicate-parent z·z
        g_diff_a = g_z / std_b
        g_mean = -g_diff_a

        # Policy mean head + trunk.
        mw, mb = self._ix_p_mean
        g_th = g_mean * self._mean_span
        g_mh = g_th * (1.0 - pcache["th"] ** 2)
        grads[mb][...] = g_mh.sum(axis=1)
        grads[mw][...] = _mm_t(pcache["t2"], g_mh)
        g_t2 = _mm(g_mh, P[mw].transpose(0, 2, 1))
        g_h = g_t2 * (1.0 - pcache["t2"] ** 2)
        for bix, bc in zip(reversed(self._ix_p_blocks), reversed(pcache["blocks"])):
            w1, b1, w2, b2, s1, sh1, s2, sh2 = bix
            dx2, ds2, dsh2 = _ln_backward(g_h, P[s2], bc["xhat2"], bc["inv2"])
            grads[s2][...] = ds2
            grads[sh2][...] = dsh2
            grads[b2][...] = dx2.sum(axis=1)
            grads[w2][...] = _mm_t(bc["r"], dx2)
            g_r = _mm(dx2, P[w2].transpose(0, 2, 1))
            g_n1 = g_r * bc["mask"]
            dx1, ds1, dsh1 = _ln_backward(g_n1, P[s1], bc["xhat1"], bc["inv1"])
            grads[s1][...] = ds1
            grads[sh1][...] = dsh1
            grads[b1][...] = dx1.sum(axis=1)
            grads[w1][...] = _mm_t(bc["h_in"], dx1)
            # Skip contribution first, then the matmul path (scalar order).
            g_h = g_h + _mm(dx1, P[w1].transpose(0, 2, 1))
        ew, eb = self._ix_p_embed
        g_e1 = g_h * (1.0 - pcache["h0"] ** 2)
        grads[eb][...] = g_e1.sum(axis=1)
        grads[ew][...] = _mm_t(pcache["x"], g_e1)

        # σ path into the clamped log-std (processed after the mean trunk).
        g_std = (((-g_z) * diff_a) / (std_b ** 2)).sum(axis=1)
        lsc_acc = lsc_acc + g_std * std

        # Critic subtree.
        g_c1 = np.full((A, B), ((1.0 * cfg.critic_coef) * 0.5) * inv_b)
        t_dup_v = g_c1 * diff_v
        g_values = t_dup_v + t_dup_v
        g_head = g_values[:, :, None]
        hw, hb = self._ix_v_head
        grads[hb][...] = g_head.sum(axis=1)
        grads[hw][...] = _mm_t(vcache["hN"], g_head)
        g_h = _mm(g_head, P[hw].transpose(0, 2, 1))
        for bix, bc in zip(reversed(self._ix_v_blocks), reversed(vcache["blocks"])):
            w1, b1, w2, b2 = bix
            grads[b2][...] = g_h.sum(axis=1)
            grads[w2][...] = _mm_t(bc["t1"], g_h)
            g_t1 = _mm(g_h, P[w2].transpose(0, 2, 1))
            g_a1 = g_t1 * (1.0 - bc["t1"] ** 2)
            grads[b1][...] = g_a1.sum(axis=1)
            grads[w1][...] = _mm_t(bc["h_in"], g_a1)
            g_h = g_h + _mm(g_a1, P[w1].transpose(0, 2, 1))
        vew, veb = self._ix_v_embed
        g_e1v = g_h * (1.0 - vcache["t0"] ** 2)
        grads[veb][...] = g_e1v.sum(axis=1)
        grads[vew][...] = _mm_t(states, g_e1v)

        # Entropy contribution last, then through the log-std clip mask.
        lsc_acc = lsc_acc + np.full((A, lsc.shape[-1]), -1.0 * cfg.entropy_coef)
        grads[self._ix_log_std][...] = lsc_acc * pcache["lsc_mask"]

        # ---------------------------------------------- clip_grad_norm + Adam
        self._clip_grad_norm(grads, cfg.max_grad_norm, A)
        self._adam_step(flat_p, flat_g, flat_m, flat_v, flat_scr, step_count)

        # -------------------------------------------------------- diagnostics
        return {
            "loss": loss,
            "actor_loss": actor_loss,
            "critic_loss": critic_loss,
            "entropy": entropy,
            "mean_ratio": ratio.mean(axis=1),
            "mean_return": returns.mean(axis=1),
            "approx_kl": np.mean(old_log_probs - log_probs, axis=1),
            "clip_fraction": np.mean(np.abs(ratio - 1.0) > cfg.clip_epsilon, axis=1),
        }

    def _clip_grad_norm(self, grads: list[np.ndarray], max_norm: float, rows: int) -> None:
        """Per-member global-norm clip, replaying the scalar float order.

        The norm accumulates ``float(np.dot(flat, flat))`` per parameter in
        optimizer order (Python-float addition, like ``clip_grad_norm``);
        unclipped members scale by exactly 1.0 — a bitwise identity — so
        one in-place multiply serves the whole stack.
        """
        scale = np.ones(rows)
        any_clipped = False
        for row in range(rows):
            total = 0.0
            for g in grads:
                flat = g[row].ravel()
                total += float(np.dot(flat, flat))
            norm = float(np.sqrt(total))
            if norm > max_norm and norm > 0.0:
                scale[row] = max_norm / norm
                any_clipped = True
        if any_clipped:
            for g in grads:
                g *= scale.reshape((rows,) + (1,) * (g.ndim - 1))

    def _adam_step(
        self,
        p: np.ndarray,
        g: np.ndarray,
        m: np.ndarray,
        v: np.ndarray,
        s: np.ndarray,
        step_count: int,
    ) -> None:
        """Fused stacked Adam over the flat 1-D buffers.

        The scalar optimizer runs its in-place op sequence once per
        parameter; every op is elementwise, so running the identical
        sequence once over the concatenated flat buffers produces the
        same bits in every slot while collapsing ~25 × 12 small numpy
        dispatches per epoch into 12 large ones — the difference between
        the 2× and 5×+ stacked speedup at K ≥ 16.
        """
        b1, b2 = 0.9, 0.999
        eps = 1e-8
        correction1 = 1.0 - b1 ** step_count
        correction2 = 1.0 - b2 ** step_count
        scale = self.lr / correction1
        inv_sqrt_c2 = 1.0 / np.sqrt(correction2)
        m *= b1
        np.multiply(g, 1.0 - b1, out=s)
        m += s
        v *= b2
        np.multiply(g, g, out=s)
        s *= 1.0 - b2
        v += s
        np.sqrt(v, out=s)
        s *= inv_sqrt_c2
        s += eps
        np.divide(m, s, out=s)
        s *= scale
        p -= s
