"""Save and load module parameters as ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.module import Module


def save_state(module: Module, path: str | Path) -> None:
    """Write all parameters of ``module`` to ``path`` (numpy ``.npz``).

    Dotted parameter names are preserved as archive keys.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    np.savez(path, **state)


def load_state(module: Module, path: str | Path) -> None:
    """Load parameters saved by :func:`save_state` into ``module`` (strict)."""
    with np.load(Path(path)) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
