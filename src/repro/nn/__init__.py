"""Neural-network building blocks over :mod:`repro.autograd`.

Provides exactly what the AutoMDT networks need (and nothing exotic):
linear layers, layer normalization, the two residual-block variants the
paper describes, Adam/SGD optimizers, parameter (de)serialization, and the
diagonal-Gaussian / categorical policy distributions.
"""

from repro.nn.distributions import Categorical, DiagonalGaussian
from repro.nn.layers import Identity, Linear, LayerNorm, ReLU, Sequential, Tanh
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, Optimizer, clip_grad_norm
from repro.nn.residual import ResidualBlock
from repro.nn.serialization import load_state, save_state

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "LayerNorm",
    "Tanh",
    "ReLU",
    "Identity",
    "Sequential",
    "ResidualBlock",
    "Optimizer",
    "Adam",
    "SGD",
    "clip_grad_norm",
    "DiagonalGaussian",
    "Categorical",
    "save_state",
    "load_state",
]
