"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape: tuple[int, int], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform init for a ``(fan_in, fan_out)`` weight matrix."""
    fan_in, fan_out = shape
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def orthogonal(shape: tuple[int, int], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal init (the common choice for PPO policy/value layers)."""
    rows, cols = shape
    flat = rng.normal(size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    # Make the decomposition unique and the distribution uniform (Haar).
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros init (biases)."""
    return np.zeros(shape)
