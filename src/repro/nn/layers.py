"""Core layers: Linear, LayerNorm, activations, Sequential."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, layernorm, relu, tanh
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.rng import as_generator


class Linear(Module):
    """Affine map ``y = x W + b`` with orthogonal weight init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        rng: int | np.random.Generator | None = None,
        gain: float = np.sqrt(2.0),
        bias: bool = True,
    ) -> None:
        super().__init__()
        rng = as_generator(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.orthogonal((in_features, out_features), rng, gain=gain))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Linear({self.in_features}, {self.out_features})"


class LayerNorm(Module):
    """Layer normalization over the last dimension with learnable scale/shift."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.scale = Parameter(np.ones(dim))
        self.shift = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        return layernorm(x, self.scale, self.shift, eps=self.eps)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LayerNorm({self.dim})"


class Tanh(Module):
    """Tanh activation as a module."""

    def forward(self, x: Tensor) -> Tensor:
        return tanh(x)


class ReLU(Module):
    """ReLU activation as a module."""

    def forward(self, x: Tensor) -> Tensor:
        return relu(x)


class Identity(Module):
    """No-op module."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._items: list[Module] = []
        for i, module in enumerate(modules):
            self.add_module(str(i), module)
            self._items.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._items:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, idx: int) -> Module:
        return self._items[idx]
