"""Compiled no-grad inference plans: zero-``Tensor`` policy/value queries.

Rollout-time policy queries dominate PPO wall-clock, and under ``no_grad()``
the autograd :class:`~repro.autograd.tensor.Tensor` layer contributes nothing
but per-op Python dispatch and object churn: every ``act()`` still allocates
~50 ``Tensor`` wrappers for a graph that is never walked.  A *plan* compiles
a :class:`~repro.core.networks.PolicyNetwork` / ``ValueNetwork`` once into a
flat straight-line numpy program over the raw parameter arrays with
preallocated ping-pong buffers, so executing it allocates **zero Tensor
objects** (only the returned action array and a few tiny temporaries).

Bit-identity argument (DESIGN §17): every plan step performs *the same numpy
call on the same float64 values in the same order* as the Tensor forward it
replaces — ``np.matmul`` then in-place bias add (``a + b`` and
``np.add(a, b, out=...)`` are the same ufunc), ``np.tanh``, the fused
layernorm's exact mean/variance sequence, ``np.clip`` for the log-std bound,
and ``np.where``-equivalent masking for ReLU (mask + ``copyto`` so NaN and
signed-zero semantics match ``np.where(mask, x, 0.0)`` exactly).  Sampling
and log-prob replicate :class:`~repro.nn.distributions.DiagonalGaussian`
arithmetic term by term, including the RNG call sequence (one
``standard_normal(mean.shape)`` draw per stochastic act).  Plans therefore
return bit-identical actions, log-probs and values to the Tensor path.

Plans hold references to the network's :class:`~repro.nn.module.Parameter`
objects and read ``param.data`` at execution time, so they stay valid under
in-place optimizer updates, ``load_state_dict``, *and* the stacked
population engine's rebinding of member parameters to row views of the
``(K, ...)`` stacks (:mod:`repro.nn.stacked`).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["PolicyPlan", "ValuePlan", "PlanUnsupported"]

_LOG_2PI = math.log(2.0 * math.pi)


class PlanUnsupported(TypeError):
    """The network's structure is not one the plan compiler understands."""


class _BlockPlan:
    """Compiled residual block: fc1 → [norm1] → act → fc2 → [norm2] → +skip."""

    __slots__ = ("w1", "b1", "w2", "b2", "norm1", "norm2", "eps1", "eps2", "relu")

    def __init__(self, block) -> None:
        self.w1 = block.fc1.weight
        self.b1 = block.fc1.bias
        self.w2 = block.fc2.weight
        self.b2 = block.fc2.bias
        self.norm1 = (block.norm1.scale, block.norm1.shift) if block.norm1 is not None else None
        self.norm2 = (block.norm2.scale, block.norm2.shift) if block.norm2 is not None else None
        self.eps1 = block.norm1.eps if block.norm1 is not None else 0.0
        self.eps2 = block.norm2.eps if block.norm2 is not None else 0.0
        if block.activation not in ("relu", "tanh"):
            raise PlanUnsupported(f"unknown block activation {block.activation!r}")
        self.relu = block.activation == "relu"


def _layernorm_inplace(x: np.ndarray, scale: np.ndarray, shift: np.ndarray,
                       eps: float, square: np.ndarray) -> None:
    """In-place fused layernorm on a 1-D buffer, matching the Tensor op.

    Mean/variance reductions use the same ``mean(axis=-1, keepdims=True)``
    calls as :func:`repro.autograd.tensor.layernorm`, so the float sequence
    is identical; ``square`` is a same-shaped scratch buffer.
    """
    mu = x.mean(axis=-1, keepdims=True)
    x -= mu
    np.multiply(x, x, out=square)
    var = square.mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x *= inv_std
    x *= scale
    x += shift


def _relu_inplace(x: np.ndarray, mask: np.ndarray, nmask: np.ndarray) -> None:
    """In-place ReLU with exact ``np.where(x > 0, x, 0.0)`` semantics."""
    np.greater(x, 0.0, out=mask)
    np.logical_not(mask, out=nmask)
    np.copyto(x, 0.0, where=nmask)


class _TrunkPlan:
    """Shared embed → blocks machinery for both network plans."""

    def __init__(self, embed, blocks, hidden_dim: int, state_dim: int) -> None:
        self.embed_w = embed.weight
        self.embed_b = embed.bias
        if self.embed_b is None:
            raise PlanUnsupported("plan compiler expects a biased embed layer")
        self.blocks = [_BlockPlan(b) for b in blocks]
        self.state_dim = int(state_dim)
        # Ping-pong buffers: ``h`` carries the trunk state, ``f`` the
        # residual branch, ``sq`` the layernorm square scratch.
        self._h = np.empty(hidden_dim)
        self._f = np.empty(hidden_dim)
        self._sq = np.empty(hidden_dim)
        self._mask = np.empty(hidden_dim, dtype=bool)
        self._nmask = np.empty(hidden_dim, dtype=bool)

    def run(self, state: np.ndarray) -> np.ndarray:
        """Embed + tanh + residual blocks; returns the ``h`` buffer."""
        h, f, sq = self._h, self._f, self._sq
        np.matmul(state, self.embed_w.data, out=h)
        h += self.embed_b.data
        np.tanh(h, out=h)
        for blk in self.blocks:
            np.matmul(h, blk.w1.data, out=f)
            if blk.b1 is not None:
                f += blk.b1.data
            if blk.norm1 is not None:
                _layernorm_inplace(f, blk.norm1[0].data, blk.norm1[1].data, blk.eps1, sq)
            if blk.relu:
                _relu_inplace(f, self._mask, self._nmask)
            else:
                np.tanh(f, out=f)
            np.matmul(f, blk.w2.data, out=sq)
            if blk.b2 is not None:
                sq += blk.b2.data
            if blk.norm2 is not None:
                _layernorm_inplace(sq, blk.norm2[0].data, blk.norm2[1].data, blk.eps2, f)
            h += sq
        return h


class PolicyPlan:
    """Compiled single-state forward/sample/log-prob for a PolicyNetwork.

    ``act`` accepts exactly the 1-D ``(state_dim,)`` states the rollout hot
    paths produce; callers keep the Tensor path for anything else.
    """

    def __init__(self, policy) -> None:
        try:
            self.trunk = _TrunkPlan(
                policy.embed, list(policy.blocks), policy.embed.out_features,
                policy.state_dim,
            )
            self.mean_w = policy.mean_head.weight
            self.mean_b = policy.mean_head.bias
            self.log_std = policy.log_std
            self.log_std_lo, self.log_std_hi = policy.log_std_range
            self.mean_center = float(policy.mean_center)
            self.mean_span = float(policy.mean_span)
            action_dim = int(policy.action_dim)
        except AttributeError as exc:  # non-standard policy object
            raise PlanUnsupported(str(exc)) from exc
        if self.mean_b is None:
            raise PlanUnsupported("plan compiler expects a biased mean head")
        self._mean = np.empty(action_dim)
        self._lsc = np.empty(action_dim)

    def mean_and_log_std(self, state: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Forward pass: (mean, clipped log-std) as reused plan buffers."""
        if state.shape != (self.trunk.state_dim,):
            raise ValueError(f"plan expects a ({self.trunk.state_dim},) state, got {state.shape}")
        h = self.trunk.run(state)
        np.tanh(h, out=h)
        mean = self._mean
        np.matmul(h, self.mean_w.data, out=mean)
        mean += self.mean_b.data
        np.tanh(mean, out=mean)
        mean *= self.mean_span
        mean += self.mean_center
        np.clip(self.log_std.data, self.log_std_lo, self.log_std_hi, out=self._lsc)
        return mean, self._lsc

    def act(
        self,
        state: np.ndarray,
        rng: np.random.Generator | None,
        *,
        deterministic: bool = False,
        want_log_prob: bool = True,
    ) -> tuple[np.ndarray, float]:
        """One policy query: ``(action, log_prob)``, bit-identical to
        ``PolicyNetwork.forward`` + ``DiagonalGaussian.sample/log_prob``.

        The returned action is always a fresh array (safe to alias in
        rollout memories); ``log_prob`` is 0.0 when ``want_log_prob`` is
        off (production controllers never read it).
        """
        mean, lsc = self.mean_and_log_std(state)
        if deterministic:
            action = mean.copy()
        else:
            noise = rng.standard_normal(mean.shape)
            action = mean + np.exp(lsc) * noise
        if not want_log_prob:
            return action, 0.0
        std = np.exp(lsc)
        z = (action - mean) / std
        per_dim = (z * z) * -0.5 - lsc - 0.5 * _LOG_2PI
        return action, float(per_dim.sum(axis=-1))


class ValuePlan:
    """Compiled single-state critic query for a ValueNetwork."""

    def __init__(self, value) -> None:
        try:
            items = list(value.trunk)
            if not items or type(items[0]).__name__ != "Tanh":
                raise PlanUnsupported("value trunk must start with Tanh")
            if not all(hasattr(m, "fc1") for m in items[1:]):
                raise PlanUnsupported("value trunk must be Tanh + residual blocks")
            self.trunk = _TrunkPlan(
                value.embed, items[1:], value.embed.out_features, value.state_dim,
            )
            self.head_w = value.head.weight
            self.head_b = value.head.bias
        except AttributeError as exc:
            raise PlanUnsupported(str(exc)) from exc
        if self.head_b is None:
            raise PlanUnsupported("plan compiler expects a biased value head")
        self._out = np.empty(1)

    def __call__(self, state: np.ndarray) -> float:
        if state.shape != (self.trunk.state_dim,):
            raise ValueError(f"plan expects a ({self.trunk.state_dim},) state, got {state.shape}")
        h = self.trunk.run(state)
        out = self._out
        np.matmul(h, self.head_w.data, out=out)
        out += self.head_b.data
        return float(out[0])
