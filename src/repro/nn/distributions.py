"""Policy distributions: diagonal Gaussian (continuous) and Categorical.

The paper's production policy samples a continuous action from a diagonal
Gaussian and rounds it to integer thread counts (§IV-F); the discrete
variant (evaluated in Fig. 4 and shown to fail) uses independent Categorical
heads.
"""

from __future__ import annotations

import math

import numpy as np

from repro.autograd.functional import log_softmax
from repro.autograd.tensor import Tensor, exp

_LOG_2PI = math.log(2.0 * math.pi)


class DiagonalGaussian:
    """Independent normal distribution per action dimension.

    ``mean`` has shape ``(..., d)``; ``log_std`` has shape ``(d,)`` or
    broadcastable to mean.  Both may be differentiable tensors.
    """

    def __init__(self, mean: Tensor, log_std: Tensor) -> None:
        self.mean = mean if isinstance(mean, Tensor) else Tensor(mean)
        self.log_std = log_std if isinstance(log_std, Tensor) else Tensor(log_std)

    @property
    def std(self) -> np.ndarray:
        """Standard deviation as a plain array."""
        return np.exp(self.log_std.data)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw a reparameterization-free sample (plain array, no gradient)."""
        noise = rng.standard_normal(self.mean.shape)
        return self.mean.data + np.broadcast_to(self.std, self.mean.shape) * noise

    def mode(self) -> np.ndarray:
        """The distribution mode (= mean), used for deterministic rollouts."""
        return self.mean.data.copy()

    def log_prob(self, actions: np.ndarray) -> Tensor:
        """Differentiable log density of ``actions``, summed over dims."""
        actions_t = Tensor(np.asarray(actions, dtype=np.float64))
        std = exp(self.log_std)
        z = (actions_t - self.mean) / std
        per_dim = (z * z) * -0.5 - self.log_std - 0.5 * _LOG_2PI
        return per_dim.sum(axis=-1)

    def entropy(self) -> Tensor:
        """Differentiable entropy summed over action dimensions.

        Independent of the mean; shape follows ``log_std``.
        """
        return (self.log_std + (0.5 + 0.5 * _LOG_2PI)).sum(axis=-1)


class Categorical:
    """Categorical distribution parameterized by unnormalized logits.

    ``logits`` has shape ``(..., n)``.
    """

    def __init__(self, logits: Tensor) -> None:
        self.logits = logits if isinstance(logits, Tensor) else Tensor(logits)

    def probs(self) -> np.ndarray:
        """Normalized probabilities as a plain array."""
        shifted = self.logits.data - self.logits.data.max(axis=-1, keepdims=True)
        exps = np.exp(shifted)
        return exps / exps.sum(axis=-1, keepdims=True)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw integer category indices (plain array)."""
        p = self.probs()
        flat = p.reshape(-1, p.shape[-1])
        cumulative = np.cumsum(flat, axis=-1)
        draws = rng.random((flat.shape[0], 1))
        idx = (draws > cumulative).sum(axis=-1)
        return idx.reshape(p.shape[:-1])

    def mode(self) -> np.ndarray:
        """Most likely category per batch element."""
        return self.probs().argmax(axis=-1)

    def log_prob(self, actions: np.ndarray) -> Tensor:
        """Differentiable log probability of integer ``actions``."""
        logp = log_softmax(self.logits, axis=-1)
        actions = np.asarray(actions, dtype=int)
        if logp.ndim == 1:
            return logp[int(actions)]
        batch_index = np.arange(logp.shape[0])
        return logp[batch_index, actions.reshape(-1)]

    def entropy(self) -> Tensor:
        """Differentiable entropy per batch element."""
        logp = log_softmax(self.logits, axis=-1)
        p = Tensor(self.probs())
        return -(p * logp).sum(axis=-1)
