"""Module base class: parameter registration, traversal, state dicts."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is a trainable parameter of a module."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for layers and models.

    Submodules and parameters are discovered by attribute scan (assign them
    as attributes, as in PyTorch).  Lists of submodules should be wrapped in
    :class:`repro.nn.layers.Sequential` or assigned via :meth:`add_module`.
    """

    def __init__(self) -> None:
        self._modules: dict[str, Module] = {}
        self._parameters: dict[str, Parameter] = {}

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def add_module(self, name: str, module: "Module") -> None:
        """Register a submodule under an explicit name."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------- traversal
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        """All trainable parameters, depth-first."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------ state dict
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameter arrays keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter arrays saved by :meth:`state_dict` (strict)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: saved {value.shape}, model {param.data.shape}"
                )
            param.data[...] = value

    def copy_from(self, other: "Module") -> None:
        """In-place copy of another module's parameters (e.g. old policy sync)."""
        self.load_state_dict(other.state_dict())

    # ---------------------------------------------------------------- calling
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
