"""Residual blocks, in the two variants the AutoMDT paper describes.

Policy network (§IV-D3): "Each residual block comprises two linear
transformations interleaved with layer normalization and ReLU activations,
along with a skip connection that adds the input directly to the output."

Value network (§IV-D4): "a custom residual block structure with Tanh
activations ... two sequential linear layers and ... a skip connection."
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, relu, tanh
from repro.nn.layers import LayerNorm, Linear
from repro.nn.module import Module
from repro.utils.errors import ConfigError
from repro.utils.rng import as_generator


class ResidualBlock(Module):
    """``x + f(x)`` where ``f`` = Linear → [LayerNorm] → act → Linear → [LayerNorm].

    Parameters
    ----------
    dim:
        Feature dimension (input and output are the same width — required
        for the additive skip).
    activation:
        ``"relu"`` (policy variant) or ``"tanh"`` (value variant).
    layer_norm:
        Whether to interleave layer normalization (the policy variant uses
        it; the value variant uses plain linear layers).
    """

    def __init__(
        self,
        dim: int,
        *,
        activation: str = "relu",
        layer_norm: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if activation not in ("relu", "tanh"):
            raise ConfigError(f"activation must be 'relu' or 'tanh', got {activation!r}")
        rng = as_generator(rng)
        self.dim = dim
        self.activation = activation
        self.fc1 = Linear(dim, dim, rng=rng)
        self.fc2 = Linear(dim, dim, rng=rng)
        if layer_norm:
            self.norm1 = LayerNorm(dim)
            self.norm2 = LayerNorm(dim)
        else:
            self.norm1 = None
            self.norm2 = None

    def _act(self, x: Tensor) -> Tensor:
        return relu(x) if self.activation == "relu" else tanh(x)

    def forward(self, x: Tensor) -> Tensor:
        out = self.fc1(x)
        if self.norm1 is not None:
            out = self.norm1(out)
        out = self._act(out)
        out = self.fc2(out)
        if self.norm2 is not None:
            out = self.norm2(out)
        return x + out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ResidualBlock(dim={self.dim}, activation={self.activation!r})"
