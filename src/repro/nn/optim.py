"""Gradient-descent optimizers: SGD and Adam, plus global-norm clipping.

Adam follows Kingma & Ba (2015) with bias correction; the paper's Algorithm 2
updates both networks with Adam.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def clip_grad_norm(parameters: Sequence[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.
    """
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for g in grads:
        flat = g.ravel()
        total += float(np.dot(flat, flat))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for g in grads:
            g *= scale
    return norm


class Optimizer:
    """Base optimizer: holds parameters, provides ``zero_grad``."""

    def __init__(self, parameters: Sequence[Tensor]) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Vanilla stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Tensor], lr: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one update using the stored gradients."""
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam optimizer with bias-corrected first/second moment estimates."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 3e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        # Reusable scratch buffers keep the hot update loop allocation-free
        # (in-place numpy ops, per the hpc-parallel optimization guide).
        self._scratch = [np.empty_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one Adam update using the stored gradients (in place)."""
        self._step_count += 1
        b1, b2 = self.beta1, self.beta2
        correction1 = 1.0 - b1**self._step_count
        correction2 = 1.0 - b2**self._step_count
        scale = self.lr / correction1
        inv_sqrt_c2 = 1.0 / np.sqrt(correction2)
        for p, m, v, scratch in zip(self.parameters, self._m, self._v, self._scratch):
            if p.grad is None:
                continue
            g = p.grad
            # m = b1 m + (1 - b1) g ; v = b2 v + (1 - b2) g²
            m *= b1
            np.multiply(g, 1.0 - b1, out=scratch)
            m += scratch
            v *= b2
            np.multiply(g, g, out=scratch)
            scratch *= 1.0 - b2
            v += scratch
            # p -= lr * m̂ / (sqrt(v̂) + eps), all in scratch
            np.sqrt(v, out=scratch)
            scratch *= inv_sqrt_c2
            scratch += self.eps
            np.divide(m, scratch, out=scratch)
            scratch *= scale
            p.data -= scratch
