"""One fleet-scheduled transfer: the full verified stack, run in slices.

A :class:`FleetJob` owns a complete per-transfer pipeline — emulated
testbed, :class:`~repro.transfer.engine.ModularTransferEngine`,
:class:`~repro.transfer.supervisor.TransferSupervisor` and
:class:`~repro.transfer.integrity.VerifiedTransfer` — and exposes exactly
one operation to the scheduler: *run a bounded slice of virtual time under
a bandwidth cap*.  Slicing rides the supervisor's observer channel (the
same mechanism the chaos-soak harness uses for crash injection): when the
slice deadline passes, the observer raises a pause, the journal is flushed,
and the next slice resumes through the integrity layer's verified-resume
path.  Pausing is therefore *identical* to a clean supervised restart — no
fleet-specific resume semantics exist to get wrong.

The supervisor runs with ``max_retries=0``: it detects and attributes
stalls (and checkpoints around them) but does not retry.  Retry *policy* —
backoff, circuit breaking, budget — belongs to the fleet scheduler, which
sees every incident as a typed :class:`SliceOutcome`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.baselines import StaticController
from repro.emulator.faults import DataCorruption, FaultSchedule, LinkFlap, StorageStall
from repro.emulator.testbed import Testbed, TestbedConfig
from repro.parallel.seeds import spawn_key
from repro.transfer.engine import EngineConfig, ModularTransferEngine
from repro.transfer.files import uniform_dataset
from repro.transfer.integrity import IntegrityConfig, VerifiedTransfer, VerifiedTransferResult
from repro.transfer.supervisor import SupervisorConfig, TransferSupervisor

from repro.fleet.admission import TransferRequest

__all__ = ["FleetJob", "JobFaultProfile", "SliceOutcome", "SLICE_KINDS"]

#: Slice outcome kinds, in the order the scheduler reasons about them.
SLICE_KINDS = ("completed", "paused", "incident", "timed_out")


class _SlicePause(Exception):
    """Raised by the slice observer at the quantum boundary."""

    def __init__(self, t: float) -> None:
        super().__init__(f"slice paused at t={t:.1f}s")
        self.t = t


class _SimulatedCrash(Exception):
    """Raised by the slice observer at a scheduled crash instant."""

    def __init__(self, t: float) -> None:
        super().__init__(f"simulated crash at t={t:.1f}s")
        self.t = t


@dataclass(frozen=True)
class JobFaultProfile:
    """Which seeded fault families a fleet injects into its jobs."""

    stalls: bool = True
    corruption: bool = True
    crashes: bool = True
    max_crashes: int = 1
    stall_probability: float = 0.5
    corruption_probability: float = 0.5


@dataclass(frozen=True)
class SliceOutcome:
    """What one scheduling quantum did to a job.

    ``kind`` is one of :data:`SLICE_KINDS`; incidents carry their
    attributed ``incident_kind`` (fault name, ``crash``, or
    ``verify_failed``).  ``progress_bytes`` is the durable forward progress
    observed during the slice (used for breaker success detection and
    token-bucket spend; terminal byte accounting uses the manifest).
    """

    kind: str
    t_end: float
    progress_bytes: float = 0.0
    incident_kind: str | None = None
    result: VerifiedTransferResult | None = None


class FleetJob:
    """One admitted transfer and its lazily-built verified pipeline."""

    def __init__(
        self,
        job_id: int,
        request: TransferRequest,
        seed: int,
        *,
        testbed_config: TestbedConfig,
        horizon: float,
        chunk_size: float,
        stall_intervals: int,
        run_dir: str | Path,
        faults: JobFaultProfile | None = None,
        adapt: bool = False,
    ) -> None:
        self.job_id = job_id
        self.request = request
        self.seed = int(seed)
        self.testbed_config = testbed_config
        self.horizon = float(horizon)
        self.chunk_size = float(chunk_size)
        self.stall_intervals = int(stall_intervals)
        self.run_dir = Path(run_dir)
        self.fault_profile = faults or JobFaultProfile()
        self.adapt = bool(adapt)
        #: The job's :class:`~repro.adapt.controller.AdaptiveController`
        #: when ``adapt`` is on (None otherwise, and until first dispatch).
        self.controller = None

        self.verified: VerifiedTransfer | None = None
        self.testbed: Testbed | None = None
        #: Seeded generator for the fleet-side backoff jitter of this job.
        self.rng = np.random.default_rng(spawn_key(self.seed, (0,)))
        self.dispatched_at: float | None = None
        self.slices = 0
        self.crashes = 0
        self._started = False
        self._crash_plan: list[float] = []
        self._crash_torn: list[bool] = []
        self._prev_bytes: float | None = None
        self._slice_bytes = 0.0

    # ------------------------------------------------------------- lazy build
    def _draw_faults(self, t0: float) -> FaultSchedule | None:
        """The job's seeded fault schedule, offset from first dispatch."""
        profile = self.fault_profile
        rng = np.random.default_rng(spawn_key(self.seed, (1,)))
        events: list = []
        if profile.stalls and rng.random() < profile.stall_probability:
            # Windows long enough to out-last the supervisor's watchdog
            # patience — short blips would just read as slow slices.
            start = t0 + float(rng.uniform(2.0, 8.0))
            duration = float(rng.uniform(5.0, 12.0))
            if rng.random() < 0.5:
                events.append(LinkFlap(start=start, duration=duration, severity=1.0))
            else:
                events.append(
                    StorageStall(start=start, duration=duration, stage="read", factor=0.0)
                )
        if profile.corruption and rng.random() < profile.corruption_probability:
            events.append(
                DataCorruption(
                    start=t0 + float(rng.uniform(1.0, 6.0)),
                    duration=float(rng.uniform(2.0, 5.0)),
                    rate=float(rng.uniform(0.05, 0.25)),
                    site="network" if rng.random() < 0.7 else "storage",
                )
            )
        if profile.crashes:
            count = int(rng.integers(profile.max_crashes + 1))
            self._crash_plan = sorted(
                t0 + float(rng.uniform(3.0, 15.0)) for _ in range(count)
            )
            self._crash_torn = [bool(rng.random() < 0.5) for _ in range(count)]
        return FaultSchedule(events) if events or self._crash_plan else None

    def ensure_built(self, t0: float) -> None:
        """Construct the verified pipeline at first dispatch time ``t0``.

        Fault windows and crash instants are drawn *relative to dispatch*
        (a job admitted late should still meet its chaos), but from the
        job's own seed — so the whole fleet run stays a pure function of
        the root seed and the request list.
        """
        if self.verified is not None:
            return
        self.dispatched_at = t0
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.testbed = Testbed(
            self.testbed_config,
            rng=spawn_key(self.seed, (2,)),
            faults=self._draw_faults(t0),
        )
        gigabytes = self.request.gigabytes
        files = max(1, round(gigabytes * 4))
        dataset = uniform_dataset(
            files, gigabytes * 1e9 / files, name=self.request.name or f"job{self.job_id:04d}"
        )
        controller = StaticController(self.testbed_config.optimal_threads())
        if self.adapt:
            from repro.adapt import AdaptConfig, AdaptiveController, SafetyEnvelope

            self.controller = AdaptiveController(
                controller,
                AdaptConfig(
                    envelope=SafetyEnvelope.from_testbed_config(self.testbed_config)
                ),
                name=f"job{self.job_id:04d}",
            )
            controller = self.controller
        engine = ModularTransferEngine(
            self.testbed,
            dataset,
            controller,
            EngineConfig(max_seconds=self.horizon, seed=spawn_key(self.seed, (3,))),
        )
        supervisor = TransferSupervisor(
            engine,
            SupervisorConfig(
                stall_intervals=self.stall_intervals,
                max_retries=0,  # retry policy lives in the fleet scheduler
                seed=spawn_key(self.seed, (4,)),
            ),
        )
        self.verified = VerifiedTransfer.for_supervisor(
            supervisor,
            self.run_dir,
            IntegrityConfig(
                chunk_size=self.chunk_size,
                seed=spawn_key(self.seed, (5,)),
                content_seed=self.seed,
                journal_flush_every=8,
            ),
        )

    # ------------------------------------------------------------- accounting
    @property
    def total_bytes(self) -> float:
        """Dataset size in bytes (manifest total once built)."""
        if self.verified is not None:
            return self.verified.manifest.total_bytes
        return self.request.gigabytes * 1e9

    def _observe(self, observation, deadline: float) -> None:
        b = observation.bytes_written_total
        if self._prev_bytes is not None and b > self._prev_bytes:
            self._slice_bytes += b - self._prev_bytes
        self._prev_bytes = b
        if self._crash_plan and observation.elapsed >= self._crash_plan[0]:
            self._crash_plan.pop(0)
            raise _SimulatedCrash(observation.elapsed)
        if observation.elapsed >= deadline:
            raise _SlicePause(observation.elapsed)

    def _incident_kind(self, result: VerifiedTransferResult) -> str:
        events = result.supervised.metrics.fault_events
        return events[-1].kind if events else "stall"

    # ------------------------------------------------------------------ slice
    def run_slice(self, t_start: float, quantum: float, rate_cap: float) -> SliceOutcome:
        """Advance the transfer by up to ``quantum`` virtual seconds.

        ``rate_cap`` (bytes/s) is the fleet's fair-share allocation for
        this slice, enforced by the testbed's network stage.  Returns a
        typed outcome; the pipeline is always left in a resumable state
        (journal flushed on pause, crash semantics on simulated crashes).
        """
        self.ensure_built(t_start)
        assert self.verified is not None and self.testbed is not None
        self.testbed.set_rate_cap(rate_cap)
        deadline = t_start + quantum
        self.slices += 1
        self._prev_bytes = None
        self._slice_bytes = 0.0
        resume = self._started
        self._started = True
        try:
            result = self.verified.run(
                resume=resume,
                resume_elapsed=t_start,
                observer=lambda observation: self._observe(observation, deadline),
            )
        except _SlicePause as pause:
            # Clean pause: map every byte observed this slice onto the
            # ledger before flushing — fault-free ledgers batch their syncs
            # (and the completion-time sync never runs on a pause), so
            # without this the journal would hold no claims and the next
            # slice's verified resume would start from zero.
            if self._prev_bytes is not None:
                self.verified._sync(self._prev_bytes, pause.t)
            self.verified.journal.flush()
            return SliceOutcome("paused", pause.t, progress_bytes=self._slice_bytes)
        except _SimulatedCrash as crash:
            torn = self._crash_torn[self.crashes] if self.crashes < len(self._crash_torn) else False
            self.verified.journal.crash(torn_tail=torn)
            self.crashes += 1
            return SliceOutcome(
                "incident", crash.t, progress_bytes=self._slice_bytes, incident_kind="crash"
            )
        t_end = result.supervised.completion_time
        if result.clean:
            self.verified.journal.flush()
            return SliceOutcome(
                "completed", t_end, progress_bytes=self._slice_bytes, result=result
            )
        if result.supervised.timed_out:
            return SliceOutcome(
                "timed_out", t_end, progress_bytes=self._slice_bytes, result=result
            )
        kind = "verify_failed" if result.completed else self._incident_kind(result)
        return SliceOutcome(
            "incident", t_end, progress_bytes=self._slice_bytes,
            incident_kind=kind, result=result,
        )

    def close(self) -> None:
        """Release the journal file handle (terminal state reached)."""
        if self.verified is not None:
            self.verified.journal.close()
