"""The fleet control plane: admission → fair share → supervised slices.

:class:`FleetScheduler` multiplexes many :class:`~repro.fleet.job.FleetJob`
transfers onto one emulated link by advancing a single global virtual clock
in rounds of ``quantum`` seconds:

1. **admit** — arrivals whose ``submit_at`` has passed go through the
   bounded :class:`~repro.fleet.admission.AdmissionQueue` (typed rejection,
   never an exception);
2. **select** — runnable jobs (breaker allows, backoff elapsed) compete for
   dispatch slots by priority class, tenant round-robin within a class
   (rotated every round so no tenant owns the front of the line), gated by
   each tenant's :class:`~repro.fleet.bulkhead.Bulkhead`;
3. **allocate** — link capacity is split across tenants by
   :func:`~repro.fleet.fairshare.weighted_max_min`, with each tenant's
   demand first capped by its :class:`~repro.fleet.fairshare.TokenBucket`,
   then split equally across the tenant's selected jobs — the sum of
   allocations can never exceed capacity, by construction;
4. **dispatch** — each selected job runs one slice under its allocation as
   a testbed ``rate_cap``; incidents feed its
   :class:`~repro.fleet.breaker.CircuitBreaker`, seeded
   :func:`~repro.utils.backoff.backoff_delay` and per-job
   :class:`~repro.utils.backoff.RetryBudget`.

Everything is a pure function of ``(config, requests, seed)``: jobs run
serially in a fixed order inside each round, all randomness flows through
:func:`~repro.parallel.seeds.spawn_key`, and the report carries a sha256
fingerprint over its stable fields so two same-seed runs can be compared
bit-for-bit (the soak harness's determinism invariant).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.emulator.presets import fig5_read_bottleneck
from repro.emulator.testbed import TestbedConfig
from repro.obs.registry import MetricsRegistry
from repro.parallel.seeds import derive_seed
from repro.simulator.batch import BatchedSimulator
from repro.simulator.scenarios import simulator_config_from_testbed
from repro.utils.backoff import RetryBudget, backoff_delay
from repro.utils.config import require_non_negative, require_positive
from repro.utils.units import mbps_to_bytes_per_sec

from repro.fleet.admission import AdmissionQueue, Priority, TransferRequest
from repro.fleet.breaker import BreakerConfig, CircuitBreaker, transitions_legal
from repro.fleet.bulkhead import Bulkhead
from repro.fleet.fairshare import TokenBucket, weighted_max_min
from repro.fleet.job import FleetJob, JobFaultProfile

__all__ = [
    "FleetConfig",
    "FleetScheduler",
    "TenantSpec",
    "fleet_report_fingerprint",
    "render_fleet_report",
]

#: Terminal job states.
COMPLETED = "completed"
FAILED = "failed"
ACTIVE = "active"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's contract with the fleet.

    ``weight`` scales its fair share, ``max_concurrency`` sizes its
    bulkhead compartment, ``rate_mbps`` / ``burst_bytes`` parameterise its
    token bucket (``inf`` = unthrottled).
    """

    name: str
    weight: float = 1.0
    max_concurrency: int = 4
    rate_mbps: float = math.inf
    burst_bytes: float = math.inf

    def __post_init__(self) -> None:
        require_positive(self.weight, "weight")
        require_positive(self.max_concurrency, "max_concurrency")
        require_positive(self.rate_mbps, "rate_mbps")
        require_positive(self.burst_bytes, "burst_bytes")


@dataclass(frozen=True)
class FleetConfig:
    """Fleet control-plane knobs (data-plane knobs live per request)."""

    tenants: tuple[TenantSpec, ...] = (TenantSpec("default"),)
    seed: int = 0
    quantum: float = 5.0  # virtual seconds per scheduling round
    capacity_mbps: float | None = None  # None = the testbed's bottleneck
    admission_limit: int = 64
    per_tenant_queue: int = 32
    max_parallel: int = 8  # global dispatch slots per round
    horizon: float = 3600.0  # virtual-time budget for the whole fleet
    chunk_size: float = 8e6
    stall_intervals: int = 5
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    retry_budget: float = math.inf  # per-job virtual seconds of retrying
    backoff_base: float = 4.0
    backoff_max: float = 60.0
    min_rate: float = 1e5  # bytes/s below which a slice is not worth running
    faults: JobFaultProfile = field(default_factory=JobFaultProfile)
    #: Opt-in shadow model: advance one Algorithm-1 simulator column per
    #: admitted job (all columns in one fleet-vectorized ``step_second``
    #: call per round) and report its predictions under ``report["cosim"]``.
    #: Purely observational — scheduling decisions and, when off, the
    #: report fingerprint are unchanged.
    cosim: bool = False
    #: Opt-in online adaptation: wrap every job's frozen policy in an
    #: :class:`~repro.adapt.controller.AdaptiveController` (drift detection,
    #: shadow-evaluated correction, automatic rollback) and attach each
    #: job's adaptation report under ``report["jobs"][i]["adapt"]``.  When
    #: off, the controller stack and the report fingerprint are unchanged.
    adapt: bool = False

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("FleetConfig needs at least one tenant")
        names = [spec.name for spec in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        require_positive(self.quantum, "quantum")
        if self.capacity_mbps is not None:
            require_positive(self.capacity_mbps, "capacity_mbps")
        require_positive(self.admission_limit, "admission_limit")
        require_positive(self.per_tenant_queue, "per_tenant_queue")
        require_positive(self.max_parallel, "max_parallel")
        require_positive(self.horizon, "horizon")
        require_positive(self.chunk_size, "chunk_size")
        require_positive(self.stall_intervals, "stall_intervals")
        require_positive(self.retry_budget, "retry_budget")
        require_positive(self.backoff_base, "backoff_base")
        require_positive(self.backoff_max, "backoff_max")
        require_non_negative(self.min_rate, "min_rate")

    def spec(self, tenant: str) -> TenantSpec | None:
        """The spec for ``tenant`` (None when unknown)."""
        for candidate in self.tenants:
            if candidate.name == tenant:
                return candidate
        return None


class _Entry:
    """Scheduler-side bookkeeping for one admitted job."""

    __slots__ = (
        "job", "breaker", "budget", "not_before", "retries", "state",
        "failure", "admitted_at", "completed_at", "bytes_verified",
        "incidents", "unrecovered", "preempted",
    )

    def __init__(self, job: FleetJob, breaker: CircuitBreaker, budget: RetryBudget,
                 admitted_at: float) -> None:
        self.job = job
        self.breaker = breaker
        self.budget = budget
        self.not_before = 0.0
        self.retries = 0
        self.state = ACTIVE
        self.failure: str | None = None
        self.admitted_at = admitted_at
        self.completed_at: float | None = None
        self.bytes_verified = 0.0
        self.incidents: list[dict] = []
        self.unrecovered: list[int] = []
        self.preempted = 0

    @property
    def tenant(self) -> str:
        return self.job.request.tenant

    @property
    def priority(self) -> Priority:
        return self.job.request.priority


class _CosimTwin:
    """Shadow Algorithm-1 model of the fleet: one simulator column per job.

    Each round the twin maps every dispatched job's fair-share allocation
    to a concurrency triple (share of the per-job demand ceiling, scaled to
    ``max_threads``) and advances *all* columns in one fleet-vectorized
    :meth:`BatchedSimulator.step_second` call.  Idle columns are rolled
    back afterwards via a masked reset, so only dispatched jobs progress.
    The twin never feeds back into scheduling — it exists to compare what
    the offline-training simulator predicts against what the emulated data
    plane verified.
    """

    def __init__(self, testbed_config: TestbedConfig) -> None:
        self.sim_config = simulator_config_from_testbed(testbed_config)
        self.max_threads = self.sim_config.max_threads
        self.simulator: BatchedSimulator | None = None
        self.rounds = 0
        self.predicted_bytes: list[float] = []

    def _grow(self, n: int) -> None:
        """(Re)build the batch when jobs were admitted, keeping buffer state."""
        if self.simulator is not None and self.simulator.batch == n:
            return
        snd = np.zeros(n)
        rcv = np.zeros(n)
        if self.simulator is not None:
            snd[: self.simulator.batch] = self.simulator.sender_usage
            rcv[: self.simulator.batch] = self.simulator.receiver_usage
        self.simulator = BatchedSimulator(
            [self.sim_config] * n, sender_usage=snd, receiver_usage=rcv
        )
        self.predicted_bytes.extend([0.0] * (n - len(self.predicted_bytes)))

    def advance(self, n_jobs: int, dispatched: dict[int, float], quantum: float,
                job_demand: float) -> None:
        """One co-simulated round; ``dispatched`` maps job_id → rate cap."""
        if n_jobs == 0:
            return
        self._grow(n_jobs)
        sim = self.simulator
        threads = np.ones((n_jobs, 3), dtype=np.int64)
        for job_id, rate in dispatched.items():
            share = rate / job_demand * self.max_threads
            threads[job_id] = int(np.clip(round(share), 1, self.max_threads))
        idle = np.ones(n_jobs, dtype=bool)
        if dispatched:
            idle[list(dispatched)] = False
        snd = sim.sender_usage.copy()
        rcv = sim.receiver_usage.copy()
        metrics = sim.step_second(threads)
        if idle.any():
            sim.reset(sender_usage=snd, receiver_usage=rcv, mask=idle)
        write_bps = metrics.throughput_write * 1e6 / 8.0
        for job_id in dispatched:
            self.predicted_bytes[job_id] += write_bps[job_id] * quantum
        self.rounds += 1

    def section(self) -> dict:
        """The deterministic ``report["cosim"]`` payload."""
        return {
            "rounds": self.rounds,
            "batch": 0 if self.simulator is None else self.simulator.batch,
            "predicted_bytes": [float(round(b, 1)) for b in self.predicted_bytes],
        }


class FleetScheduler:
    """Runs a request list to quiescence on one shared virtual timeline."""

    def __init__(
        self,
        config: FleetConfig,
        requests: list[TransferRequest],
        run_dir: str | Path,
        *,
        testbed_config: TestbedConfig | None = None,
    ) -> None:
        self.config = config
        self.requests = list(requests)
        self.run_dir = Path(run_dir)
        self.testbed_config = testbed_config or fig5_read_bottleneck()
        self.capacity = mbps_to_bytes_per_sec(
            config.capacity_mbps
            if config.capacity_mbps is not None
            else self.testbed_config.bottleneck_bandwidth
        )
        #: Per-job demand ceiling: one transfer can use at most the
        #: testbed's own bottleneck, regardless of its fair share.
        self.job_demand = mbps_to_bytes_per_sec(self.testbed_config.bottleneck_bandwidth)
        self.admission = AdmissionQueue(config.admission_limit, config.per_tenant_queue)
        self.bulkheads = {
            spec.name: Bulkhead(spec.max_concurrency, name=spec.name)
            for spec in config.tenants
        }
        self.buckets = {
            spec.name: TokenBucket(
                mbps_to_bytes_per_sec(spec.rate_mbps)
                if not math.isinf(spec.rate_mbps) else math.inf,
                spec.burst_bytes,
            )
            for spec in config.tenants
        }
        self.weights = {spec.name: spec.weight for spec in config.tenants}
        self.entries: list[_Entry] = []
        self.decisions: list[dict] = []
        self.starved_rounds: dict[str, int] = {spec.name: 0 for spec in config.tenants}
        self.preemptions: dict[str, int] = {spec.name: 0 for spec in config.tenants}
        self.throttled_slices: dict[str, int] = {spec.name: 0 for spec in config.tenants}
        self.max_round_allocation = 0.0
        self.rounds = 0
        self.clock = 0.0
        #: Fleet-local metrics, merged into the active obs session at the
        #: end of :meth:`run` via ``MetricsRegistry.merge_from`` — the same
        #: collision-free path fleet soak workers use.
        self.registry = MetricsRegistry()
        self._prev_selected: set[int] = set()
        self._cosim = _CosimTwin(self.testbed_config) if config.cosim else None

    # --------------------------------------------------------------- plumbing
    def _admit(self, t: float) -> None:
        """Admit every not-yet-decided request whose ``submit_at`` passed."""
        while self.requests and self.requests[0].submit_at <= t:
            request = self.requests.pop(0)
            known = self.config.spec(request.tenant) is not None
            decision = self.admission.offer(request.tenant, t, known=known)
            self.decisions.append(decision.to_dict())
            if not decision.admitted:
                self.registry.counter(
                    "fleet/rejections", label_names=("tenant", "reason")
                ).labels(tenant=request.tenant, reason=str(decision.reason.value)).inc()
                continue
            job_id = len(self.entries)
            self.decisions[-1]["job_id"] = job_id
            job = FleetJob(
                job_id,
                request,
                derive_seed(self.config.seed, job_id),
                testbed_config=self.testbed_config,
                horizon=self.config.horizon,
                chunk_size=self.config.chunk_size,
                stall_intervals=self.config.stall_intervals,
                run_dir=self.run_dir / f"job{job_id:04d}",
                faults=self.config.faults,
                adapt=self.config.adapt,
            )
            entry = _Entry(
                job,
                CircuitBreaker(self.config.breaker, name=f"job{job_id:04d}"),
                RetryBudget(self.config.retry_budget),
                admitted_at=t,
            )
            self.entries.append(entry)
            self._set_breaker_gauge(entry)

    def _set_breaker_gauge(self, entry: _Entry) -> None:
        self.registry.gauge(
            "fleet/breaker_state", label_names=("job",)
        ).labels(job=f"job{entry.job.job_id:04d}").set(entry.breaker.state_code)

    def _runnable(self, t: float) -> list[_Entry]:
        return [
            e for e in self.entries
            if e.state == ACTIVE and e.not_before <= t and e.breaker.allows(t)
        ]

    def _select(self, runnable: list[_Entry]) -> list[_Entry]:
        """Priority classes, tenant round-robin within a class, bulkheads."""
        selected: list[_Entry] = []
        slots = self.config.max_parallel
        for priority in sorted({e.priority for e in runnable}, reverse=True):
            if slots <= 0:
                break
            queues: dict[str, list[_Entry]] = {}
            for entry in sorted(
                (e for e in runnable if e.priority == priority),
                key=lambda e: e.job.job_id,
            ):
                queues.setdefault(entry.tenant, []).append(entry)
            order = sorted(queues)
            rotation = self.rounds % len(order)
            order = order[rotation:] + order[:rotation]
            while slots > 0 and any(queues.values()):
                progressed = False
                for tenant in order:
                    if slots <= 0:
                        break
                    if not queues[tenant]:
                        continue
                    if not self.bulkheads[tenant].try_acquire():
                        # Compartment full: the rest of this tenant's
                        # backlog is boxed out for the round.
                        queues[tenant] = []
                        continue
                    selected.append(queues[tenant].pop(0))
                    slots -= 1
                    progressed = True
                if not progressed:
                    break
        return selected

    def _allocate(self, selected: list[_Entry], t: float) -> dict[int, float]:
        """Token-capped weighted max-min across tenants, equal within."""
        by_tenant: dict[str, list[_Entry]] = {}
        for entry in selected:
            by_tenant.setdefault(entry.tenant, []).append(entry)
        demands = {}
        for tenant, group in by_tenant.items():
            demand = self.job_demand * len(group)
            tokens = self.buckets[tenant].available(t)
            if not math.isinf(tokens):
                demand = min(demand, tokens / self.config.quantum)
            demands[tenant] = demand
        tenant_alloc = weighted_max_min(self.capacity, demands, self.weights)
        allocation: dict[int, float] = {}
        for tenant, group in by_tenant.items():
            per_job = weighted_max_min(
                tenant_alloc[tenant],
                {f"{e.job.job_id:06d}": self.job_demand for e in group},
            )
            for entry in group:
                allocation[entry.job.job_id] = per_job[f"{entry.job.job_id:06d}"]
        self.max_round_allocation = max(self.max_round_allocation, sum(allocation.values()))
        return allocation

    # ----------------------------------------------------------- outcome path
    def _finish(self, entry: _Entry, t: float, state: str, failure: str | None = None) -> None:
        entry.state = state
        entry.failure = failure
        entry.completed_at = t
        self.admission.settle(entry.tenant)
        entry.job.close()

    def _handle_outcome(self, entry: _Entry, outcome, t: float) -> None:
        tenant = entry.tenant
        cfg = self.config
        if outcome.progress_bytes > 0:
            self.buckets[tenant].take(outcome.progress_bytes, t)
        if outcome.kind == "completed":
            entry.breaker.record_success(outcome.t_end)
            entry.bytes_verified = outcome.result.supervised.total_bytes
            self.registry.counter(
                "fleet/bytes_verified", label_names=("tenant",)
            ).labels(tenant=tenant).inc(entry.bytes_verified)
            self._finish(entry, outcome.t_end, COMPLETED)
        elif outcome.kind == "paused":
            if outcome.progress_bytes > 0:
                entry.breaker.record_success(outcome.t_end)
        elif outcome.kind == "timed_out":
            entry.unrecovered = list(
                outcome.result.unrecovered_chunk_ids if outcome.result else []
            )
            self._finish(entry, outcome.t_end, FAILED, "timed_out")
        else:  # incident
            kind = outcome.incident_kind or "incident"
            entry.incidents.append({"t": round(outcome.t_end, 3), "kind": kind})
            self.registry.counter(
                "fleet/incidents", label_names=("tenant", "kind")
            ).labels(tenant=tenant, kind=kind).inc()
            entry.breaker.record_failure(outcome.t_end, kind)
            entry.retries += 1
            entry.budget.start(entry.job.dispatched_at or t)
            delay = backoff_delay(
                entry.retries, base=cfg.backoff_base, max_delay=cfg.backoff_max,
                jitter=0.25, rng=entry.job.rng,
            )
            entry.not_before = outcome.t_end + delay
            if not entry.budget.allows(entry.not_before):
                if outcome.result is not None:
                    entry.unrecovered = list(outcome.result.unrecovered_chunk_ids)
                self._finish(entry, outcome.t_end, FAILED, "retry_budget_exhausted")
                obs.count("fleet/retry_budget_exhausted")
        self._set_breaker_gauge(entry)

    def _account_idle(self, runnable: list[_Entry], selected: list[_Entry]) -> None:
        """Starvation and preemption accounting for one round."""
        chosen = {e.job.job_id for e in selected}
        if selected:
            max_priority = max(e.priority for e in selected)
            for tenant in {e.tenant for e in runnable}:
                if not any(e.tenant == tenant for e in selected):
                    self.starved_rounds[tenant] += 1
                    self.registry.counter(
                        "fleet/starved_rounds", label_names=("tenant",)
                    ).labels(tenant=tenant).inc()
            for entry in runnable:
                if (
                    entry.priority == Priority.BEST_EFFORT
                    and entry.job.job_id in self._prev_selected
                    and entry.job.job_id not in chosen
                    and max_priority > Priority.BEST_EFFORT
                ):
                    entry.preempted += 1
                    self.preemptions[entry.tenant] += 1
                    self.registry.counter(
                        "fleet/preemptions", label_names=("tenant",)
                    ).labels(tenant=entry.tenant).inc()
        self._prev_selected = chosen

    # -------------------------------------------------------------- main loop
    def run(self) -> dict:
        """Drive every request to a terminal state; returns the fleet report."""
        cfg = self.config
        self.requests.sort(key=lambda r: r.submit_at)
        with obs.span("fleet/run", tenants=len(cfg.tenants), requests=len(self.requests)):
            while self.requests or any(e.state == ACTIVE for e in self.entries):
                t = self.clock
                if t >= cfg.horizon:
                    for entry in self.entries:
                        if entry.state == ACTIVE:
                            self._finish(entry, t, FAILED, "fleet_horizon")
                    break
                self._admit(t)
                runnable = self._runnable(t)
                selected = self._select(runnable)
                self._account_idle(runnable, selected)
                allocation = self._allocate(selected, t)
                if self._cosim is not None:
                    self._cosim.advance(
                        len(self.entries),
                        {j: r for j, r in allocation.items() if r >= cfg.min_rate},
                        cfg.quantum,
                        self.job_demand,
                    )
                for entry in sorted(selected, key=lambda e: e.job.job_id):
                    rate = allocation[entry.job.job_id]
                    if rate < cfg.min_rate:
                        # Token-starved: running under a near-zero cap would
                        # just manufacture a stall incident.  Hold the slot.
                        self.throttled_slices[entry.tenant] += 1
                        continue
                    outcome = entry.job.run_slice(t, cfg.quantum, rate)
                    self.registry.counter(
                        "fleet/slices", label_names=("tenant",)
                    ).labels(tenant=entry.tenant).inc()
                    self._handle_outcome(entry, outcome, t + cfg.quantum)
                for bulkhead in self.bulkheads.values():
                    bulkhead.release_all()
                self.rounds += 1
                self.clock += cfg.quantum
            report = self._report()
            session = obs.active()
            if session is not None:
                session.registry.merge_from(self.registry)
            if self._cosim is not None and self._cosim.simulator is not None:
                self._cosim.simulator.export_telemetry()
        return report

    # ----------------------------------------------------------------- report
    def _report(self) -> dict:
        jobs = []
        for entry in self.entries:
            jobs.append({
                "job_id": entry.job.job_id,
                "tenant": entry.tenant,
                "priority": int(entry.priority),
                "gigabytes": entry.job.request.gigabytes,
                "state": entry.state,
                "failure": entry.failure,
                "admitted_at": round(entry.admitted_at, 3),
                "dispatched_at": (
                    None if entry.job.dispatched_at is None
                    else round(entry.job.dispatched_at, 3)
                ),
                "completed_at": (
                    None if entry.completed_at is None else round(entry.completed_at, 3)
                ),
                "bytes_verified": entry.bytes_verified,
                "slices": entry.job.slices,
                "crashes": entry.job.crashes,
                "retries": entry.retries,
                "preempted": entry.preempted,
                "incidents": entry.incidents,
                "unrecovered_chunks": entry.unrecovered,
                "breaker": {
                    "state": entry.breaker.state,
                    "times_opened": entry.breaker.times_opened,
                    "transitions": [tr.to_dict() for tr in entry.breaker.transitions],
                },
            })
            # Only attached when adaptation is on: the report fingerprint
            # with ``adapt=False`` must stay byte-identical to older runs.
            if self.config.adapt and entry.job.controller is not None:
                jobs[-1]["adapt"] = entry.job.controller.report()
        duration = max(self.clock, 1e-9)
        tenants = {}
        for spec in self.config.tenants:
            mine = [j for j in jobs if j["tenant"] == spec.name]
            bytes_verified = sum(j["bytes_verified"] for j in mine)
            # Goodput over the tenant's *active window* (first dispatch to
            # last completion), not the whole fleet run — a rate-throttled
            # tenant that moves the same bytes over a longer window must
            # show a lower rate, or throttling and fairness would be
            # invisible in the report.
            done = [j for j in mine if j["state"] == COMPLETED]
            if done:
                window = max(j["completed_at"] for j in done) - min(
                    j["dispatched_at"] or 0.0 for j in done
                )
                window = max(window, self.config.quantum)
            else:
                window = duration
            tenants[spec.name] = {
                "weight": spec.weight,
                "jobs": len(mine),
                "completed": sum(1 for j in mine if j["state"] == COMPLETED),
                "failed": sum(1 for j in mine if j["state"] == FAILED),
                "bytes_verified": bytes_verified,
                "goodput_bytes_per_s": round(bytes_verified / window, 1),
                "starved_rounds": self.starved_rounds[spec.name],
                "preemptions": self.preemptions[spec.name],
                "throttled_slices": self.throttled_slices[spec.name],
                "bulkhead_saturations": self.bulkheads[spec.name].saturations,
            }
        unrecovered_jobs = sorted(
            j["job_id"] for j in jobs
            if j["state"] != COMPLETED or j["unrecovered_chunks"]
        )
        invariants = {
            "no_data_loss": not any(j["unrecovered_chunks"] for j in jobs),
            "all_recovered": not unrecovered_jobs,
            "no_starvation": all(j["slices"] > 0 for j in jobs),
            "capacity_respected": self.max_round_allocation <= self.capacity * (1 + 1e-9),
            "breaker_transitions_legal": all(
                transitions_legal(e.breaker.transitions) for e in self.entries
            ),
        }
        report = {
            "config": {
                "seed": self.config.seed,
                "quantum": self.config.quantum,
                "capacity_bytes_per_s": self.capacity,
                "max_parallel": self.config.max_parallel,
                "tenants": [
                    {
                        "name": spec.name,
                        "weight": spec.weight,
                        "max_concurrency": spec.max_concurrency,
                        "rate_mbps": (
                            None if math.isinf(spec.rate_mbps) else spec.rate_mbps
                        ),
                    }
                    for spec in self.config.tenants
                ],
            },
            "rounds": self.rounds,
            "duration_s": round(self.clock, 3),
            "admission": {
                "admitted": len(self.entries),
                "rejected": len(self.admission.rejections),
                "decisions": self.decisions,
            },
            "jobs": jobs,
            "tenants": tenants,
            "max_round_allocation": round(self.max_round_allocation, 1),
            "unrecovered_jobs": unrecovered_jobs,
            "invariants": invariants,
            "all_passed": all(invariants.values()),
        }
        if self._cosim is not None:
            report["cosim"] = self._cosim.section()
        report["fingerprint"] = fleet_report_fingerprint(report)
        return report


def fleet_report_fingerprint(report: dict) -> str:
    """sha256 over the report's stable fields (no paths, no wall clock).

    Everything in the report is virtual-time or count data, so the whole
    dict minus the fingerprint itself is hashable canonically; two runs of
    the same seed and request list must produce identical fingerprints.
    """
    stable = {k: v for k, v in report.items() if k not in ("fingerprint", "report_path")}
    payload = json.dumps(stable, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def render_fleet_report(report: dict) -> str:
    """Human-readable fleet summary for the CLI."""
    from repro.utils.tables import render_table

    rows = [
        [
            name,
            stats["jobs"],
            stats["completed"],
            stats["failed"],
            f"{stats['bytes_verified'] / 1e9:.2f}",
            f"{stats['goodput_bytes_per_s'] * 8 / 1e6:.0f}",
            stats["starved_rounds"],
            stats["preemptions"],
        ]
        for name, stats in sorted(report["tenants"].items())
    ]
    table = render_table(
        ["tenant", "jobs", "done", "failed", "GB ok", "goodput Mbps", "starved", "preempt"],
        rows,
        title=(
            f"fleet — {report['admission']['admitted']} admitted / "
            f"{report['admission']['rejected']} rejected, "
            f"{report['rounds']} rounds, {report['duration_s']:.0f}s virtual"
        ),
    )
    inv = report["invariants"]
    flags = " ".join(f"{name}={'ok' if passed else 'VIOLATED'}" for name, passed in inv.items())
    verdict = (
        "ALL INVARIANTS HELD" if report["all_passed"]
        else f"INVARIANT FAILURES (unrecovered jobs: {report['unrecovered_jobs']})"
    )
    return (
        f"{table}\n{flags}\n"
        f"fingerprint {report['fingerprint'][:16]}…\n{verdict}\n"
    )
