"""``repro.fleet`` — the multi-tenant transfer control plane.

Many concurrent :class:`~repro.transfer.integrity.VerifiedTransfer`s
competing for one emulated link, scheduled deterministically:

* :mod:`repro.fleet.admission` — bounded queue, typed rejection, priority
  classes (queue-based load leveling);
* :mod:`repro.fleet.fairshare` — weighted max-min water-filling and
  token-bucket throttling (pure, clock-free arithmetic);
* :mod:`repro.fleet.breaker` — per-transfer circuit breakers with an
  audited legal-transition state machine;
* :mod:`repro.fleet.bulkhead` — per-tenant concurrency compartments;
* :mod:`repro.fleet.job` — one transfer's full verified stack, advanced in
  quantum slices over the fleet's shared virtual clock;
* :mod:`repro.fleet.scheduler` — the round loop tying it all together, and
  the fingerprinted fleet report.

``automdt fleet`` is the CLI entry point;
:func:`repro.harness.soak.run_fleet_soak` is the chaos harness.
"""

from repro.fleet.admission import (
    AdmissionDecision,
    AdmissionQueue,
    Priority,
    RejectReason,
    TransferRequest,
)
from repro.fleet.breaker import (
    CLOSED,
    HALF_OPEN,
    LEGAL_TRANSITIONS,
    OPEN,
    BreakerConfig,
    BreakerTransition,
    CircuitBreaker,
    transitions_legal,
)
from repro.fleet.bulkhead import Bulkhead
from repro.fleet.fairshare import TokenBucket, weighted_max_min
from repro.fleet.job import FleetJob, JobFaultProfile, SliceOutcome
from repro.fleet.scheduler import (
    FleetConfig,
    FleetScheduler,
    TenantSpec,
    fleet_report_fingerprint,
    render_fleet_report,
)

__all__ = [
    "AdmissionDecision",
    "AdmissionQueue",
    "BreakerConfig",
    "BreakerTransition",
    "Bulkhead",
    "CircuitBreaker",
    "CLOSED",
    "FleetConfig",
    "FleetJob",
    "FleetScheduler",
    "HALF_OPEN",
    "JobFaultProfile",
    "LEGAL_TRANSITIONS",
    "OPEN",
    "Priority",
    "RejectReason",
    "SliceOutcome",
    "TenantSpec",
    "TokenBucket",
    "TransferRequest",
    "fleet_report_fingerprint",
    "render_fleet_report",
    "transitions_legal",
    "weighted_max_min",
]
