"""Admission control: bounded queueing with typed rejection.

Queue-based load leveling decouples bursty arrivals from the fleet's
steady dispatch rate — but only if the queue is *bounded*; an unbounded
queue just moves the overload one hop downstream.  :class:`AdmissionQueue`
enforces a global bound plus a per-tenant bound, and every refusal is a
typed :class:`AdmissionDecision` (never an exception): backpressure is an
expected outcome the submitting client must handle, not a failure of the
control plane.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.utils.config import require_non_negative, require_positive

__all__ = [
    "AdmissionDecision",
    "AdmissionQueue",
    "Priority",
    "RejectReason",
    "TransferRequest",
]


class Priority(enum.IntEnum):
    """Scheduling classes, highest number wins a slot first.

    BEST_EFFORT transfers are preemptible: an INTERACTIVE arrival may take
    their slot mid-flight (they resume later from their journal).
    """

    BEST_EFFORT = 0
    BATCH = 1
    INTERACTIVE = 2


class RejectReason(str, enum.Enum):
    """Why a request was refused admission."""

    QUEUE_FULL = "queue_full"
    TENANT_QUEUE_FULL = "tenant_queue_full"
    UNKNOWN_TENANT = "unknown_tenant"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TransferRequest:
    """One tenant's ask: move ``gigabytes`` at ``priority``.

    ``submit_at`` is the virtual arrival instant; the scheduler admits
    requests in arrival order as its clock passes them.
    """

    tenant: str
    gigabytes: float = 1.0
    priority: Priority = Priority.BATCH
    submit_at: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        require_positive(self.gigabytes, "gigabytes")
        require_non_negative(self.submit_at, "submit_at")


@dataclass(frozen=True)
class AdmissionDecision:
    """The typed outcome of one submission."""

    admitted: bool
    t: float
    tenant: str
    reason: RejectReason | None = None  # None when admitted
    job_id: int | None = None
    queue_depth: int = 0

    def to_dict(self) -> dict:
        """JSON-friendly form for fleet reports."""
        return {
            "admitted": self.admitted,
            "t": round(self.t, 3),
            "tenant": self.tenant,
            "reason": None if self.reason is None else self.reason.value,
            "job_id": self.job_id,
            "queue_depth": self.queue_depth,
        }


@dataclass
class AdmissionQueue:
    """Bounded admission bookkeeping (depth only — jobs live elsewhere).

    ``limit`` bounds the total number of admitted-but-unfinished transfers
    the fleet will hold; ``per_tenant_limit`` bounds any single tenant's
    share of that queue, so one tenant's burst cannot consume the whole
    admission budget (the queue-level bulkhead).
    """

    limit: int = 64
    per_tenant_limit: int = 32
    depth: int = 0
    tenant_depths: dict[str, int] = field(default_factory=dict)
    rejections: list[AdmissionDecision] = field(default_factory=list)

    def __post_init__(self) -> None:
        require_positive(self.limit, "limit")
        require_positive(self.per_tenant_limit, "per_tenant_limit")

    def offer(self, tenant: str, t: float, *, known: bool = True) -> AdmissionDecision:
        """Decide one submission at virtual time ``t`` and book it if admitted."""
        reason: RejectReason | None = None
        if not known:
            reason = RejectReason.UNKNOWN_TENANT
        elif self.depth >= self.limit:
            reason = RejectReason.QUEUE_FULL
        elif self.tenant_depths.get(tenant, 0) >= self.per_tenant_limit:
            reason = RejectReason.TENANT_QUEUE_FULL
        if reason is not None:
            decision = AdmissionDecision(
                admitted=False, t=t, tenant=tenant, reason=reason, queue_depth=self.depth
            )
            self.rejections.append(decision)
            return decision
        self.depth += 1
        self.tenant_depths[tenant] = self.tenant_depths.get(tenant, 0) + 1
        return AdmissionDecision(
            admitted=True, t=t, tenant=tenant, queue_depth=self.depth
        )

    def settle(self, tenant: str) -> None:
        """A previously admitted transfer reached a terminal state."""
        if self.depth <= 0 or self.tenant_depths.get(tenant, 0) <= 0:
            raise ValueError(f"settle({tenant!r}) without a matching admission")
        self.depth -= 1
        self.tenant_depths[tenant] -= 1
