"""Weighted max-min fair share and token-bucket throttling.

These are the fleet scheduler's bandwidth-arithmetic primitives, kept pure
and clock-free so every allocation decision is a deterministic function of
its inputs:

* :func:`weighted_max_min` — progressive water-filling: each unsaturated
  claimant receives capacity proportional to its weight; claimants whose
  demand is met drop out and their leftover is redistributed, so no one is
  allocated more than it can use while the link is never left idle when
  demand remains.  The classic fair-queueing allocation (Demers et al.),
  the same rule the throttling / load-balancer cloud patterns assume.
* :class:`TokenBucket` — per-tenant rate limiting on the virtual clock:
  tokens accrue at ``rate`` up to ``burst`` and every granted byte spends
  one, bounding a tenant's medium-term average throughput independently of
  the instantaneous fair share it wins in a quiet round.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from repro.utils.config import require_non_negative

__all__ = ["TokenBucket", "weighted_max_min"]


def weighted_max_min(
    capacity: float,
    demands: Mapping[str, float],
    weights: Mapping[str, float] | None = None,
) -> dict[str, float]:
    """Split ``capacity`` across claimants by weighted max-min fairness.

    ``demands`` maps claimant → the most it can use (``inf`` allowed);
    ``weights`` defaults to equal.  The result allocates
    ``min(demand, fair share)`` to every claimant, redistributing unused
    share until the capacity or every demand is exhausted.  Keys are
    processed in sorted order, so the result is independent of dict
    insertion order.  The allocation never exceeds ``capacity`` (up to
    float rounding) nor any claimant's demand.
    """
    require_non_negative(capacity, "capacity")
    allocation = {key: 0.0 for key in demands}
    active = sorted(key for key, demand in demands.items() if demand > 0)
    remaining = float(capacity)
    while active and remaining > 1e-9:
        total_weight = sum(
            (weights[key] if weights is not None else 1.0) for key in active
        )
        if total_weight <= 0:
            break
        satisfied: list[str] = []
        granted = 0.0
        for key in active:
            weight = weights[key] if weights is not None else 1.0
            share = remaining * weight / total_weight
            headroom = demands[key] - allocation[key]
            if headroom <= share:
                # Demand met: take the headroom, return the rest.
                allocation[key] += headroom
                granted += headroom
                satisfied.append(key)
            else:
                allocation[key] += share
                granted += share
        remaining -= granted
        if not satisfied:
            break  # every claimant took its full weighted share
        active = [key for key in active if key not in satisfied]
    return allocation


class TokenBucket:
    """Deterministic token bucket on an externally supplied clock.

    ``rate`` is tokens (bytes) per second, ``burst`` the bucket depth.
    Both may be ``inf`` for an unthrottled tenant.  The bucket never reads
    a clock: callers pass the current (virtual) time to every method, so
    replaying the same call sequence yields identical grants.
    """

    __slots__ = ("rate", "burst", "_tokens", "_last")

    def __init__(self, rate: float = math.inf, burst: float = math.inf, *, t0: float = 0.0):
        require_non_negative(rate, "rate")
        require_non_negative(burst, "burst")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = float(t0)

    def _refill(self, t: float) -> None:
        if t > self._last:
            if math.isinf(self.rate) or math.isinf(self.burst):
                self._tokens = self.burst
            else:
                self._tokens = min(self.burst, self._tokens + self.rate * (t - self._last))
            self._last = t

    def available(self, t: float) -> float:
        """Tokens on hand at virtual time ``t``."""
        self._refill(t)
        return self._tokens

    def take(self, amount: float, t: float) -> float:
        """Spend up to ``amount`` tokens at ``t``; returns what was granted."""
        require_non_negative(amount, "amount")
        self._refill(t)
        granted = min(amount, self._tokens)
        if not math.isinf(self._tokens):
            self._tokens -= granted
        return granted
