"""Per-transfer circuit breaker with a legal-transition state machine.

A fleet transfer that keeps stalling should stop consuming slots and
bandwidth until its path has had time to heal — that is the circuit-breaker
cloud pattern applied to transfers.  States::

    CLOSED --(failure_threshold consecutive incidents)--> OPEN
    OPEN --(cooldown elapsed)--> HALF_OPEN
    HALF_OPEN --(probe slice makes progress)--> CLOSED
    HALF_OPEN --(probe slice fails)--> OPEN

Every transition is appended to :attr:`CircuitBreaker.transitions` with its
virtual timestamp and reason; :func:`transitions_legal` re-validates a log
independently (each hop in the legal set, the chain contiguous, starting
from CLOSED), which is the soak harness's breaker invariant.  Attempting an
illegal hop raises :class:`~repro.utils.errors.BreakerTransitionError`
immediately — a scheduler bug fails loudly instead of corrupting the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.utils.config import require_positive
from repro.utils.errors import BreakerTransitionError

__all__ = [
    "BreakerConfig",
    "BreakerTransition",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "LEGAL_TRANSITIONS",
    "transitions_legal",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: The complete set of legal state hops.
LEGAL_TRANSITIONS: frozenset[tuple[str, str]] = frozenset(
    {(CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED), (HALF_OPEN, OPEN)}
)

#: Numeric encoding for the breaker-state gauge (monitoring-friendly).
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/heal knobs shared by every breaker in a fleet."""

    failure_threshold: int = 3  # consecutive incidents that trip CLOSED -> OPEN
    cooldown: float = 30.0  # virtual seconds OPEN before the HALF_OPEN probe
    half_open_successes: int = 1  # progressing probe slices needed to re-close

    def __post_init__(self) -> None:
        require_positive(self.failure_threshold, "failure_threshold")
        require_positive(self.cooldown, "cooldown")
        require_positive(self.half_open_successes, "half_open_successes")


@dataclass(frozen=True)
class BreakerTransition:
    """One audited state hop."""

    t: float
    src: str
    dst: str
    reason: str

    kind: ClassVar[str] = "breaker_transition"

    def to_dict(self) -> dict:
        """JSON-friendly form for fleet reports."""
        return {"t": round(self.t, 3), "src": self.src, "dst": self.dst, "reason": self.reason}


def transitions_legal(transitions) -> bool:
    """Independently validate a transition log (the soak invariant).

    Every hop must be in :data:`LEGAL_TRANSITIONS`, the chain must be
    contiguous (each hop starts where the previous one ended) and must
    start from CLOSED — the only birth state.
    """
    previous = CLOSED
    for tr in transitions:
        src, dst = (tr.src, tr.dst) if isinstance(tr, BreakerTransition) else (tr[0], tr[1])
        if src != previous or (src, dst) not in LEGAL_TRANSITIONS:
            return False
        previous = dst
    return True


class CircuitBreaker:
    """Failure-counting breaker for one supervised transfer."""

    def __init__(self, config: BreakerConfig | None = None, *, name: str = "") -> None:
        self.config = config or BreakerConfig()
        self.name = name
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.times_opened = 0
        self._probe_successes = 0
        self.transitions: list[BreakerTransition] = []

    def _transition(self, dst: str, t: float, reason: str) -> None:
        if (self.state, dst) not in LEGAL_TRANSITIONS:
            raise BreakerTransitionError(
                f"breaker {self.name!r}: illegal transition {self.state} -> {dst} "
                f"at t={t:.1f} ({reason})"
            )
        self.transitions.append(BreakerTransition(t, self.state, dst, reason))
        self.state = dst

    # ------------------------------------------------------------ the driver
    def poll(self, t: float) -> str:
        """Advance time-driven transitions (OPEN → HALF_OPEN); returns state."""
        if self.state == OPEN and t >= (self.opened_at or 0.0) + self.config.cooldown:
            self._probe_successes = 0
            self._transition(HALF_OPEN, t, "cooldown_elapsed")
        return self.state

    def allows(self, t: float) -> bool:
        """Whether the transfer may be scheduled at ``t`` (polls first)."""
        return self.poll(t) != OPEN

    def record_failure(self, t: float, kind: str = "incident") -> str:
        """Count one incident; may trip or re-open.  Returns the new state."""
        self.consecutive_failures += 1
        if self.state == CLOSED:
            if self.consecutive_failures >= self.config.failure_threshold:
                self.opened_at = t
                self.times_opened += 1
                self._transition(OPEN, t, kind)
        elif self.state == HALF_OPEN:
            # The probe failed: back to OPEN for another cooldown.
            self.opened_at = t
            self.times_opened += 1
            self._transition(OPEN, t, f"probe_failed:{kind}")
        # In OPEN the scheduler never runs the transfer; a failure recorded
        # here (e.g. from a stale slice) only deepens the failure count.
        return self.state

    def record_success(self, t: float) -> str:
        """Count forward progress; may close a probing breaker."""
        self.consecutive_failures = 0
        if self.state == HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.config.half_open_successes:
                self._transition(CLOSED, t, "probe_succeeded")
        return self.state

    @property
    def state_code(self) -> int:
        """Numeric gauge encoding (0 closed / 1 half-open / 2 open)."""
        return STATE_CODES[self.state]
