"""Per-tenant bulkheads: bounded concurrency compartments.

The bulkhead cloud pattern partitions a shared resource pool so one
misbehaving consumer cannot drain it for everyone.  Here each tenant gets a
compartment of transfer slots; the fleet scheduler acquires a slot before
running a job's slice and releases it at the end of the round, so a tenant
with a backlog of pathological transfers saturates *its own* compartment
while other tenants' slots stay available.
"""

from __future__ import annotations

from repro.utils.config import require_positive

__all__ = ["Bulkhead"]


class Bulkhead:
    """A fixed-size slot compartment with saturation accounting."""

    __slots__ = ("name", "capacity", "in_use", "saturations")

    def __init__(self, capacity: int, *, name: str = "") -> None:
        require_positive(capacity, "capacity")
        self.name = name
        self.capacity = int(capacity)
        self.in_use = 0
        #: How often an acquisition bounced off a full compartment.
        self.saturations = 0

    @property
    def available(self) -> int:
        """Free slots right now."""
        return self.capacity - self.in_use

    def try_acquire(self) -> bool:
        """Take one slot; ``False`` (and a saturation count) when full."""
        if self.in_use >= self.capacity:
            self.saturations += 1
            return False
        self.in_use += 1
        return True

    def release(self) -> None:
        """Return one slot."""
        if self.in_use <= 0:
            raise ValueError(f"bulkhead {self.name!r}: release without acquire")
        self.in_use -= 1

    def release_all(self) -> None:
        """Return every held slot (end of a scheduling round)."""
        self.in_use = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Bulkhead({self.name!r}, {self.in_use}/{self.capacity})"
